//! A week in the life of the planning service.
//!
//! The paper's conclusion frames STGQ as a value-added service for social
//! networking sites. This example drives `stgq-service` the way such a
//! deployment would: a community signs up, friendships and calendars
//! change day by day, and planning queries arrive in between — exercising
//! incremental updates, feasible-graph caching and every engine tier.
//!
//! Run with: `cargo run --example event_service`

use stgq::prelude::*;
use stgq::service::{Engine, SharedPlanner};
use stgq_datagen::{community::community_graph, community::CommunityConfig, pick_initiator};

fn main() {
    // One work week at half-hour granularity.
    let grid = TimeGrid::half_hour(5).expect("5 days is a valid grid");
    let horizon = grid.horizon();
    let service = SharedPlanner::with_horizon(horizon);

    // Monday: a 60-person community signs up. We seed memberships and
    // friendships from the community generator so the topology is
    // realistic, then feed them through the service's mutation API.
    let blueprint = community_graph(
        &CommunityConfig {
            n: 60,
            communities: 4,
            ..CommunityConfig::paper_194()
        },
        42,
    );
    let ids: Vec<NodeId> = (0..blueprint.node_count())
        .map(|v| service.add_person(format!("user{v}")))
        .collect();
    for e in blueprint.edges() {
        service
            .connect(ids[e.a.index()], ids[e.b.index()], e.weight)
            .unwrap();
    }
    println!(
        "Monday    signed up {} people, {} friendships",
        blueprint.node_count(),
        blueprint.edge_count()
    );

    // Everyone shares office-hours availability (09:00–17:30 → slots
    // 18..35 of each day), with personal variation on the edges.
    service.update(|planner| {
        for (i, &id) in ids.iter().enumerate() {
            for day in 0..5 {
                let lo = grid.slot(day, 18).unwrap() + (i % 3);
                let hi = grid.slot(day, 34).unwrap() - (i % 2);
                planner
                    .set_availability_range(id, SlotRange::new(lo, hi), true)
                    .unwrap();
            }
        }
    });

    // Tuesday: the busiest member plans a 5-person lunch among direct
    // friends where nobody should face more than 1 stranger, 1 hour long.
    let initiator = ids[pick_initiator(&blueprint, 12).index()];
    let lunch = StgqQuery::new(5, 1, 1, 2).unwrap();
    let report = service.plan_stgq(initiator, &lunch, Engine::Exact).unwrap();
    match &report.solution {
        Some(sol) => println!(
            "Tuesday   lunch plan: {} attendees, total distance {}, slots [{}, {}] ({:?})",
            sol.members.len(),
            sol.total_distance,
            sol.period.lo,
            sol.period.hi,
            report.elapsed
        ),
        None => println!("Tuesday   lunch plan: infeasible"),
    }

    // The same query again: served from the feasible-graph cache.
    let again = service.plan_stgq(initiator, &lunch, Engine::Exact).unwrap();
    println!(
        "Tuesday   repeat query cache hit: {} ({:?})",
        again.feasible_cache_hit, again.elapsed
    );

    // Wednesday: two members become friends; the cache invalidates itself.
    service.connect(ids[1], ids[2], 5).ok();
    let after = service.plan_stgq(initiator, &lunch, Engine::Exact).unwrap();
    println!(
        "Wednesday after a new friendship, cache hit: {} (answer distance {:?})",
        after.feasible_cache_hit,
        after.solution.as_ref().map(|s| s.total_distance)
    );

    // Thursday: a bigger offsite — friends-of-friends allowed (s = 2),
    // p = 8, half-day (8 slots). Compare engine tiers.
    let offsite = StgqQuery::new(8, 2, 2, 8).unwrap();
    for engine in [
        Engine::Exact,
        Engine::ExactParallel { threads: 0 },
        Engine::Greedy { restarts: 3 },
        Engine::LocalSearch {
            restarts: 3,
            passes: 4,
        },
    ] {
        let r = service.plan_stgq(initiator, &offsite, engine).unwrap();
        println!(
            "Thursday  {:?}: distance {:?} in {:?} (exact: {})",
            engine,
            r.solution.as_ref().map(|s| s.total_distance),
            r.elapsed,
            r.exact
        );
    }

    // Friday: one invitee goes on vacation; their slots disappear and the
    // plan adapts without any graph rebuild.
    if let Some(sol) = service
        .plan_stgq(initiator, &lunch, Engine::Exact)
        .unwrap()
        .solution
    {
        let unlucky = *sol.members.iter().find(|&&v| v != initiator).unwrap();
        service
            .set_availability_range(unlucky, SlotRange::new(0, horizon - 1), false)
            .unwrap();
        let replan = service.plan_stgq(initiator, &lunch, Engine::Exact).unwrap();
        println!(
            "Friday    {} went on vacation; replanned (cache hit: {}) → {:?}",
            unlucky,
            replan.feasible_cache_hit,
            replan
                .solution
                .as_ref()
                .map(|s| (s.total_distance, s.period.lo))
        );
    }

    let m = service.metrics();
    println!(
        "\nWeek summary: {} queries, {} mutations, snapshot rebuilds {}, fg-cache {} hits / {} misses",
        m.queries, m.mutations, m.snapshot_rebuilds, m.feasible_cache_hits, m.feasible_cache_misses
    );
}
