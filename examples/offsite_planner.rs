//! Offsite planner: the paper's motivating service on the 194-person
//! dataset analog. A team lead plans a 2-hour offsite for 8 people drawn
//! from her extended network (friends of friends), then compares the
//! optimizer's plan against what phone-call coordination (PCArrange) would
//! have produced — Figure 1(g)/(h) in miniature.
//!
//! ```text
//! cargo run --release --example offsite_planner
//! ```

use stgq::datagen::{pick_initiator, scenario::real_analog_194};
use stgq::prelude::*;
use stgq::query::validate::validate_stgq;

fn main() {
    // One working week of half-hour slots for 194 people in 6 communities.
    let ds = real_analog_194(7, 42);
    let lead = pick_initiator(&ds.graph, 20);
    println!(
        "Network: {} people, {} relationships; initiator {lead} with {} direct friends.",
        ds.graph.node_count(),
        ds.graph.edge_count(),
        ds.graph.degree(lead)
    );

    let p = 8; // team size incl. the lead
    let s = 2; // friends of friends welcome
    let m = 4; // 2 hours
    let cfg = SelectConfig::default();

    // ---- The optimizer's plan across k. ---------------------------------
    println!("\nSTGSelect plans (tightening the acquaintance constraint):");
    let mut best_plan = None;
    for k in (0..p).rev() {
        let query = StgqQuery::new(p, s, k, m).unwrap();
        let out = solve_stgq(&ds.graph, lead, &ds.calendars, &query, &cfg).unwrap();
        match out.solution {
            Some(sol) => {
                println!(
                    "  k={k}: distance {:>4}, meet {} (day {}), {} search frames",
                    sol.total_distance,
                    sol.period,
                    sol.period.lo / ds.grid.slots_per_day() + 1,
                    out.stats.frames
                );
                validate_stgq(&ds.graph, lead, &ds.calendars, &query, &sol)
                    .expect("solver output must satisfy every constraint");
                best_plan = Some((k, sol));
            }
            None => {
                println!("  k={k}: infeasible — someone would face too many strangers");
                break;
            }
        }
    }

    // ---- What manual coordination would have done. ----------------------
    println!("\nPCArrange (imitated phone coordination):");
    match pc_arrange(&ds.graph, lead, &ds.calendars, p, s, m).unwrap() {
        Some(pc) => {
            println!(
                "  gathered {} people, distance {}, observed k_h = {}, meets {}",
                pc.members.len(),
                pc.total_distance,
                pc.observed_k,
                pc.period
            );
            let sufficient = stg_arrange(
                &ds.graph,
                lead,
                &ds.calendars,
                p,
                s,
                m,
                pc.total_distance,
                &cfg,
            )
            .unwrap()
            .expect("PCArrange's own group certifies feasibility");
            println!(
                "  STGArrange: k = {} suffices for distance {} (PCArrange needed k_h = {})",
                sufficient.k, sufficient.solution.total_distance, pc.observed_k
            );
            assert!(sufficient.k <= pc.observed_k);
            assert!(sufficient.solution.total_distance <= pc.total_distance);
        }
        None => println!("  could not gather {p} people with a common window"),
    }

    if let Some((k, sol)) = best_plan {
        println!(
            "\nFinal recommendation (tightest k = {k}): members {:?} during {}.",
            sol.members, sol.period
        );
    }
}
