//! The paper's running example (Example 1, Figure 2): Casey Affleck plans
//! a movie discussion with mutually-acquainted co-stars, then a charity
//! trip, then re-plans under everyone's schedules.
//!
//! The network mirrors Figure 2(a) — cooperation relationships extracted
//! from Yahoo! Movies — with weights chosen to reproduce the paper's
//! narration: the three *closest* friends are mutual strangers, the
//! qualified k=0 groups cost 64 and 65, and the winner is
//! {George Clooney, Brad Pitt, Julia Roberts, Casey Affleck}.
//!
//! ```text
//! cargo run --example movie_night
//! ```

use stgq::prelude::*;
use stgq::schedule::render_schedules;

/// Figure 2(a): v1..v8 (we use 0-based ids 0..7 with the paper's names).
fn cast_network() -> SocialGraph {
    let names = [
        "Angelina Jolie",    // v1
        "George Clooney",    // v2
        "Robert De Niro",    // v3
        "Brad Pitt",         // v4
        "Matt Damon",        // v5
        "Julia Roberts",     // v6
        "Casey Affleck",     // v7 (initiator)
        "Michelle Monaghan", // v8
    ];
    let mut b = GraphBuilder::new(8);
    b.set_labels(names.iter().map(|s| s.to_string()).collect());
    // (u, v, distance) — Casey's direct co-stars first.
    let edges = [
        (6, 1, 17), // Casey–George
        (6, 2, 18), // Casey–Robert
        (6, 3, 27), // Casey–Brad
        (6, 5, 20), // Casey–Julia
        (6, 7, 19), // Casey–Michelle
        (1, 3, 14), // George–Brad
        (1, 5, 19), // George–Julia
        (3, 5, 26), // Brad–Julia
        (2, 3, 28), // Robert–Brad
        (2, 5, 39), // Robert–Julia
        (0, 1, 12), // Angelina–George
        (0, 2, 30), // Angelina–Robert
        (0, 3, 10), // Angelina–Brad
        (0, 4, 8),  // Angelina–Matt
        (4, 3, 23), // Matt–Brad
        (4, 1, 24), // Matt–George
    ];
    for (u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), w).unwrap();
    }
    b.build()
}

/// Figure 2(c): availability over ts1..ts6 (0-based slots 0..5).
fn cast_schedules() -> Vec<Calendar> {
    let rows: [&[usize]; 8] = [
        &[1, 2, 3, 4],       // v1 Angelina
        &[0, 1, 2, 3, 4],    // v2 George
        &[1, 2, 3, 4, 5],    // v3 Robert
        &[0, 1, 2, 3, 4, 5], // v4 Brad
        &[0, 2, 3, 4],       // v5 Matt
        &[1, 2, 4],          // v6 Julia
        &[1, 2, 3, 4, 5],    // v7 Casey
        &[0, 1, 2, 3, 5],    // v8 Michelle
    ];
    rows.iter()
        .map(|slots| Calendar::from_slots(6, slots.iter().copied()))
        .collect()
}

fn label_group(g: &SocialGraph, members: &[NodeId]) -> Vec<String> {
    members.iter().map(|&v| g.label(v)).collect()
}

fn main() {
    let graph = cast_network();
    let casey = graph.find_by_label("Casey Affleck").unwrap();
    let cfg = SelectConfig::default();

    // ---- Scene 1: three closest friends, ignoring acquaintance. --------
    let naive = SgqQuery::new(4, 1, usize::MAX >> 1).unwrap();
    let sol = solve_sgq(&graph, casey, &naive, &cfg)
        .unwrap()
        .solution
        .unwrap();
    println!("Closest three co-stars (no acquaintance constraint):");
    println!(
        "  {:?}  (distance {})",
        label_group(&graph, &sol.members),
        sol.total_distance
    );
    println!("  …but they barely know each other.\n");

    // ---- Scene 2: Example 1's SGQ(p=4, s=1, k=0). -----------------------
    let tight = SgqQuery::new(4, 1, 0).unwrap();
    let sol = solve_sgq(&graph, casey, &tight, &cfg)
        .unwrap()
        .solution
        .unwrap();
    println!("SGQ(p=4, s=1, k=0) — everyone must know everyone:");
    println!(
        "  {:?}  (distance {})",
        label_group(&graph, &sol.members),
        sol.total_distance
    );
    assert_eq!(
        sol.total_distance, 64,
        "the paper's qualified winner costs 64"
    );
    assert_eq!(
        label_group(&graph, &sol.members),
        [
            "George Clooney",
            "Brad Pitt",
            "Julia Roberts",
            "Casey Affleck"
        ]
    );
    println!("  (matches the paper: the 65-cost {{Robert, Brad, Julia, Casey}} loses)\n");

    // ---- Scene 3: the six-seat charity flight, SGQ(p=6, s=2, k=2). -----
    let flight = SgqQuery::new(6, 2, 2).unwrap();
    let sol = solve_sgq(&graph, casey, &flight, &cfg)
        .unwrap()
        .solution
        .unwrap();
    println!("SGQ(p=6, s=2, k=2) — friends-of-friends allowed, ≤2 strangers each:");
    println!(
        "  {:?}  (distance {})",
        label_group(&graph, &sol.members),
        sol.total_distance
    );
    println!();

    // ---- Scene 4: Example 1's STGQ — the same trip needs 3 shared slots.
    let cals = cast_schedules();
    let rows: Vec<(&str, &Calendar)> = (0..8)
        .map(|i| {
            let name: &str = [
                "Angelina", "George", "Robert", "Brad", "Matt", "Julia", "Casey", "Michelle",
            ][i];
            (name, &cals[i])
        })
        .collect();
    println!("{}", render_schedules(&rows));

    let trip = StgqQuery::new(6, 2, 2, 3).unwrap();
    let out = solve_stgq(&graph, casey, &cals, &trip, &cfg).unwrap();
    match out.solution {
        Some(sol) => {
            println!("STGQ(p=6, s=2, k=2, m=3):");
            println!(
                "  {:?}\n  meet during {} (distance {})",
                label_group(&graph, &sol.members),
                sol.period,
                sol.total_distance
            );
            // Cross-check against the sequential baseline.
            let slow =
                solve_stgq_sequential(&graph, casey, &cals, &trip, &cfg, SgqEngine::SgSelect)
                    .unwrap()
                    .solution
                    .unwrap();
            assert_eq!(slow.total_distance, sol.total_distance);
            println!("\nSTGSelect and the per-window baseline agree. ✓");
        }
        None => println!("STGQ(p=6, s=2, k=2, m=3): no feasible plan"),
    }
}
