//! Quickstart: build a small social graph and calendars by hand, then ask
//! both queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use stgq::prelude::*;
use stgq::schedule::render_schedules;

fn main() {
    // ---- 1. The social network: you (Ava) and five friends. ------------
    // Edge weights are social distances: smaller = closer.
    let names = ["Ava", "Ben", "Caro", "Dan", "Elif", "Finn"];
    let mut b = GraphBuilder::new(6);
    b.set_labels(names.iter().map(|s| s.to_string()).collect());
    let edges = [
        (0, 1, 3),  // Ava–Ben: close
        (0, 2, 4),  // Ava–Caro
        (0, 3, 8),  // Ava–Dan
        (0, 4, 12), // Ava–Elif: acquaintance
        (1, 2, 2),  // Ben–Caro
        (1, 3, 6),
        (2, 3, 5),
        (3, 4, 3),
        (4, 5, 2), // Finn is only reachable through Elif
    ];
    for (u, v, w) in edges {
        b.add_edge(NodeId(u), NodeId(v), w).unwrap();
    }
    let graph = b.build();
    let ava = NodeId(0);

    // ---- 2. SGQ: pick 4 people, direct friends only, max 1 stranger. ---
    let query = SgqQuery::new(4, 1, 1).unwrap();
    let out = solve_sgq(&graph, ava, &query, &SelectConfig::default()).unwrap();
    match &out.solution {
        Some(sol) => {
            let who: Vec<String> = sol.members.iter().map(|&v| graph.label(v)).collect();
            println!("SGQ(p=4, s=1, k=1): invite {:?}", who);
            println!("  total social distance: {}", sol.total_distance);
        }
        None => println!("SGQ(p=4, s=1, k=1): no feasible group"),
    }
    println!(
        "  (search explored {} frames, pruned {} of them early)\n",
        out.stats.frames,
        out.stats.total_prunes()
    );

    // ---- 3. Calendars: one day of 12 half-hour slots (18:00–24:00). ----
    let horizon = 12;
    let mut cals = vec![Calendar::new(horizon); 6];
    cals[0] = Calendar::from_slots(horizon, 2..12); // Ava free from 19:00
    cals[1] = Calendar::from_slots(horizon, 0..8); // Ben leaves at 22:00
    cals[2] = Calendar::from_slots(horizon, (0..12).filter(|s| s % 5 != 0)); // Caro: gaps
    cals[3] = Calendar::from_slots(horizon, 4..12);
    cals[4] = Calendar::from_slots(horizon, 0..6);
    cals[5] = Calendar::from_slots(horizon, 6..12);

    let rows: Vec<(&str, &Calendar)> = names.iter().copied().zip(cals.iter()).collect();
    println!("{}", render_schedules(&rows));

    // ---- 4. STGQ: same group constraints plus a 2-hour (4-slot) slot. --
    let query = StgqQuery::new(4, 1, 1, 4).unwrap();
    let out = solve_stgq(&graph, ava, &cals, &query, &SelectConfig::default()).unwrap();
    match &out.solution {
        Some(sol) => {
            let who: Vec<String> = sol.members.iter().map(|&v| graph.label(v)).collect();
            println!("STGQ(p=4, s=1, k=1, m=4): invite {:?}", who);
            println!(
                "  meet during {} (total distance {})",
                sol.period, sol.total_distance
            );
        }
        None => {
            println!("STGQ(p=4, s=1, k=1, m=4): no group of four shares a 2-hour window.");
            // Relax the group size: the optimizer tells us three works.
            let query = StgqQuery::new(3, 1, 1, 4).unwrap();
            let sol = solve_stgq(&graph, ava, &cals, &query, &SelectConfig::default())
                .unwrap()
                .solution
                .expect("three people do share a window");
            let who: Vec<String> = sol.members.iter().map(|&v| graph.label(v)).collect();
            println!("  relaxing to p=3: invite {:?}", who);
            println!(
                "  meet during {} (total distance {})",
                sol.period, sol.total_distance
            );
        }
    }
    let query = StgqQuery::new(4, 1, 1, 4).unwrap();

    // ---- 5. The same answer, the slow way, as a sanity check. ----------
    let slow = solve_stgq_sequential(
        &graph,
        ava,
        &cals,
        &query,
        &SelectConfig::default(),
        SgqEngine::Exhaustive,
    )
    .unwrap();
    assert_eq!(
        out.solution.as_ref().map(|s| s.total_distance),
        slow.solution.as_ref().map(|s| s.total_distance),
        "exact engines must agree"
    );
    println!("\nSTGSelect and the exhaustive baseline agree. ✓");
}
