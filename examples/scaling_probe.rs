//! Scaling probe: how the engines behave as the network grows and as its
//! topology changes — a miniature of Figure 1(d) plus a topology ablation
//! the paper's DESIGN.md calls out (coauthorship vs BA vs small-world).
//!
//! ```text
//! cargo run --release --example scaling_probe
//! ```

use std::time::Instant;

use stgq::datagen::{ba::ba_graph, coauthor, pick_initiator, ws::ws_graph};
use stgq::graph::analysis;
use stgq::prelude::*;

fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let cfg = SelectConfig::default();
    let query = SgqQuery::new(5, 1, 3).unwrap();

    // ---- Network-size sweep on the coauthorship model (Figure 1(d)). ---
    println!("network size sweep (coauthorship, p=5, k=3, s=1):");
    println!(
        "{:>7} {:>12} {:>12} {:>8}",
        "n", "SGSelect", "Baseline", "dist"
    );
    for n in [194usize, 800, 3200, 12800] {
        let g = coauthor::coauthor_graph(&coauthor::CoauthorConfig::with_n(n), 7);
        let q = pick_initiator(&g, 20);
        let (fast, fast_ms) = time_ms(|| solve_sgq(&g, q, &query, &cfg).unwrap());
        let (slow, slow_ms) = time_ms(|| solve_sgq_exhaustive(&g, q, &query).unwrap());
        let fd = fast.solution.as_ref().map(|s| s.total_distance);
        assert_eq!(fd, slow.solution.as_ref().map(|s| s.total_distance));
        println!(
            "{n:>7} {fast_ms:>10.3}ms {slow_ms:>10.3}ms {:>8}",
            fd.map_or("-".into(), |d| d.to_string())
        );
    }

    // ---- Topology ablation at fixed n. ----------------------------------
    println!("\ntopology ablation (n=800, p=5, k=2, s=2):");
    let query = SgqQuery::new(5, 2, 2).unwrap();
    let nets: Vec<(&str, SocialGraph)> = vec![
        (
            "coauthor",
            coauthor::coauthor_graph(&coauthor::CoauthorConfig::with_n(800), 7),
        ),
        ("ba(m=3)", ba_graph(800, 3, 7)),
        ("ws(k=3,b=.1)", ws_graph(800, 3, 0.1, 7)),
    ];
    println!(
        "{:>13} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "topology", "clustering", "SGSelect", "frames", "dist", "|GF|"
    );
    for (name, g) in &nets {
        let q = pick_initiator(g, 15);
        let cl = analysis::global_clustering(g);
        let fg_size = stgq::graph::FeasibleGraph::extract(g, q, 2).len();
        let (out, ms) = time_ms(|| solve_sgq(g, q, &query, &cfg).unwrap());
        println!(
            "{name:>13} {cl:>10.3} {ms:>8.3}ms {:>10} {:>8} {fg_size:>8}",
            out.stats.frames,
            out.solution
                .as_ref()
                .map_or("-".into(), |s| s.total_distance.to_string()),
        );
    }
    println!("\nDense, clustered neighborhoods (coauthor/WS) admit tight groups;");
    println!("BA's star-like hubs often cannot satisfy k=2 at all — exactly the");
    println!("acquaintance-constraint behaviour the paper motivates.");
}
