//! # stgq — Social-Temporal Group Query
//!
//! A complete Rust implementation of *On Social-Temporal Group Query with
//! Acquaintance Constraint* (Yang, Chen, Lee, Chen — PVLDB 4(6), 2011):
//! optimal activity planning over a social network and its members'
//! calendars.
//!
//! Given an initiator, SGQ picks the `p` socially-closest attendees within
//! `s` hops such that nobody faces more than `k` strangers; STGQ
//! additionally picks `m` consecutive time slots everybody is free.
//! Both are NP-hard; the exact engines here (SGSelect / STGSelect) solve
//! realistic instances in microseconds-to-milliseconds via the paper's
//! pruning strategies.
//!
//! # Performance
//!
//! The exact engines run on a word-parallel, zero-allocation search core:
//! availability bitmaps and Lemma-5 counters are built and maintained
//! whole-`u64`-words at a time, search frames share one undo-logged `VA`
//! state instead of cloning per descent, and the `U`/`A` feasibility
//! conditions are evaluated from incrementally-maintained aggregates (see
//! the `stgq_core` crate docs, "Hot-path architecture"). The serving path
//! is **zero-copy end to end**: per query the executor extracts a
//! borrowed `FeasibleView` — a compact candidate index plus one masked
//! adjacency word matrix generated straight over the snapshot's sharded
//! CSR segments — instead of materializing a `FeasibleGraph` (per-row
//! neighbor/weight vectors and bitsets), and the engines consume either
//! carrier through the `CandidateTopology` trait with bit-identical
//! results (the materialized path stays available as an A/B oracle via
//! `exec::ExtractionMode`). The
//! pre-optimization engines are kept in `stgq::query::reference` and the
//! `hotpath` criterion suite (`cargo bench -p stgq-bench --bench hotpath`)
//! measures one against the other; the committed `BENCH_core.json`
//! baseline shows ~1.8–3.1× on fig1f-style instances, with the largest
//! gains where the temporal counters dominate (long activities, long
//! schedules). For multi-core scaling use `solve_sgq_parallel` /
//! `solve_stgq_parallel`, which keep the exact optimum while splitting the
//! search across forced-prefix subtrees and pivot time slots.
//!
//! This crate is a facade over the workspace:
//!
//! * [`graph`] — weighted social graph, bounded distances, feasible graph;
//! * [`schedule`] — slot grids, calendars, pivot time slots;
//! * [`query`] — the query engines (SGSelect, STGSelect, baselines,
//!   PCArrange, STGArrange, parallel and heuristic solvers) and the
//!   solution validator;
//! * [`kplex`] — the k-plex substrate behind the acquaintance constraint
//!   (maximum k-plex, maximal enumeration, the Theorem-1 reduction);
//! * [`mip`] — a from-scratch simplex + branch & bound;
//! * [`ip`] — the paper's Appendix-D Integer Programming formulation;
//! * [`datagen`] — synthetic datasets shaped after the paper's evaluation;
//! * [`exec`] — the sharded, batched query-execution subsystem (admission
//!   queue → initiator-shard batching → fixed worker pool → epoch-swapped
//!   snapshot read path) serving many concurrent queries over one shared
//!   graph;
//! * [`service`] — a long-lived planning service with incremental updates;
//!   its `Planner` is a thin façade over [`exec`] and emits a replicable
//!   delta feed from its version counters;
//! * [`cluster`] — shard-routed multi-node serving over replicated epoch
//!   snapshots: a shard router scatters batches across per-node
//!   executors, a single writer ships version-stamped deltas (full sync
//!   on attach or gap) through a pluggable transport, and read-your-writes
//!   is enforced via minimum-epoch requirements on requests;
//! * [`obs`] — dependency-free observability primitives: lock-free log₂
//!   latency histograms, the per-query flight recorder, and the
//!   Prometheus text renderer/parser.
//!
//! # Observability
//!
//! Every serving layer records into the same spectrum — lock-free log₂
//! histograms ([`obs::Histogram`]) and a per-query flight recorder
//! ([`obs::FlightRecorder`]) — exposed as Prometheus text by
//! `service::Planner::prometheus_text` (one process) and
//! `cluster::ClusterObs::prometheus_text` (fleet-merged plus per-node),
//! and from the command line by `stgq-plan metrics`. Instrumentation is
//! always compiled in; the only in-solve cost is two clock reads per
//! descended pivot (`query::StageTimings`), gated by the `obs-overhead`
//! bench at ≤ 2%.
//!
//! The counters and histograms map onto the serving pipeline like this
//! (histogram families carry the `_ns` suffix in the exposition):
//!
//! | Pipeline stage | Histograms | Counters (`MetricsSnapshot`) |
//! |---|---|---|
//! | **admission** — submit → a worker picks the entry up | `queue_wait` | `batched_entries` |
//! | **shard batch** — group by initiator shard, collapse repeats | — | `collapsed_entries` (and `queries`) |
//! | **cache** — version-stamped result replay, feasible-graph lookup | `end_to_end` low mode | `result_cache_hits`/`misses`, `result_cache_evicted_*`, `feasible_cache_hits`/`misses` |
//! | **extract** — zero-copy candidate view over the snapshot's CSR segments (the materialized graph kept as the A/B oracle, `exec::ExtractionMode`) | `feasible_extract` | `extract_words_borrowed`, `extract_words_copied` |
//! | **prepare** — pivot availability buffers, run cache shared across solves | `prep` | `prep_words_delta`, `prep_words_rebuilt`, `run_cache_cross_solve_hits` |
//! | **peel** — fixpoint (p, k)-core reduction before descent | inside `solve` | `peeled_candidates`, `pivots_refused_by_core` |
//! | **floor** — pivot-granularity distance bound skipping whole pivots | inside `solve` | `pivots_skipped` |
//! | **descend** — the exact branch & bound itself | `descend`, `solve` | `frames_examined`, `frames_pruned_by_bound`, `frames_pruned_by_match`, `children_pruned_by_parent_bound`, `cancelled` |
//! | **publish** — epoch-swapped snapshot rebuild after mutations | `snapshot_publish` | `snapshot_rebuilds`, `snapshot_shards_rebuilt`/`reused`, `mutations` |
//!
//! End-to-end latency (`end_to_end`) spans the whole row set: queue wait
//! plus the answer envelope, sampled for every answer including replays.
//! The cluster adds per-message-class RPC round-trip histograms
//! (`rpc_replication`, `rpc_execute`, `rpc_status` — retry backoff
//! included) and per-node lag/suspicion gauges. Solves slower than
//! `exec::ExecConfig::slow_query_threshold` land in the slow-query log
//! with their full stage breakdown (`stgq-plan metrics --slow-log`; the
//! `stgq-plan --help` text walks through a triage).
//!
//! ```
//! use stgq::prelude::*;
//!
//! // Five friends around the initiator v0; plan a 3-person get-together
//! // where everyone knows everyone (k = 0) among direct friends (s = 1).
//! let mut b = GraphBuilder::new(5);
//! b.add_edge(NodeId(0), NodeId(1), 4).unwrap();
//! b.add_edge(NodeId(0), NodeId(2), 6).unwrap();
//! b.add_edge(NodeId(0), NodeId(3), 9).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
//! let graph = b.build();
//!
//! let query = SgqQuery::new(3, 1, 0).unwrap();
//! let out = solve_sgq(&graph, NodeId(0), &query, &SelectConfig::default()).unwrap();
//! assert_eq!(out.solution.unwrap().total_distance, 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use stgq_cluster as cluster;
pub use stgq_core as query;
pub use stgq_datagen as datagen;
pub use stgq_exec as exec;
pub use stgq_graph as graph;
pub use stgq_ip as ip;
pub use stgq_kplex as kplex;
pub use stgq_mip as mip;
pub use stgq_obs as obs;
pub use stgq_schedule as schedule;
pub use stgq_service as service;

/// The items nearly every user needs.
pub mod prelude {
    pub use stgq_core::{
        pc_arrange, solve_sgq, solve_sgq_exhaustive, solve_stgq, solve_stgq_sequential,
        stg_arrange, SelectConfig, SgqEngine, SgqQuery, StgqQuery,
    };
    pub use stgq_graph::{Dist, GraphBuilder, NodeId, SocialGraph};
    pub use stgq_schedule::{Calendar, SlotRange, TimeGrid};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_whole_pipeline() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        let g = b.build();
        let cals = vec![Calendar::all_available(6); 3];
        let q = StgqQuery::new(3, 1, 0, 2).unwrap();
        let out = solve_stgq(&g, NodeId(0), &cals, &q, &SelectConfig::default()).unwrap();
        let sol = out.solution.unwrap();
        assert_eq!(sol.total_distance, 3);
        assert_eq!(sol.period.len(), 2);
    }
}
