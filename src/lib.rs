//! # stgq — Social-Temporal Group Query
//!
//! A complete Rust implementation of *On Social-Temporal Group Query with
//! Acquaintance Constraint* (Yang, Chen, Lee, Chen — PVLDB 4(6), 2011):
//! optimal activity planning over a social network and its members'
//! calendars.
//!
//! Given an initiator, SGQ picks the `p` socially-closest attendees within
//! `s` hops such that nobody faces more than `k` strangers; STGQ
//! additionally picks `m` consecutive time slots everybody is free.
//! Both are NP-hard; the exact engines here (SGSelect / STGSelect) solve
//! realistic instances in microseconds-to-milliseconds via the paper's
//! pruning strategies.
//!
//! # Performance
//!
//! The exact engines run on a word-parallel, zero-allocation search core:
//! availability bitmaps and Lemma-5 counters are built and maintained
//! whole-`u64`-words at a time, search frames share one undo-logged `VA`
//! state instead of cloning per descent, and the `U`/`A` feasibility
//! conditions are evaluated from incrementally-maintained aggregates (see
//! the `stgq_core` crate docs, "Hot-path architecture"). The
//! pre-optimization engines are kept in `stgq::query::reference` and the
//! `hotpath` criterion suite (`cargo bench -p stgq-bench --bench hotpath`)
//! measures one against the other; the committed `BENCH_core.json`
//! baseline shows ~1.8–3.1× on fig1f-style instances, with the largest
//! gains where the temporal counters dominate (long activities, long
//! schedules). For multi-core scaling use `solve_sgq_parallel` /
//! `solve_stgq_parallel`, which keep the exact optimum while splitting the
//! search across forced-prefix subtrees and pivot time slots.
//!
//! This crate is a facade over the workspace:
//!
//! * [`graph`] — weighted social graph, bounded distances, feasible graph;
//! * [`schedule`] — slot grids, calendars, pivot time slots;
//! * [`query`] — the query engines (SGSelect, STGSelect, baselines,
//!   PCArrange, STGArrange, parallel and heuristic solvers) and the
//!   solution validator;
//! * [`kplex`] — the k-plex substrate behind the acquaintance constraint
//!   (maximum k-plex, maximal enumeration, the Theorem-1 reduction);
//! * [`mip`] — a from-scratch simplex + branch & bound;
//! * [`ip`] — the paper's Appendix-D Integer Programming formulation;
//! * [`datagen`] — synthetic datasets shaped after the paper's evaluation;
//! * [`exec`] — the sharded, batched query-execution subsystem (admission
//!   queue → initiator-shard batching → fixed worker pool → epoch-swapped
//!   snapshot read path) serving many concurrent queries over one shared
//!   graph;
//! * [`service`] — a long-lived planning service with incremental updates;
//!   its `Planner` is a thin façade over [`exec`] and emits a replicable
//!   delta feed from its version counters;
//! * [`cluster`] — shard-routed multi-node serving over replicated epoch
//!   snapshots: a shard router scatters batches across per-node
//!   executors, a single writer ships version-stamped deltas (full sync
//!   on attach or gap) through a pluggable transport, and read-your-writes
//!   is enforced via minimum-epoch requirements on requests.
//!
//! ```
//! use stgq::prelude::*;
//!
//! // Five friends around the initiator v0; plan a 3-person get-together
//! // where everyone knows everyone (k = 0) among direct friends (s = 1).
//! let mut b = GraphBuilder::new(5);
//! b.add_edge(NodeId(0), NodeId(1), 4).unwrap();
//! b.add_edge(NodeId(0), NodeId(2), 6).unwrap();
//! b.add_edge(NodeId(0), NodeId(3), 9).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 2).unwrap();
//! let graph = b.build();
//!
//! let query = SgqQuery::new(3, 1, 0).unwrap();
//! let out = solve_sgq(&graph, NodeId(0), &query, &SelectConfig::default()).unwrap();
//! assert_eq!(out.solution.unwrap().total_distance, 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use stgq_cluster as cluster;
pub use stgq_core as query;
pub use stgq_datagen as datagen;
pub use stgq_exec as exec;
pub use stgq_graph as graph;
pub use stgq_ip as ip;
pub use stgq_kplex as kplex;
pub use stgq_mip as mip;
pub use stgq_schedule as schedule;
pub use stgq_service as service;

/// The items nearly every user needs.
pub mod prelude {
    pub use stgq_core::{
        pc_arrange, solve_sgq, solve_sgq_exhaustive, solve_stgq, solve_stgq_sequential,
        stg_arrange, SelectConfig, SgqEngine, SgqQuery, StgqQuery,
    };
    pub use stgq_graph::{Dist, GraphBuilder, NodeId, SocialGraph};
    pub use stgq_schedule::{Calendar, SlotRange, TimeGrid};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_whole_pipeline() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        let g = b.build();
        let cals = vec![Calendar::all_available(6); 3];
        let q = StgqQuery::new(3, 1, 0, 2).unwrap();
        let out = solve_stgq(&g, NodeId(0), &cals, &q, &SelectConfig::default()).unwrap();
        let sol = out.solution.unwrap();
        assert_eq!(sol.total_distance, 3);
        assert_eq!(sol.period.len(), 2);
    }
}
