//! `stgq-plan` — the paper's activity-planning service as a command-line
//! tool: generate a dataset snapshot, then ask SGQ/STGQ queries against it.
//!
//! ```text
//! # 1. generate a 194-person dataset with one week of calendars
//! stgq-plan generate --out team.json --days 7 --seed 42
//!
//! # 2. who should I invite (5 people, friends-of-friends, ≤1 stranger,
//! #    2 hours) and when?
//! stgq-plan query --data team.json --initiator 10 -p 5 -s 2 -k 1 -m 4
//!
//! # 3. the same without the temporal dimension (SGQ):
//! stgq-plan query --data team.json --initiator 10 -p 5 -s 2 -k 1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use stgq::datagen::io::{load_dataset, save_dataset};
use stgq::datagen::scenario::{real_analog_194, synthetic_coauthor};
use stgq::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  stgq-plan generate --out FILE [--days N] [--seed N] [--coauthor N]
  stgq-plan query --data FILE --initiator ID -p N [-s N] [-k N] [-m N]
                  [--compare]

generate  writes a JSON dataset snapshot (194-person community analog by
          default; --coauthor N switches to the coauthorship model).
query     answers an SGQ (no -m) or STGQ (with -m) against a snapshot;
          --compare additionally runs PCArrange for a quality comparison.
";

/// Pull `--flag value` (or `-f value`) out of an argument list.
fn take_value(args: &[String], names: &[&str]) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if names.contains(&a.as_str()) {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{a} needs a value")),
            };
        }
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what}: '{v}'"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let out = take_value(args, &["--out", "-o"])?.ok_or("generate requires --out FILE")?;
    let days: usize = match take_value(args, &["--days"])? {
        Some(v) => parse(&v, "--days")?,
        None => 7,
    };
    let seed: u64 = match take_value(args, &["--seed"])? {
        Some(v) => parse(&v, "--seed")?,
        None => 42,
    };
    let ds = match take_value(args, &["--coauthor"])? {
        Some(n) => synthetic_coauthor(parse(&n, "--coauthor size")?, days, seed),
        None => real_analog_194(days, seed),
    };
    save_dataset(&ds, &PathBuf::from(&out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} people, {} relationships, {} days x {} slots",
        ds.graph.node_count(),
        ds.graph.edge_count(),
        ds.grid.days(),
        ds.grid.slots_per_day()
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let data = take_value(args, &["--data", "-d"])?.ok_or("query requires --data FILE")?;
    let initiator: u32 = parse(
        &take_value(args, &["--initiator", "-i"])?.ok_or("query requires --initiator ID")?,
        "--initiator",
    )?;
    let p: usize = parse(
        &take_value(args, &["-p"])?.ok_or("query requires -p N")?,
        "-p",
    )?;
    let s: usize = match take_value(args, &["-s"])? {
        Some(v) => parse(&v, "-s")?,
        None => 1,
    };
    let k: usize = match take_value(args, &["-k"])? {
        Some(v) => parse(&v, "-k")?,
        None => p.saturating_sub(1),
    };
    let m: Option<usize> = match take_value(args, &["-m"])? {
        Some(v) => Some(parse(&v, "-m")?),
        None => None,
    };
    let compare = args.iter().any(|a| a == "--compare");

    let ds = load_dataset(&PathBuf::from(&data)).map_err(|e| e.to_string())?;
    let q = NodeId(initiator);
    let cfg = SelectConfig::default();

    match m {
        None => {
            let query = SgqQuery::new(p, s, k).map_err(|e| e.to_string())?;
            let out = solve_sgq(&ds.graph, q, &query, &cfg).map_err(|e| e.to_string())?;
            match out.solution {
                Some(sol) => {
                    println!("SGQ(p={p}, s={s}, k={k}) for initiator {q}:");
                    println!("  invite: {:?}", sol.members);
                    println!("  total social distance: {}", sol.total_distance);
                }
                None => println!("SGQ(p={p}, s={s}, k={k}): no feasible group"),
            }
            println!(
                "  ({} frames, {} pruned)",
                out.stats.frames,
                out.stats.total_prunes()
            );
        }
        Some(m) => {
            let query = StgqQuery::new(p, s, k, m).map_err(|e| e.to_string())?;
            let out =
                solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).map_err(|e| e.to_string())?;
            match &out.solution {
                Some(sol) => {
                    println!("STGQ(p={p}, s={s}, k={k}, m={m}) for initiator {q}:");
                    println!("  invite: {:?}", sol.members);
                    println!(
                        "  meet during {} (starting {})",
                        sol.period,
                        ds.grid.label(sol.period.lo)
                    );
                    println!("  total social distance: {}", sol.total_distance);
                }
                None => println!("STGQ(p={p}, s={s}, k={k}, m={m}): no feasible plan"),
            }
            println!(
                "  ({} pivots, {} frames, {} pruned)",
                out.stats.pivots_processed,
                out.stats.frames,
                out.stats.total_prunes()
            );
            if compare {
                match pc_arrange(&ds.graph, q, &ds.calendars, p, s, m).map_err(|e| e.to_string())? {
                    Some(pc) => {
                        println!("phone-coordination comparison (PCArrange):");
                        println!(
                            "  invite: {:?} — distance {}, observed k_h = {}",
                            pc.members, pc.total_distance, pc.observed_k
                        );
                    }
                    None => println!("PCArrange could not gather {p} people"),
                }
            }
        }
    }
    Ok(())
}
