//! `stgq-plan` — the paper's activity-planning service as a command-line
//! tool: generate a dataset snapshot, then ask SGQ/STGQ queries against it.
//!
//! ```text
//! # 1. generate a 194-person dataset with one week of calendars
//! stgq-plan generate --out team.json --days 7 --seed 42
//!
//! # 2. who should I invite (5 people, friends-of-friends, ≤1 stranger,
//! #    2 hours) and when?
//! stgq-plan query --data team.json --initiator 10 -p 5 -s 2 -k 1 -m 4
//!
//! # 3. the same without the temporal dimension (SGQ):
//! stgq-plan query --data team.json --initiator 10 -p 5 -s 2 -k 1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use stgq::datagen::io::{load_dataset, save_dataset};
use stgq::datagen::scenario::{real_analog_194, synthetic_coauthor};
use stgq::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("batch") => batch(&args[1..]),
        Some("cluster") => cluster(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  stgq-plan generate --out FILE [--days N] [--seed N] [--coauthor N]
  stgq-plan query --data FILE --initiator ID -p N [-s N] [-k N] [-m N]
                  [--compare]
  stgq-plan batch --data FILE -p N [-s N] [-k N] [-m N] [--queries N]
                  [--workers N] [--chunk N]
  stgq-plan cluster --data FILE -p N [-s N] [-k N] [-m N] [--queries N]
                    [--max-nodes N]
  stgq-plan metrics [--data FILE | --members N] [--seed N] [-p N] [-s N]
                    [-k N] [-m N] [--queries N] [--nodes N] [--slow-log]
                    [--slow-threshold-us N]

generate  writes a JSON dataset snapshot (194-person community analog by
          default; --coauthor N switches to the coauthorship model).
query     answers an SGQ (no -m) or STGQ (with -m) against a snapshot;
          --compare additionally runs PCArrange for a quality comparison.
batch     drives a hot-query serving workload through the stgq-exec
          executor (admission -> shard batching -> worker pool) and
          reports throughput against the sequential per-query loop.
cluster   drives the same workload through stgq-cluster at 1, 2, ...,
          --max-nodes in-process nodes (shard router -> transport ->
          replicated epoch snapshots) and reports scale-out throughput
          plus replication metrics.
metrics   drives the hot workload against a shard-aligned metropolis
          world of --members people (default 2000; --data serves a
          snapshot instead), then prints the full latency spectrum in
          Prometheus text format: end-to-end, queue-wait, solve, prep,
          descend, feasible-extract and snapshot-publish histograms —
          fleet-merged and per node at --nodes >= 1 (default 2), plus
          per-message-class RPC round-trips, per-node lag/suspicion and
          every pipeline counter. --nodes 0 exposes one in-process
          planner instead. --slow-log dumps the flight recorder's
          slowest-N query traces as JSON instead of the exposition.

slow-query triage, worked example:
  1. capture: lower the slow threshold until the suspects land in the log
       stgq-plan metrics --members 4000 -p 6 --slow-threshold-us 200 \\
                         --nodes 0 --slow-log
  2. each trace breaks one solve into its stage spans (ns):
       {\"initiator\":931,\"query\":\"stgq(p=6,s=2,k=5,m=4)\",
        \"queue_wait_ns\":2901,\"extract_ns\":102,\"prepare_ns\":312876,
        \"descend_ns\":501234,\"total_ns\":841303,
        \"frames\":184223,\"frames_pruned_by_bound\":1742,
        \"prep_words_delta\":0,\"prep_words_rebuilt\":96320,...}
  3. read the dominant span against its counters:
       descend_ns dominating, frames_pruned_by_bound low
         -> the distance bounds are not biting: suspect a query shape
            the incumbent cannot tighten (large p, loose k) or a cold
            incumbent right after a write burst.
       prepare_ns dominating, prep_words_rebuilt >> prep_words_delta
         -> calendar churn invalidated the incremental-prep run cache:
            batch mutations between query waves.
       extract_ns large on repeat initiators
         -> feasible-graph cache evictions: raise the cache capacity
            above the distinct-initiator count.
       queue_wait_ns dominating while solve_ns is modest
         -> admission backlog: add workers (or nodes) rather than
            tuning the engine.
";

/// Pull `--flag value` (or `-f value`) out of an argument list.
fn take_value(args: &[String], names: &[&str]) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if names.contains(&a.as_str()) {
            return match args.get(i + 1) {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{a} needs a value")),
            };
        }
    }
    Ok(None)
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what}: '{v}'"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let out = take_value(args, &["--out", "-o"])?.ok_or("generate requires --out FILE")?;
    let days: usize = match take_value(args, &["--days"])? {
        Some(v) => parse(&v, "--days")?,
        None => 7,
    };
    let seed: u64 = match take_value(args, &["--seed"])? {
        Some(v) => parse(&v, "--seed")?,
        None => 42,
    };
    let ds = match take_value(args, &["--coauthor"])? {
        Some(n) => synthetic_coauthor(parse(&n, "--coauthor size")?, days, seed),
        None => real_analog_194(days, seed),
    };
    save_dataset(&ds, &PathBuf::from(&out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} people, {} relationships, {} days x {} slots",
        ds.graph.node_count(),
        ds.graph.edge_count(),
        ds.grid.days(),
        ds.grid.slots_per_day()
    );
    Ok(())
}

/// Serve a repeated-query workload through the executor and report
/// queries/sec for the batched vs the sequential path.
fn batch(args: &[String]) -> Result<(), String> {
    use stgq::exec::{ExecConfig, QuerySpec};
    use stgq::service::{BatchQuery, Engine, Planner};

    let data = take_value(args, &["--data", "-d"])?.ok_or("batch requires --data FILE")?;
    let p: usize = parse(
        &take_value(args, &["-p"])?.ok_or("batch requires -p N")?,
        "-p",
    )?;
    let s: usize = match take_value(args, &["-s"])? {
        Some(v) => parse(&v, "-s")?,
        None => 2,
    };
    let k: usize = match take_value(args, &["-k"])? {
        Some(v) => parse(&v, "-k")?,
        None => p.saturating_sub(1),
    };
    let m: usize = match take_value(args, &["-m"])? {
        Some(v) => parse(&v, "-m")?,
        None => 4,
    };
    let queries: usize = match take_value(args, &["--queries"])? {
        Some(v) => parse(&v, "--queries")?,
        None => 64,
    };
    let workers: usize = match take_value(args, &["--workers"])? {
        Some(v) => parse(&v, "--workers")?,
        None => 0,
    };
    let chunk: usize = match take_value(args, &["--chunk"])? {
        Some(v) => parse::<usize>(&v, "--chunk")?.max(1),
        None => 64,
    };

    let ds = load_dataset(&PathBuf::from(&data)).map_err(|e| e.to_string())?;
    let mut planner = Planner::with_exec_config(
        ds.grid.horizon(),
        ExecConfig {
            workers,
            // The report compares batching against the sequential loop:
            // with the cross-batch result cache on, both timed passes
            // would be pure replay of the warmup's answers and the
            // comparison would measure cache-lookup overhead instead of
            // solve throughput.
            result_cache_capacity: 0,
            ..ExecConfig::default()
        },
    );
    for v in 0..ds.graph.node_count() {
        planner.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        planner
            .connect(e.a, e.b, e.weight)
            .map_err(|e| e.to_string())?;
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        planner
            .set_calendar(NodeId(v as u32), cal.clone())
            .map_err(|e| e.to_string())?;
    }

    // A hot workload: queries repeat across a small pool of popular
    // initiators, as server traffic does (~3 occurrences per distinct
    // query — the repetition is what request collapsing exploits).
    let sgq = SgqQuery::new(p, s, k).map_err(|e| e.to_string())?;
    let stgq = StgqQuery::new(p, s, k, m).map_err(|e| e.to_string())?;
    let n = ds.graph.node_count() as u32;
    let distinct = (queries / 3).max(1) as u32;
    let workload: Vec<BatchQuery> = (0..queries as u32)
        .map(|i| {
            let d = (i * 13 + i / 7) % distinct;
            BatchQuery {
                initiator: NodeId((d * 29 + 7) % n),
                spec: if d.is_multiple_of(2) {
                    QuerySpec::Stgq(stgq)
                } else {
                    QuerySpec::Sgq(sgq)
                },
                engine: Engine::Exact,
            }
        })
        .collect();

    // Untimed warmup of both paths: fills the feasible-graph cache and
    // the worker arenas so the timed comparison measures solving, not
    // first-touch extraction order.
    for q in workload.iter().take(distinct as usize * 2) {
        match q.spec {
            QuerySpec::Sgq(query) => drop(planner.plan_sgq(q.initiator, &query, q.engine)),
            QuerySpec::Stgq(query) => drop(planner.plan_stgq(q.initiator, &query, q.engine)),
        }
    }
    drop(planner.plan_batch(&workload));

    let t0 = std::time::Instant::now();
    let mut sequential_feasible = 0usize;
    for q in &workload {
        let feasible = match q.spec {
            QuerySpec::Sgq(query) => planner
                .plan_sgq(q.initiator, &query, q.engine)
                .map_err(|e| e.to_string())?
                .solution
                .is_some(),
            QuerySpec::Stgq(query) => planner
                .plan_stgq(q.initiator, &query, q.engine)
                .map_err(|e| e.to_string())?
                .solution
                .is_some(),
        };
        sequential_feasible += usize::from(feasible);
    }
    let sequential = t0.elapsed();

    let t0 = std::time::Instant::now();
    let mut batched_feasible = 0usize;
    for queries in workload.chunks(chunk) {
        for reply in planner.plan_batch(queries) {
            batched_feasible +=
                usize::from(reply.map_err(|e| e.to_string())?.objective().is_some());
        }
    }
    let batched = t0.elapsed();

    if sequential_feasible != batched_feasible {
        return Err(format!(
            "paths disagree: sequential found {sequential_feasible} feasible, batched {batched_feasible}"
        ));
    }
    let qps = |d: std::time::Duration| workload.len() as f64 / d.as_secs_f64();
    let metrics = planner.exec_metrics();
    println!(
        "{} queries ({} feasible) over {} people, {} workers, {} shards:",
        workload.len(),
        sequential_feasible,
        ds.graph.node_count(),
        metrics.workers,
        metrics.shards,
    );
    println!(
        "  sequential loop : {:>10.0} queries/sec ({:.1} ms total)",
        qps(sequential),
        sequential.as_secs_f64() * 1e3
    );
    println!(
        "  batched (chunk {chunk}): {:>10.0} queries/sec ({:.1} ms total, {:.2}x)",
        qps(batched),
        batched.as_secs_f64() * 1e3,
        sequential.as_secs_f64() / batched.as_secs_f64()
    );
    println!(
        "  executor: {} shard jobs, {} batched entries, {} collapsed, {} fg-cache hits / {} misses",
        metrics.shard_jobs,
        metrics.batched_entries,
        metrics.collapsed_entries,
        metrics.feasible_cache_hits,
        metrics.feasible_cache_misses,
    );
    println!(
        "  search:   {} frames examined, {} pruned by bound, {} pruned by match, {} pivots skipped",
        metrics.frames_examined,
        metrics.frames_pruned_by_bound,
        metrics.frames_pruned_by_match,
        metrics.pivots_skipped,
    );
    println!(
        "  reduce:   {} candidates peeled, {} pivots refused by core, {} children pruned by parent bound",
        metrics.peeled_candidates,
        metrics.pivots_refused_by_core,
        metrics.children_pruned_by_parent_bound,
    );
    println!(
        "  prep:     {} words delta'd, {} words rebuilt, {} cross-solve run-cache hits",
        metrics.prep_words_delta, metrics.prep_words_rebuilt, metrics.run_cache_cross_solve_hits,
    );
    println!(
        "  extract:  {} words borrowed (zero-copy view), {} words copied (materialized)",
        metrics.extract_words_borrowed, metrics.extract_words_copied,
    );
    println!(
        "  snapshot: {} publishes, {} shards rebuilt / {} reused",
        metrics.snapshot_publishes, metrics.snapshot_shards_rebuilt, metrics.snapshot_shards_reused,
    );
    println!(
        "  replay:   {} result-cache hits / {} misses, {} stale-shard evictions, {} capacity evictions",
        metrics.result_cache_hits,
        metrics.result_cache_misses,
        metrics.result_cache_evicted_stale_shard,
        metrics.result_cache_evicted_capacity,
    );
    Ok(())
}

/// Serve a repeated-query workload through clusters of growing size and
/// report scale-out throughput.
fn cluster(args: &[String]) -> Result<(), String> {
    use stgq::cluster::{Cluster, ClusterConfig, Suspicion};
    use stgq::exec::{ExecConfig, QuerySpec};
    use stgq::service::{BatchQuery, Engine};

    let data = take_value(args, &["--data", "-d"])?.ok_or("cluster requires --data FILE")?;
    let p: usize = parse(
        &take_value(args, &["-p"])?.ok_or("cluster requires -p N")?,
        "-p",
    )?;
    let s: usize = match take_value(args, &["-s"])? {
        Some(v) => parse(&v, "-s")?,
        None => 2,
    };
    let k: usize = match take_value(args, &["-k"])? {
        Some(v) => parse(&v, "-k")?,
        None => p.saturating_sub(1),
    };
    let m: usize = match take_value(args, &["-m"])? {
        Some(v) => parse(&v, "-m")?,
        None => 4,
    };
    let queries: usize = match take_value(args, &["--queries"])? {
        Some(v) => parse(&v, "--queries")?,
        None => 64,
    };
    let max_nodes: usize = match take_value(args, &["--max-nodes"])? {
        Some(v) => parse::<usize>(&v, "--max-nodes")?.max(1),
        None => 4,
    };

    let ds = load_dataset(&PathBuf::from(&data)).map_err(|e| e.to_string())?;
    let sgq = SgqQuery::new(p, s, k).map_err(|e| e.to_string())?;
    let stgq = StgqQuery::new(p, s, k, m).map_err(|e| e.to_string())?;
    let n = ds.graph.node_count() as u32;
    let distinct = (queries / 3).max(1) as u32;
    let workload: Vec<BatchQuery> = (0..queries as u32)
        .map(|i| {
            let d = (i * 13 + i / 7) % distinct;
            BatchQuery {
                initiator: NodeId((d * 29 + 7) % n),
                spec: if d.is_multiple_of(2) {
                    QuerySpec::Stgq(stgq)
                } else {
                    QuerySpec::Sgq(sgq)
                },
                engine: Engine::Exact,
            }
        })
        .collect();

    println!(
        "{} queries over {} people; host parallelism {}:",
        workload.len(),
        ds.graph.node_count(),
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );

    let mut baseline_qps = None;
    let mut nodes = 1usize;
    while nodes <= max_nodes {
        let cfg = ClusterConfig {
            nodes,
            node_exec: ExecConfig {
                workers: 1,
                // Measure solving throughput, not cached replay.
                result_cache_capacity: 0,
                ..ExecConfig::default()
            },
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(ds.grid.horizon(), cfg);
        for v in 0..ds.graph.node_count() {
            cluster.add_person(format!("p{v}"));
        }
        for e in ds.graph.edges() {
            cluster
                .connect(e.a, e.b, e.weight)
                .map_err(|e| e.to_string())?;
        }
        for (v, cal) in ds.calendars.iter().enumerate() {
            cluster
                .set_calendar(NodeId(v as u32), cal.clone())
                .map_err(|e| e.to_string())?;
        }

        // Untimed warmup: attaches the replicas (full sync) and fills the
        // per-node feasible-graph caches.
        let mut feasible = 0usize;
        for reply in cluster.plan_batch(&workload) {
            feasible += usize::from(
                reply
                    .map_err(|e| e.to_string())?
                    .outcome
                    .objective()
                    .is_some(),
            );
        }

        let t0 = std::time::Instant::now();
        let reps = 3usize;
        for _ in 0..reps {
            for reply in cluster.plan_batch(&workload) {
                reply.map_err(|e| e.to_string())?;
            }
        }
        let elapsed = t0.elapsed();
        let qps = (workload.len() * reps) as f64 / elapsed.as_secs_f64();
        let speedup = baseline_qps.map(|b: f64| qps / b).unwrap_or(1.0);
        baseline_qps.get_or_insert(qps);

        let metrics = cluster.metrics();
        let max_lag = metrics.nodes.iter().map(|l| l.seq_lag).max().unwrap_or(0);
        println!(
            "  {nodes} node(s): {qps:>10.0} queries/sec ({feasible} feasible, {:.2}x vs 1 node; \
             {} full syncs, {} delta batches, max seq lag {max_lag})",
            speedup, metrics.full_syncs, metrics.delta_batches,
        );
        let suspected = metrics
            .nodes
            .iter()
            .filter(|l| l.suspicion != Suspicion::Healthy)
            .count();
        println!(
            "             robustness: {} retries, {} heartbeats missed, {} auto-drains, \
             {} auto-recoveries, {} failovers, {} catch-up deltas, {suspected} suspected",
            metrics.retries,
            metrics.heartbeats_missed,
            metrics.auto_drains,
            metrics.auto_recoveries,
            metrics.failovers,
            metrics.catch_up_deltas,
        );
        let (mut rebuilt, mut reused) = (0u64, 0u64);
        for node in cluster.nodes() {
            let em = node.executor().metrics();
            rebuilt += em.snapshot_shards_rebuilt;
            reused += em.snapshot_shards_reused;
        }
        println!(
            "             snapshots: {rebuilt} shards rebuilt / {reused} reused across {nodes} node(s)"
        );
        nodes *= 2;
    }
    Ok(())
}

/// Drive the hot workload against a metropolis world (or a snapshot)
/// and print the latency spectrum as Prometheus text — or, with
/// `--slow-log`, the flight recorder's slowest-N traces as JSON.
fn metrics(args: &[String]) -> Result<(), String> {
    use stgq::cluster::{Cluster, ClusterConfig};
    use stgq::datagen::metropolis::{metropolis, MetropolisConfig};
    use stgq::exec::{ExecConfig, QuerySpec};
    use stgq::service::{BatchQuery, Engine, Planner};

    let p: usize = match take_value(args, &["-p"])? {
        Some(v) => parse(&v, "-p")?,
        None => 4,
    };
    let s: usize = match take_value(args, &["-s"])? {
        Some(v) => parse(&v, "-s")?,
        None => 2,
    };
    let k: usize = match take_value(args, &["-k"])? {
        Some(v) => parse(&v, "-k")?,
        None => p.saturating_sub(1),
    };
    let m: usize = match take_value(args, &["-m"])? {
        Some(v) => parse(&v, "-m")?,
        None => 4,
    };
    let queries: usize = match take_value(args, &["--queries"])? {
        Some(v) => parse(&v, "--queries")?,
        None => 48,
    };
    let nodes: usize = match take_value(args, &["--nodes"])? {
        Some(v) => parse(&v, "--nodes")?,
        None => 2,
    };
    let seed: u64 = match take_value(args, &["--seed"])? {
        Some(v) => parse(&v, "--seed")?,
        None => 42,
    };
    let members: usize = match take_value(args, &["--members"])? {
        Some(v) => parse(&v, "--members")?,
        None => 2_000,
    };
    let slow_log = args.iter().any(|a| a == "--slow-log");
    let slow_query_threshold = match take_value(args, &["--slow-threshold-us"])? {
        Some(v) => std::time::Duration::from_micros(parse(&v, "--slow-threshold-us")?),
        None => ExecConfig::default().slow_query_threshold,
    };

    let ds = match take_value(args, &["--data", "-d"])? {
        Some(f) => load_dataset(&PathBuf::from(&f)).map_err(|e| e.to_string())?,
        None => metropolis(&MetropolisConfig::with_members(members), 2, seed),
    };
    let exec = ExecConfig {
        slow_query_threshold,
        ..ExecConfig::default()
    };

    // The same hot workload shape as `batch`/`cluster`: queries repeat
    // across a small pool of popular initiators, so the spectrum shows
    // both the solve mode and the replay/collapse fast path.
    let sgq = SgqQuery::new(p, s, k).map_err(|e| e.to_string())?;
    let stgq = StgqQuery::new(p, s, k, m).map_err(|e| e.to_string())?;
    let n = ds.graph.node_count() as u32;
    let distinct = (queries / 3).max(1) as u32;
    let workload: Vec<BatchQuery> = (0..queries as u32)
        .map(|i| {
            let d = (i * 13 + i / 7) % distinct;
            BatchQuery {
                initiator: NodeId((d * 29 + 7) % n),
                spec: if d.is_multiple_of(2) {
                    QuerySpec::Stgq(stgq)
                } else {
                    QuerySpec::Sgq(sgq)
                },
                engine: Engine::Exact,
            }
        })
        .collect();

    if nodes == 0 {
        // One in-process planner: the single-process spectrum.
        let mut planner = Planner::with_exec_config(ds.grid.horizon(), exec);
        for v in 0..ds.graph.node_count() {
            planner.add_person(format!("p{v}"));
        }
        for e in ds.graph.edges() {
            planner
                .connect(e.a, e.b, e.weight)
                .map_err(|e| e.to_string())?;
        }
        for (v, cal) in ds.calendars.iter().enumerate() {
            planner
                .set_calendar(NodeId(v as u32), cal.clone())
                .map_err(|e| e.to_string())?;
        }
        // Two passes: the first solves, the second replays — both modes
        // of the end-to-end distribution get samples.
        for _ in 0..2 {
            for reply in planner.plan_batch(&workload) {
                reply.map_err(|e| e.to_string())?;
            }
        }
        if slow_log {
            println!("{}", planner.executor().obs().recorder.slow_queries_json());
        } else {
            print!("{}", planner.prometheus_text());
        }
        return Ok(());
    }

    let cfg = ClusterConfig {
        nodes,
        node_exec: ExecConfig { workers: 1, ..exec },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(ds.grid.horizon(), cfg);
    for v in 0..ds.graph.node_count() {
        cluster.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        cluster
            .connect(e.a, e.b, e.weight)
            .map_err(|e| e.to_string())?;
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        cluster
            .set_calendar(NodeId(v as u32), cal.clone())
            .map_err(|e| e.to_string())?;
    }
    for _ in 0..2 {
        for reply in cluster.plan_batch(&workload) {
            reply.map_err(|e| e.to_string())?;
        }
    }
    // One detection round so suspicion/reachability gauges are live.
    cluster.heartbeat();
    if slow_log {
        // One JSON object per line, keyed by node.
        for node in cluster.nodes() {
            println!(
                "{{\"node\":{},\"slow_queries\":{}}}",
                node.id(),
                node.executor().obs().recorder.slow_queries_json()
            );
        }
    } else {
        print!("{}", cluster.observability().prometheus_text());
    }
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let data = take_value(args, &["--data", "-d"])?.ok_or("query requires --data FILE")?;
    let initiator: u32 = parse(
        &take_value(args, &["--initiator", "-i"])?.ok_or("query requires --initiator ID")?,
        "--initiator",
    )?;
    let p: usize = parse(
        &take_value(args, &["-p"])?.ok_or("query requires -p N")?,
        "-p",
    )?;
    let s: usize = match take_value(args, &["-s"])? {
        Some(v) => parse(&v, "-s")?,
        None => 1,
    };
    let k: usize = match take_value(args, &["-k"])? {
        Some(v) => parse(&v, "-k")?,
        None => p.saturating_sub(1),
    };
    let m: Option<usize> = match take_value(args, &["-m"])? {
        Some(v) => Some(parse(&v, "-m")?),
        None => None,
    };
    let compare = args.iter().any(|a| a == "--compare");

    let ds = load_dataset(&PathBuf::from(&data)).map_err(|e| e.to_string())?;
    let q = NodeId(initiator);
    let cfg = SelectConfig::default();

    match m {
        None => {
            let query = SgqQuery::new(p, s, k).map_err(|e| e.to_string())?;
            let out = solve_sgq(&ds.graph, q, &query, &cfg).map_err(|e| e.to_string())?;
            match out.solution {
                Some(sol) => {
                    println!("SGQ(p={p}, s={s}, k={k}) for initiator {q}:");
                    println!("  invite: {:?}", sol.members);
                    println!("  total social distance: {}", sol.total_distance);
                }
                None => println!("SGQ(p={p}, s={s}, k={k}): no feasible group"),
            }
            println!(
                "  ({} frames, {} pruned, {} candidates peeled, {} children pruned by parent bound)",
                out.stats.frames,
                out.stats.total_prunes(),
                out.stats.peeled_candidates,
                out.stats.children_pruned_by_parent_bound
            );
        }
        Some(m) => {
            let query = StgqQuery::new(p, s, k, m).map_err(|e| e.to_string())?;
            let out =
                solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).map_err(|e| e.to_string())?;
            match &out.solution {
                Some(sol) => {
                    println!("STGQ(p={p}, s={s}, k={k}, m={m}) for initiator {q}:");
                    println!("  invite: {:?}", sol.members);
                    println!(
                        "  meet during {} (starting {})",
                        sol.period,
                        ds.grid.label(sol.period.lo)
                    );
                    println!("  total social distance: {}", sol.total_distance);
                }
                None => println!("STGQ(p={p}, s={s}, k={k}, m={m}): no feasible plan"),
            }
            println!(
                "  ({} pivots ({} refused by core), {} frames, {} pruned, {} candidates peeled, {} children pruned by parent bound)",
                out.stats.pivots_processed,
                out.stats.pivots_refused_by_core,
                out.stats.frames,
                out.stats.total_prunes(),
                out.stats.peeled_candidates,
                out.stats.children_pruned_by_parent_bound
            );
            println!(
                "  (prep words: {} delta'd, {} rebuilt)",
                out.stats.prep_words_delta, out.stats.prep_words_rebuilt
            );
            if compare {
                match pc_arrange(&ds.graph, q, &ds.calendars, p, s, m).map_err(|e| e.to_string())? {
                    Some(pc) => {
                        println!("phone-coordination comparison (PCArrange):");
                        println!(
                            "  invite: {:?} — distance {}, observed k_h = {}",
                            pc.members, pc.total_distance, pc.observed_k
                        );
                    }
                    None => println!("PCArrange could not gather {p} people"),
                }
            }
        }
    }
    Ok(())
}
