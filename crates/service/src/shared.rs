//! A thread-safe, cloneable handle around [`Planner`].

use std::sync::Arc;

use parking_lot::RwLock;
use stgq_core::{SgqQuery, StgqQuery};
use stgq_graph::{Dist, NodeId};
use stgq_schedule::SlotRange;

use crate::{
    BatchQuery, Engine, MetricsSnapshot, PlanReply, Planner, ServiceError, SgqReport, StgqReport,
};

/// `Arc<RwLock<Planner>>` with a planning-service API: queries take the
/// read lock (so any number run concurrently), mutations take the write
/// lock. Clones share the same underlying service.
///
/// `parking_lot::RwLock` is used instead of `std::sync::RwLock` for its
/// non-poisoning guards — a panicking query thread must not wedge the
/// whole service.
#[derive(Clone)]
pub struct SharedPlanner {
    inner: Arc<RwLock<Planner>>,
}

impl SharedPlanner {
    /// Wrap an existing planner.
    pub fn new(planner: Planner) -> Self {
        SharedPlanner {
            inner: Arc::new(RwLock::new(planner)),
        }
    }

    /// A fresh shared service over `horizon` slots.
    pub fn with_horizon(horizon: usize) -> Self {
        SharedPlanner::new(Planner::new(horizon))
    }

    /// Run an arbitrary batch of mutations under one write lock.
    pub fn update<R>(&self, f: impl FnOnce(&mut Planner) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Read-only access (metrics, network inspection) under the read lock.
    pub fn inspect<R>(&self, f: impl FnOnce(&Planner) -> R) -> R {
        f(&self.inner.read())
    }

    /// Register a person.
    pub fn add_person(&self, label: impl Into<String>) -> NodeId {
        self.inner.write().add_person(label)
    }

    /// Create or re-weight a friendship.
    pub fn connect(&self, a: NodeId, b: NodeId, distance: Dist) -> Result<(), ServiceError> {
        self.inner.write().connect(a, b, distance)
    }

    /// Mark a slot range (un)available.
    pub fn set_availability_range(
        &self,
        person: NodeId,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.inner
            .write()
            .set_availability_range(person, range, available)
    }

    /// Answer an SGQ (concurrent with other queries).
    pub fn plan_sgq(
        &self,
        initiator: NodeId,
        query: &SgqQuery,
        engine: Engine,
    ) -> Result<SgqReport, ServiceError> {
        self.inner.read().plan_sgq(initiator, query, engine)
    }

    /// Answer an STGQ (concurrent with other queries).
    pub fn plan_stgq(
        &self,
        initiator: NodeId,
        query: &StgqQuery,
        engine: Engine,
    ) -> Result<StgqReport, ServiceError> {
        self.inner.read().plan_stgq(initiator, query, engine)
    }

    /// Answer a mixed SGQ/STGQ batch through the executor's batched path
    /// (concurrent with other queries — the batch holds the read lock,
    /// so mutations wait exactly as they do for single queries, while
    /// the solves themselves run on the executor's worker pool against
    /// an immutable epoch).
    pub fn plan_batch(&self, queries: &[BatchQuery]) -> Vec<Result<PlanReply, ServiceError>> {
        self.inner.read().plan_batch(queries)
    }

    /// Service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.read().metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (SharedPlanner, Vec<NodeId>) {
        let shared = SharedPlanner::with_horizon(16);
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|l| shared.add_person(*l))
            .collect();
        shared.connect(ids[0], ids[1], 2).unwrap();
        shared.connect(ids[0], ids[2], 3).unwrap();
        shared.connect(ids[1], ids[2], 1).unwrap();
        shared.connect(ids[2], ids[3], 5).unwrap();
        for &id in &ids {
            shared
                .set_availability_range(id, SlotRange::new(0, 15), true)
                .unwrap();
        }
        (shared, ids)
    }

    #[test]
    fn concurrent_queries_during_mutations_stay_consistent() {
        let (shared, ids) = demo();
        let q = SgqQuery::new(3, 2, 1).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = shared.clone();
                let initiator = ids[0];
                let q = &q;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let r = shared.plan_sgq(initiator, q, Engine::Exact).unwrap();
                        // Whatever snapshot the query saw, the answer is
                        // internally consistent: 3 members, initiator in.
                        if let Some(sol) = r.solution {
                            assert_eq!(sol.members.len(), 3);
                            assert!(sol.members.contains(&initiator));
                        }
                    }
                });
            }
            let writer = shared.clone();
            let (d, e) = (ids[3], ids[4]);
            scope.spawn(move || {
                for i in 0..25u64 {
                    writer.connect(d, e, 1 + (i % 9)).unwrap();
                }
            });
        });

        let m = shared.metrics();
        assert_eq!(m.queries, 200);
    }

    #[test]
    fn clones_share_state() {
        let (shared, ids) = demo();
        let other = shared.clone();
        let q = SgqQuery::new(2, 1, 1).unwrap();
        let before = other
            .plan_sgq(ids[0], &q, Engine::Exact)
            .unwrap()
            .solution
            .unwrap();
        assert_eq!(before.total_distance, 2);
        // Mutate through one handle, observe through the other.
        shared.connect(ids[0], ids[4], 1).unwrap();
        let after = other
            .plan_sgq(ids[0], &q, Engine::Exact)
            .unwrap()
            .solution
            .unwrap();
        assert_eq!(after.total_distance, 1);
    }

    #[test]
    fn update_batches_under_one_lock() {
        let (shared, ids) = demo();
        shared.update(|p| {
            p.connect(ids[0], ids[4], 2).unwrap();
            p.set_availability(ids[4], 3, true).unwrap();
        });
        assert!(shared
            .inspect(|p| p.network().distance(ids[0], ids[4]))
            .is_some());
    }
}
