//! Delta emission for snapshot replication: every planner mutation is
//! recorded as a [`WorldDelta`], stamped with the version counters it
//! produced, into a bounded [`DeltaLog`].
//!
//! A cluster's single **writer** node owns the mutable world (the
//! planner); **replica** nodes mirror it by replaying deltas in order —
//! each record carries the `(graph_version, calendar_version)` pair that
//! resulted from applying it, so a replica's rebuilt snapshot gets
//! exactly the writer's epoch stamps and version-keyed caches stay
//! coherent across nodes. When a replica has missed more history than
//! the log retains (gap detection via [`DeltaLog::since`] returning
//! `None`), it falls back to a [`WorldState`] **full sync** — a complete,
//! self-contained copy of people, friendships and calendars at one
//! version stamp — and resumes deltas from there.

use std::collections::VecDeque;

use stgq_graph::{Dist, NodeId};
use stgq_schedule::{Calendar, SlotRange};

use crate::{CalendarStore, MutableNetwork, ServiceError};

/// One replicable mutation of the world, exactly mirroring the planner's
/// mutation surface. Applying a delta to a faithful mirror bumps the
/// mirror's version counters exactly like the original mutation did.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldDelta {
    /// A person was registered.
    AddPerson {
        /// Their display label.
        label: String,
    },
    /// A friendship was created or re-weighted.
    Connect {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The social distance.
        distance: Dist,
    },
    /// A friendship was removed (recorded only when it existed — no-op
    /// disconnects bump no version and emit no delta).
    Disconnect {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A person was tombstoned.
    RemovePerson {
        /// The id (stays allocated forever).
        person: NodeId,
    },
    /// One availability slot changed.
    SetSlot {
        /// Whose calendar.
        person: NodeId,
        /// Which slot.
        slot: usize,
        /// The new availability.
        available: bool,
    },
    /// A whole slot range changed.
    SetRange {
        /// Whose calendar.
        person: NodeId,
        /// Which slots.
        range: SlotRange,
        /// The new availability.
        available: bool,
    },
    /// A calendar was replaced wholesale.
    SetCalendar {
        /// Whose calendar.
        person: NodeId,
        /// The replacement.
        calendar: Calendar,
    },
}

impl WorldDelta {
    /// Replay this mutation onto a mirror of the writer's world. The
    /// mirror must have applied every earlier delta (the log is ordered),
    /// so the same validations that passed on the writer pass here.
    pub fn apply(
        &self,
        network: &mut MutableNetwork,
        calendars: &mut CalendarStore,
    ) -> Result<(), ServiceError> {
        match self {
            WorldDelta::AddPerson { label } => {
                network.add_person(label.clone());
                calendars.ensure_people(network.person_count());
                Ok(())
            }
            WorldDelta::Connect { a, b, distance } => network.connect(*a, *b, *distance),
            WorldDelta::Disconnect { a, b } => network.disconnect(*a, *b).map(|_| ()),
            WorldDelta::RemovePerson { person } => network.remove_person(*person),
            WorldDelta::SetSlot {
                person,
                slot,
                available,
            } => calendars.set_slot(person.index(), *slot, *available),
            WorldDelta::SetRange {
                person,
                range,
                available,
            } => calendars.set_range(person.index(), *range, *available),
            WorldDelta::SetCalendar { person, calendar } => {
                calendars.replace(person.index(), calendar.clone())
            }
        }
    }
}

/// One log entry: the mutation plus the sequence number and the version
/// stamps that resulted from applying it on the writer.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaRecord {
    /// Position in the writer's total mutation order (1-based, dense).
    pub seq: u64,
    /// The network version after applying this delta.
    pub graph_version: u64,
    /// The calendar-store version after applying this delta.
    pub calendar_version: u64,
    /// The mutation itself.
    pub delta: WorldDelta,
}

/// A bounded, ordered log of the writer's recent mutations.
///
/// Replicas request "everything after sequence `n`"; when the log has
/// already evicted records that recent, [`since`](Self::since) reports a
/// **gap** and the caller must fall back to a full [`WorldState`] sync.
#[derive(Debug)]
pub struct DeltaLog {
    records: VecDeque<DeltaRecord>,
    capacity: usize,
    next_seq: u64,
}

/// Default number of mutations the planner's delta log retains.
pub const DEFAULT_DELTA_LOG_CAPACITY: usize = 4096;

impl DeltaLog {
    /// An empty log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        DeltaLog {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 1,
        }
    }

    /// An empty log whose numbering continues after `last_seq` — how a
    /// promoted writer resumes the cluster's total mutation order after
    /// failover. Everything at or before `last_seq` is unreachable (a
    /// replica asking for it sees a gap and full-syncs), which is exactly
    /// right: the promoted writer only holds the state, not the history.
    pub fn resume(capacity: usize, last_seq: u64) -> Self {
        DeltaLog {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: last_seq + 1,
        }
    }

    /// Append a mutation with its resulting version stamps.
    pub(crate) fn record(&mut self, delta: WorldDelta, graph_version: u64, calendar_version: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push_back(DeltaRecord {
            seq,
            graph_version,
            calendar_version,
            delta,
        });
        if self.records.len() > self.capacity {
            self.records.pop_front();
        }
    }

    /// The sequence number of the last recorded mutation (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Change the retention bound, evicting the oldest records when
    /// shrinking (sequence numbering continues unchanged).
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.records.len() > self.capacity {
            self.records.pop_front();
        }
    }

    /// Every record with `seq > have_seq`, oldest first — or `None` when
    /// the log no longer reaches back that far (gap: the caller needs a
    /// full sync). A fully caught-up replica gets `Some(empty)`.
    pub fn since(&self, have_seq: u64) -> Option<Vec<DeltaRecord>> {
        if have_seq >= self.last_seq() {
            return Some(Vec::new());
        }
        // The log is dense in seq: records cover (last_seq - len, last_seq].
        let oldest_retained = self.next_seq - self.records.len() as u64;
        if have_seq + 1 < oldest_retained {
            return None;
        }
        Some(
            self.records
                .iter()
                .filter(|r| r.seq > have_seq)
                .cloned()
                .collect(),
        )
    }
}

/// A complete, self-contained copy of the writer's world at one version
/// stamp — the full-sync payload for a replica attaching fresh or too
/// far behind the delta log.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldState {
    /// The shared calendar horizon.
    pub horizon: usize,
    /// Labels of every person ever registered, by id.
    pub labels: Vec<String>,
    /// Whether each id is still active (tombstoned people stay listed).
    pub active: Vec<bool>,
    /// Every current friendship as `(a, b, distance)` with `a < b`.
    pub edges: Vec<(u32, u32, Dist)>,
    /// Every person's calendar, by id.
    pub calendars: Vec<Calendar>,
    /// The network version this state was captured at.
    pub graph_version: u64,
    /// The calendar-store version this state was captured at.
    pub calendar_version: u64,
    /// The writer's delta sequence at capture time — where incremental
    /// replication resumes after restoring this state.
    pub seq: u64,
}

impl WorldState {
    /// Rebuild a faithful mirror (network + calendars) from this state.
    /// The mirror's *internal* version counters restart from zero — a
    /// replica publishes snapshots under the carried
    /// [`graph_version`](Self::graph_version)/[`calendar_version`](Self::calendar_version)
    /// stamps, not the mirror's counters.
    pub fn restore(&self) -> Result<(MutableNetwork, CalendarStore), ServiceError> {
        let mut network = MutableNetwork::new();
        let mut calendars = CalendarStore::new(self.horizon);
        for label in &self.labels {
            network.add_person(label.clone());
        }
        calendars.ensure_people(network.person_count());
        for &(a, b, distance) in &self.edges {
            network.connect(NodeId(a), NodeId(b), distance)?;
        }
        // Tombstones last: removal also clears edges, so a tombstoned id
        // with edges in the state would be inconsistent anyway — the
        // writer never exports one.
        for (id, active) in self.active.iter().enumerate() {
            if !active {
                network.remove_person(NodeId(id as u32))?;
            }
        }
        for (person, calendar) in self.calendars.iter().enumerate() {
            calendars.replace(person, calendar.clone())?;
        }
        Ok((network, calendars))
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Wire encodings for the replication payloads (enum shapes are
    //! hand-written; the struct shapes use explicit field lists so the
    //! format is stable against field reordering).

    use serde::value::{get, Value};
    use serde::{DeError, Deserialize, Serialize};
    use stgq_graph::NodeId;
    use stgq_schedule::{Calendar, SlotRange};

    use super::{DeltaRecord, WorldDelta, WorldState};

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn need<'a>(
        entries: &'a [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'a Value, DeError> {
        get(entries, name).ok_or_else(|| DeError::new(format!("missing field `{name}` in {ty}")))
    }

    impl Serialize for WorldDelta {
        fn to_value(&self) -> Value {
            match self {
                WorldDelta::AddPerson { label } => {
                    obj(vec![("add_person", obj(vec![("label", label.to_value())]))])
                }
                WorldDelta::Connect { a, b, distance } => obj(vec![(
                    "connect",
                    obj(vec![
                        ("a", a.0.to_value()),
                        ("b", b.0.to_value()),
                        ("distance", distance.to_value()),
                    ]),
                )]),
                WorldDelta::Disconnect { a, b } => obj(vec![(
                    "disconnect",
                    obj(vec![("a", a.0.to_value()), ("b", b.0.to_value())]),
                )]),
                WorldDelta::RemovePerson { person } => obj(vec![(
                    "remove_person",
                    obj(vec![("person", person.0.to_value())]),
                )]),
                WorldDelta::SetSlot {
                    person,
                    slot,
                    available,
                } => obj(vec![(
                    "set_slot",
                    obj(vec![
                        ("person", person.0.to_value()),
                        ("slot", slot.to_value()),
                        ("available", available.to_value()),
                    ]),
                )]),
                WorldDelta::SetRange {
                    person,
                    range,
                    available,
                } => obj(vec![(
                    "set_range",
                    obj(vec![
                        ("person", person.0.to_value()),
                        ("range", range.to_value()),
                        ("available", available.to_value()),
                    ]),
                )]),
                WorldDelta::SetCalendar { person, calendar } => obj(vec![(
                    "set_calendar",
                    obj(vec![
                        ("person", person.0.to_value()),
                        ("calendar", calendar.to_value()),
                    ]),
                )]),
            }
        }
    }

    impl Deserialize for WorldDelta {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let entries = v
                .as_object()
                .ok_or_else(|| DeError::new("expected object for WorldDelta"))?;
            let [(tag, inner)] = entries else {
                return Err(DeError::new("WorldDelta object must have exactly one key"));
            };
            let fields = inner
                .as_object()
                .ok_or_else(|| DeError::new("expected object for WorldDelta payload"))?;
            match tag.as_str() {
                "add_person" => Ok(WorldDelta::AddPerson {
                    label: String::from_value(need(fields, "label", tag)?)?,
                }),
                "connect" => Ok(WorldDelta::Connect {
                    a: NodeId(u32::from_value(need(fields, "a", tag)?)?),
                    b: NodeId(u32::from_value(need(fields, "b", tag)?)?),
                    distance: u64::from_value(need(fields, "distance", tag)?)?,
                }),
                "disconnect" => Ok(WorldDelta::Disconnect {
                    a: NodeId(u32::from_value(need(fields, "a", tag)?)?),
                    b: NodeId(u32::from_value(need(fields, "b", tag)?)?),
                }),
                "remove_person" => Ok(WorldDelta::RemovePerson {
                    person: NodeId(u32::from_value(need(fields, "person", tag)?)?),
                }),
                "set_slot" => Ok(WorldDelta::SetSlot {
                    person: NodeId(u32::from_value(need(fields, "person", tag)?)?),
                    slot: usize::from_value(need(fields, "slot", tag)?)?,
                    available: bool::from_value(need(fields, "available", tag)?)?,
                }),
                "set_range" => Ok(WorldDelta::SetRange {
                    person: NodeId(u32::from_value(need(fields, "person", tag)?)?),
                    range: SlotRange::from_value(need(fields, "range", tag)?)?,
                    available: bool::from_value(need(fields, "available", tag)?)?,
                }),
                "set_calendar" => Ok(WorldDelta::SetCalendar {
                    person: NodeId(u32::from_value(need(fields, "person", tag)?)?),
                    calendar: Calendar::from_value(need(fields, "calendar", tag)?)?,
                }),
                other => Err(DeError::new(format!("unknown WorldDelta `{other}`"))),
            }
        }
    }

    impl Serialize for DeltaRecord {
        fn to_value(&self) -> Value {
            obj(vec![
                ("seq", self.seq.to_value()),
                ("graph_version", self.graph_version.to_value()),
                ("calendar_version", self.calendar_version.to_value()),
                ("delta", self.delta.to_value()),
            ])
        }
    }

    impl Deserialize for DeltaRecord {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let entries = v
                .as_object()
                .ok_or_else(|| DeError::new("expected object for DeltaRecord"))?;
            Ok(DeltaRecord {
                seq: u64::from_value(need(entries, "seq", "DeltaRecord")?)?,
                graph_version: u64::from_value(need(entries, "graph_version", "DeltaRecord")?)?,
                calendar_version: u64::from_value(need(
                    entries,
                    "calendar_version",
                    "DeltaRecord",
                )?)?,
                delta: WorldDelta::from_value(need(entries, "delta", "DeltaRecord")?)?,
            })
        }
    }

    impl Serialize for WorldState {
        fn to_value(&self) -> Value {
            obj(vec![
                ("horizon", self.horizon.to_value()),
                ("labels", self.labels.to_value()),
                ("active", self.active.to_value()),
                ("edges", self.edges.to_value()),
                ("calendars", self.calendars.to_value()),
                ("graph_version", self.graph_version.to_value()),
                ("calendar_version", self.calendar_version.to_value()),
                ("seq", self.seq.to_value()),
            ])
        }
    }

    impl Deserialize for WorldState {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let entries = v
                .as_object()
                .ok_or_else(|| DeError::new("expected object for WorldState"))?;
            Ok(WorldState {
                horizon: usize::from_value(need(entries, "horizon", "WorldState")?)?,
                labels: Vec::from_value(need(entries, "labels", "WorldState")?)?,
                active: Vec::from_value(need(entries, "active", "WorldState")?)?,
                edges: Vec::from_value(need(entries, "edges", "WorldState")?)?,
                calendars: Vec::from_value(need(entries, "calendars", "WorldState")?)?,
                graph_version: u64::from_value(need(entries, "graph_version", "WorldState")?)?,
                calendar_version: u64::from_value(need(
                    entries,
                    "calendar_version",
                    "WorldState",
                )?)?,
                seq: u64::from_value(need(entries, "seq", "WorldState")?)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_dense_and_reports_gaps() {
        let mut log = DeltaLog::new(3);
        assert_eq!(log.last_seq(), 0);
        assert_eq!(log.since(0), Some(Vec::new()), "empty log: caught up");
        for i in 0..5u64 {
            log.record(
                WorldDelta::AddPerson {
                    label: format!("p{i}"),
                },
                i + 1,
                0,
            );
        }
        assert_eq!(log.last_seq(), 5);
        // Only seqs 3..=5 retained: from 2 is servable, from 1 is a gap.
        let tail = log.since(2).expect("within retention");
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), [3, 4, 5]);
        assert_eq!(log.since(1), None, "evicted history is a gap");
        assert_eq!(log.since(5), Some(Vec::new()), "caught up");
        assert_eq!(log.since(9), Some(Vec::new()), "ahead counts as caught up");
    }

    #[test]
    fn replaying_deltas_mirrors_the_writer() {
        let mut network = MutableNetwork::new();
        let mut calendars = CalendarStore::new(6);
        let deltas = [
            WorldDelta::AddPerson { label: "a".into() },
            WorldDelta::AddPerson { label: "b".into() },
            WorldDelta::Connect {
                a: NodeId(0),
                b: NodeId(1),
                distance: 4,
            },
            WorldDelta::SetRange {
                person: NodeId(0),
                range: SlotRange::new(1, 4),
                available: true,
            },
            WorldDelta::SetSlot {
                person: NodeId(1),
                slot: 2,
                available: true,
            },
        ];
        for d in &deltas {
            d.apply(&mut network, &mut calendars).unwrap();
        }
        assert_eq!(network.distance(NodeId(0), NodeId(1)), Some(4));
        assert!(calendars.calendar(0).is_available(3));
        assert!(calendars.calendar(1).is_available(2));
    }

    #[test]
    fn world_state_restores_tombstones_and_calendars() {
        let state = WorldState {
            horizon: 4,
            labels: vec!["a".into(), "b".into(), "c".into()],
            active: vec![true, false, true],
            edges: vec![(0, 2, 7)],
            calendars: vec![
                Calendar::all_available(4),
                Calendar::new(4),
                Calendar::from_slots(4, [1, 2]),
            ],
            graph_version: 42,
            calendar_version: 17,
            seq: 9,
        };
        let (network, calendars) = state.restore().unwrap();
        assert_eq!(network.person_count(), 3);
        assert!(!network.is_active(NodeId(1)));
        assert_eq!(network.distance(NodeId(0), NodeId(2)), Some(7));
        assert!(calendars.calendar(2).is_available(1));
        assert_eq!(calendars.calendar(0).count_available(), 4);
    }
}
