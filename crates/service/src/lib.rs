//! A long-lived activity-planning service over the STGQ engines.
//!
//! The paper closes by noting the authors were "now implementing the
//! proposed algorithms in Facebook" — i.e. the intended deployment is not
//! one-shot solving but a *service*: a social network and its members'
//! calendars that change continuously, with planning queries arriving in
//! between. This crate builds that deployment surface:
//!
//! * [`MutableNetwork`] — an updatable social graph (add/remove people,
//!   connect/disconnect, re-weight) with a monotone version counter;
//! * [`CalendarStore`] — per-person availability over a shared slot
//!   horizon, updatable slot-by-slot or in ranges;
//! * [`Planner`] — the query front end, since the `stgq-exec`
//!   extraction a **thin façade** over the execution subsystem: the
//!   planner owns the mutable world and publishes immutable epoch
//!   snapshots into an [`Executor`](stgq_exec::Executor), which owns the
//!   shard-partitioned feasible-graph cache, engine dispatch
//!   ([`Engine`]: exact, parallel, anytime, greedy, local search), the
//!   admission queue + batch scheduler + fixed worker pool, and the
//!   execution counters. Every answer carries provenance
//!   ([`SgqReport`]/[`StgqReport`]: engine, wall time, cache hit,
//!   exactness), single queries run inline, and
//!   [`Planner::plan_batch`] drains mixed SGQ/STGQ batches through the
//!   pool with request collapsing;
//! * [`SharedPlanner`] — a cheaply-cloneable thread-safe handle
//!   (`Arc<RwLock>`): concurrent planning reads, exclusive mutation
//!   writes.
//!
//! Calendar edits do **not** invalidate the graph caches (availability
//! never changes social distance); network edits invalidate both the
//! snapshot and every cached feasible graph, which the test suite checks
//! against solving from scratch after every mutation.
//!
//! ```
//! use stgq_core::SgqQuery;
//! use stgq_service::{Engine, Planner};
//!
//! let mut planner = Planner::new(8); // 8 time slots
//! let a = planner.add_person("ana");
//! let b = planner.add_person("bo");
//! let c = planner.add_person("cy");
//! planner.connect(a, b, 2).unwrap();
//! planner.connect(a, c, 3).unwrap();
//! planner.connect(b, c, 1).unwrap();
//!
//! let q = SgqQuery::new(3, 1, 0).unwrap();
//! let report = planner.plan_sgq(a, &q, Engine::Exact).unwrap();
//! assert_eq!(report.solution.unwrap().total_distance, 5);
//! assert!(report.exact);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod calendars;
mod delta;
mod error;
pub mod expose;
mod network;
mod planner;
mod shared;

pub use calendars::CalendarStore;
pub use delta::{DeltaLog, DeltaRecord, WorldDelta, WorldState, DEFAULT_DELTA_LOG_CAPACITY};
pub use error::ServiceError;
pub use network::MutableNetwork;
pub use planner::{BatchQuery, MetricsSnapshot, PlanReply, Planner, SgqReport, StgqReport};
pub use shared::SharedPlanner;
// Execution-subsystem vocabulary, re-exported so existing callers (and
// downstream code that only wants the service surface) keep one import
// path. `Engine` lived here before the `stgq-exec` extraction.
pub use stgq_exec::{Engine, ExecConfig, ExecMetrics, QuerySpec};
