use std::fmt;

use stgq_core::QueryError;
use stgq_graph::NodeId;

/// Errors surfaced by the planning service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The person id has never been registered.
    UnknownPerson {
        /// The offending id.
        person: NodeId,
        /// How many people the service knows.
        person_count: usize,
    },
    /// The person was removed from the network and cannot participate.
    RemovedPerson {
        /// The removed person.
        person: NodeId,
    },
    /// An edge endpoint pair was invalid (self-friendship).
    SelfFriendship {
        /// The person supplied twice.
        person: NodeId,
    },
    /// Social distances must be positive.
    ZeroDistance {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A slot index was outside the calendar horizon.
    SlotOutOfRange {
        /// The offending slot.
        slot: usize,
        /// The store's horizon.
        horizon: usize,
    },
    /// The underlying query engine rejected the inputs.
    Query(QueryError),
    /// The execution subsystem refused the request for an
    /// infrastructure reason (no published snapshot, shutdown in
    /// progress). The planner façade keeps these states unreachable on
    /// its own paths — seeing this error means the executor was driven
    /// directly in an unexpected state.
    ExecutorUnavailable {
        /// The executor's own description of the condition.
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownPerson {
                person,
                person_count,
            } => {
                write!(
                    f,
                    "unknown person {person} (service knows {person_count} people)"
                )
            }
            ServiceError::RemovedPerson { person } => {
                write!(f, "person {person} was removed from the network")
            }
            ServiceError::SelfFriendship { person } => {
                write!(f, "cannot befriend {person} with themselves")
            }
            ServiceError::ZeroDistance { a, b } => {
                write!(f, "social distance between {a} and {b} must be positive")
            }
            ServiceError::SlotOutOfRange { slot, horizon } => {
                write!(f, "slot {slot} outside horizon {horizon}")
            }
            ServiceError::Query(e) => write!(f, "query error: {e}"),
            ServiceError::ExecutorUnavailable { reason } => {
                write!(f, "executor unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<ServiceError> = vec![
            ServiceError::UnknownPerson {
                person: NodeId(9),
                person_count: 3,
            },
            ServiceError::RemovedPerson { person: NodeId(1) },
            ServiceError::SelfFriendship { person: NodeId(2) },
            ServiceError::ZeroDistance {
                a: NodeId(0),
                b: NodeId(1),
            },
            ServiceError::SlotOutOfRange {
                slot: 99,
                horizon: 10,
            },
            ServiceError::Query(QueryError::InitiatorOutOfRange {
                initiator: NodeId(5),
                node_count: 2,
            }),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn query_errors_convert() {
        let q = QueryError::CalendarCountMismatch {
            calendars: 1,
            node_count: 2,
        };
        let s: ServiceError = q.clone().into();
        assert_eq!(s, ServiceError::Query(q));
    }
}
