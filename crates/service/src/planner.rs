//! The query front end — since the `stgq-exec` extraction, a **thin
//! façade** over the execution subsystem.
//!
//! The planner owns the *mutable* world (the [`MutableNetwork`] and the
//! [`CalendarStore`]) and an [`Executor`] owning everything about
//! *answering* queries: the epoch-swapped immutable snapshots, the
//! shard-partitioned feasible-graph cache, engine dispatch, the
//! admission queue + batch scheduler + fixed worker pool, and the
//! execution counters. Mutations stay planner methods (`&mut self`,
//! version-bumping); before any query the planner compares the mutable
//! versions against the executor's published epoch and republishes on
//! drift — an `Arc` swap that never blocks in-flight solves.
//!
//! Single queries ([`plan_sgq`](Planner::plan_sgq) /
//! [`plan_stgq`](Planner::plan_stgq)) run inline on the caller's thread
//! (low latency, shared caches); batches
//! ([`plan_batch`](Planner::plan_batch)) go through admission → shard
//! batching → the worker pool, where identical entries are collapsed
//! and same-initiator entries share cache locality.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use stgq_core::{
    SearchStats, SelectConfig, SgqQuery, SgqSolution, SolveOutcome, StgqQuery, StgqSolution,
};
use stgq_exec::{
    Engine, ExecConfig, ExecError, ExecMetrics, Executor, PlanOutcome, PlanRequest, QuerySpec,
    WorldSnapshot,
};
use stgq_graph::{Dist, NodeId, SocialGraph};
use stgq_schedule::{Calendar, SlotRange};

use crate::delta::{DeltaLog, DeltaRecord, WorldDelta, WorldState, DEFAULT_DELTA_LOG_CAPACITY};
use crate::{CalendarStore, MutableNetwork, ServiceError};

/// Answer to an SGQ planning request, with provenance.
#[derive(Clone, Debug)]
pub struct SgqReport {
    /// The group found, `None` if the engine found none (for exact engines
    /// this proves infeasibility; for heuristics it does not).
    pub solution: Option<SgqSolution>,
    /// Search counters (exact engines only).
    pub stats: Option<SearchStats>,
    /// Feasibility evaluations (heuristic engines only).
    pub evaluations: Option<u64>,
    /// Whether the answer is proven optimal / proven infeasible.
    pub exact: bool,
    /// The engine that produced it.
    pub engine: Engine,
    /// Wall-clock time inside the engine (excludes cache work).
    pub elapsed: std::time::Duration,
    /// Whether the feasible graph came from the cache.
    pub feasible_cache_hit: bool,
    /// Whether the whole answer was replayed from the version-stamped
    /// result cache (identical earlier query on an unchanged world).
    pub result_cache_hit: bool,
}

/// Answer to an STGQ planning request, with provenance.
#[derive(Clone, Debug)]
pub struct StgqReport {
    /// The (group, period) found, `None` if the engine found none.
    pub solution: Option<StgqSolution>,
    /// Search counters (exact engines only).
    pub stats: Option<SearchStats>,
    /// Feasibility evaluations (heuristic engines only).
    pub evaluations: Option<u64>,
    /// Whether the answer is proven optimal / proven infeasible.
    pub exact: bool,
    /// The engine that produced it.
    pub engine: Engine,
    /// Wall-clock time inside the engine (excludes cache work).
    pub elapsed: std::time::Duration,
    /// Whether the feasible graph came from the cache.
    pub feasible_cache_hit: bool,
    /// Whether the whole answer was replayed from the version-stamped
    /// result cache (identical earlier query on an unchanged world).
    pub result_cache_hit: bool,
}

/// One entry of a [`Planner::plan_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchQuery {
    /// Who is asking.
    pub initiator: NodeId,
    /// What is being asked (SGQ or STGQ).
    pub spec: QuerySpec,
    /// Which solver answers it.
    pub engine: Engine,
}

/// One entry of a [`Planner::plan_batch`] answer: the matching report
/// kind for the submitted [`QuerySpec`].
#[derive(Clone, Debug)]
pub enum PlanReply {
    /// The entry was an SGQ.
    Sgq(SgqReport),
    /// The entry was an STGQ.
    Stgq(StgqReport),
}

impl PlanReply {
    /// The objective value, if a solution was found.
    pub fn objective(&self) -> Option<Dist> {
        match self {
            PlanReply::Sgq(r) => r.solution.as_ref().map(|s| s.total_distance),
            PlanReply::Stgq(r) => r.solution.as_ref().map(|s| s.total_distance),
        }
    }

    /// Whether the answer is proven optimal / proven infeasible.
    pub fn exact(&self) -> bool {
        match self {
            PlanReply::Sgq(r) => r.exact,
            PlanReply::Stgq(r) => r.exact,
        }
    }

    /// The SGQ report, if this entry was an SGQ.
    pub fn as_sgq(&self) -> Option<&SgqReport> {
        match self {
            PlanReply::Sgq(r) => Some(r),
            PlanReply::Stgq(_) => None,
        }
    }

    /// The STGQ report, if this entry was an STGQ.
    pub fn as_stgq(&self) -> Option<&StgqReport> {
        match self {
            PlanReply::Sgq(_) => None,
            PlanReply::Stgq(r) => Some(r),
        }
    }
}

/// Point-in-time view of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Planning queries served.
    pub queries: u64,
    /// Mutations applied (network + calendar).
    pub mutations: u64,
    /// Feasible-graph cache hits.
    pub feasible_cache_hits: u64,
    /// Feasible-graph cache misses (each triggered an extraction).
    pub feasible_cache_misses: u64,
    /// CSR snapshot rebuilds.
    pub snapshot_rebuilds: u64,
    /// Feasible graphs currently cached.
    pub cached_feasible_graphs: usize,
    /// Search frames examined by exact engines, summed over all queries
    /// served (the quantity the search-reduction work drives down).
    pub frames_examined: u64,
    /// Frames abandoned by the incumbent distance bound (Lemma 2), summed
    /// over all exact queries.
    pub frames_pruned_by_bound: u64,
    /// Whole pivots skipped by the pivot-granularity distance bound,
    /// summed over all exact STGQ queries.
    pub pivots_skipped: u64,
    /// Candidates removed by fixpoint (p, k)-core peeling before exact
    /// descent, summed over all exact queries.
    pub peeled_candidates: u64,
    /// Pivots refused outright because their peeled core could not seat
    /// a feasible group, summed over all exact STGQ queries.
    pub pivots_refused_by_core: u64,
    /// Frames abandoned by the k-plex matching bound, summed over all
    /// exact queries.
    pub frames_pruned_by_match: u64,
    /// Children retired at the parent frame by the per-candidate
    /// completion bound (child frames never opened), summed over all
    /// exact queries.
    pub children_pruned_by_parent_bound: u64,
    /// Availability-buffer words whose rebuild was avoided by the
    /// incremental-prep run cache, summed over all exact STGQ queries.
    pub prep_words_delta: u64,
    /// Availability-buffer words actually built from calendar words
    /// during pivot preparation, summed over all exact STGQ queries.
    pub prep_words_rebuilt: u64,
    /// Definition-4 runs served by the workers' cross-solve run caches
    /// under the world-version handshake, summed over all exact STGQ
    /// queries.
    pub run_cache_cross_solve_hits: u64,
    /// Adjacency words copied into per-query `FeasibleGraph` matrices on
    /// feasible-cache misses (the materialized extraction path; zero
    /// under the default zero-copy view).
    pub extract_words_copied: u64,
    /// Adjacency words generated in place by zero-copy `FeasibleView`
    /// extraction on feasible-cache misses (candidate rows masked
    /// against the snapshot's CSR segments).
    pub extract_words_borrowed: u64,
    /// Entries that went through the batched executor path.
    pub batched_entries: u64,
    /// Batched entries answered by request collapsing (solved once,
    /// shared within a shard job).
    pub collapsed_entries: u64,
    /// Whole answers replayed from the version-stamped result cache
    /// (repeat queries across batches and the inline path on an
    /// unchanged world).
    pub result_cache_hits: u64,
    /// Result-cache lookups that missed (fresh query or moved epoch).
    pub result_cache_misses: u64,
    /// Result-cache entries evicted at lookup because a shard they were
    /// stamped with had moved (delta-scoped invalidation).
    pub result_cache_evicted_stale_shard: u64,
    /// Result-cache entries evicted to make room at capacity.
    pub result_cache_evicted_capacity: u64,
    /// Per-shard sub-snapshots publication actually rebuilt (dirty
    /// shards, graph + calendar axes).
    pub snapshot_shards_rebuilt: u64,
    /// Per-shard sub-snapshots carried over by `Arc` reuse from the
    /// previous epoch.
    pub snapshot_shards_reused: u64,
    /// Solves stopped early by a deadline or cancellation token.
    pub cancelled: u64,
}

/// A long-lived activity-planning service instance.
///
/// Mutations take `&mut self`; planning queries take `&self` (their
/// caching is interior), so a read-write lock around the whole planner —
/// see [`crate::SharedPlanner`] — gives concurrent queries for free.
pub struct Planner {
    network: MutableNetwork,
    calendars: CalendarStore,
    exec: Executor,
    /// Serialises snapshot publication so concurrent readers racing the
    /// same version drift rebuild once, not once each.
    publish_lock: Mutex<()>,
    /// Replication feed: every mutation appended with its resulting
    /// version stamps (in a `Mutex` only so read-side accessors take
    /// `&self`; mutations already hold `&mut self`).
    deltas: Mutex<DeltaLog>,
    mutations: AtomicU64,
    snapshot_rebuilds: AtomicU64,
}

/// Default bound on distinct `(initiator, s)` feasible graphs kept.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Planner {
    /// A fresh service over `horizon` time slots, with the paper's default
    /// engine configuration.
    pub fn new(horizon: usize) -> Self {
        Planner::with_config(horizon, SelectConfig::default(), DEFAULT_CACHE_CAPACITY)
    }

    /// Full-control constructor (engine configuration + feasible-graph
    /// cache capacity, with default executor sizing).
    pub fn with_config(horizon: usize, cfg: SelectConfig, cache_capacity: usize) -> Self {
        Planner::with_exec_config(
            horizon,
            ExecConfig {
                select: cfg,
                cache_capacity,
                ..ExecConfig::default()
            },
        )
    }

    /// Fullest-control constructor: every executor knob (worker count,
    /// shard count, batch threshold) is the caller's.
    pub fn with_exec_config(horizon: usize, cfg: ExecConfig) -> Self {
        let exec = Executor::new(cfg);
        let mut network = MutableNetwork::new();
        let mut calendars = CalendarStore::new(horizon);
        // Dirty-shard tracking shares the executor's modulus so
        // publication can map moved stamps directly onto sub-snapshots.
        network.set_shard_count(exec.shards());
        calendars.set_shard_count(exec.shards());
        Planner {
            network,
            calendars,
            exec,
            publish_lock: Mutex::new(()),
            deltas: Mutex::new(DeltaLog::new(DEFAULT_DELTA_LOG_CAPACITY)),
            mutations: AtomicU64::new(0),
            snapshot_rebuilds: AtomicU64::new(0),
        }
    }

    /// Rebuild a planner from a captured [`WorldState`] **preserving its
    /// version stamps and delta sequence** — the writer-failover path: a
    /// promoted replica's mirror becomes the new writer, and every future
    /// mutation continues the cluster's global version numbering instead
    /// of restarting from zero (version stamps key result and
    /// feasible-graph caches across the fleet, so a restart would alias
    /// old cached answers onto new world content).
    ///
    /// The new delta log is empty but numbered after `state.seq`: any
    /// replica asking for earlier history sees a gap and repairs through
    /// a full sync, which is correct — the promoted writer holds the
    /// state, not the mutation history that produced it.
    pub fn restore(state: &WorldState, cfg: ExecConfig) -> Result<Self, ServiceError> {
        let exec = Executor::new(cfg);
        let (mut network, mut calendars) = state.restore()?;
        // Track, then flood: a restored world has no per-shard history,
        // so every shard is stamped at the carried global version.
        network.set_shard_count(exec.shards());
        calendars.set_shard_count(exec.shards());
        network.force_version(state.graph_version);
        calendars.force_version(state.calendar_version);
        Ok(Planner {
            network,
            calendars,
            exec,
            publish_lock: Mutex::new(()),
            deltas: Mutex::new(DeltaLog::resume(DEFAULT_DELTA_LOG_CAPACITY, state.seq)),
            mutations: AtomicU64::new(0),
            snapshot_rebuilds: AtomicU64::new(0),
        })
    }

    /// The engine configuration planning queries run with (the
    /// search-reduction knobs — seeding, pivot ordering, buffer pooling —
    /// are [`SelectConfig`] fields, so they are set at construction via
    /// [`with_config`](Self::with_config) and read back here).
    pub fn config(&self) -> SelectConfig {
        self.exec.select_config()
    }

    /// Replace the engine configuration for subsequent queries. Exactness
    /// is config-independent; only search effort changes.
    pub fn set_config(&mut self, cfg: SelectConfig) {
        self.exec.set_select_config(cfg);
    }

    /// The execution subsystem behind this planner — for direct batch
    /// submission with deadlines/cancellation tokens, executor metrics,
    /// or snapshot inspection.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    // -- mutations ----------------------------------------------------

    /// Append a mutation to the replication feed, stamped with the
    /// version counters it produced.
    fn record_delta(&mut self, delta: WorldDelta) {
        self.deltas
            .lock()
            .record(delta, self.network.version(), self.calendars.version());
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Register a person; their calendar starts fully unavailable.
    pub fn add_person(&mut self, label: impl Into<String>) -> NodeId {
        let label = label.into();
        let id = self.network.add_person(label.clone());
        self.calendars.ensure_people(self.network.person_count());
        self.record_delta(WorldDelta::AddPerson { label });
        id
    }

    /// Create or re-weight a friendship.
    pub fn connect(&mut self, a: NodeId, b: NodeId, distance: Dist) -> Result<(), ServiceError> {
        self.network.connect(a, b, distance)?;
        self.record_delta(WorldDelta::Connect { a, b, distance });
        Ok(())
    }

    /// Remove a friendship; reports whether it existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServiceError> {
        let existed = self.network.disconnect(a, b)?;
        if existed {
            self.record_delta(WorldDelta::Disconnect { a, b });
        }
        Ok(existed)
    }

    /// Tombstone a person (id stays, edges and eligibility disappear).
    pub fn remove_person(&mut self, person: NodeId) -> Result<(), ServiceError> {
        self.network.remove_person(person)?;
        self.record_delta(WorldDelta::RemovePerson { person });
        Ok(())
    }

    /// Mark one slot (un)available.
    pub fn set_availability(
        &mut self,
        person: NodeId,
        slot: usize,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.set_slot(person.index(), slot, available)?;
        self.record_delta(WorldDelta::SetSlot {
            person,
            slot,
            available,
        });
        Ok(())
    }

    /// Mark a slot range (un)available.
    pub fn set_availability_range(
        &mut self,
        person: NodeId,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.set_range(person.index(), range, available)?;
        self.record_delta(WorldDelta::SetRange {
            person,
            range,
            available,
        });
        Ok(())
    }

    /// Replace a whole calendar (horizon must match the store).
    pub fn set_calendar(&mut self, person: NodeId, calendar: Calendar) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.replace(person.index(), calendar.clone())?;
        self.record_delta(WorldDelta::SetCalendar { person, calendar });
        Ok(())
    }

    // -- replication feed ----------------------------------------------

    /// The sequence number of the last recorded mutation (0 when none) —
    /// what a fully caught-up replica has applied.
    pub fn delta_seq(&self) -> u64 {
        self.deltas.lock().last_seq()
    }

    /// Every recorded mutation after `have_seq`, oldest first, or `None`
    /// when the bounded log has already evicted that far back (a **gap**:
    /// the replica needs a [`world_state`](Self::world_state) full sync).
    pub fn deltas_since(&self, have_seq: u64) -> Option<Vec<DeltaRecord>> {
        self.deltas.lock().since(have_seq)
    }

    /// A complete, self-contained copy of the world at the current
    /// versions — the full-sync payload for a replica attaching fresh or
    /// fallen behind the delta log.
    pub fn world_state(&self) -> WorldState {
        let n = self.network.person_count();
        WorldState {
            horizon: self.calendars.horizon(),
            labels: (0..n)
                .map(|v| {
                    self.network
                        .label(NodeId(v as u32))
                        .expect("ids below person_count are allocated")
                        .to_string()
                })
                .collect(),
            active: (0..n)
                .map(|v| self.network.is_active(NodeId(v as u32)))
                .collect(),
            edges: self.network.edge_list(),
            calendars: self.calendars.calendars().to_vec(),
            graph_version: self.network.version(),
            calendar_version: self.calendars.version(),
            seq: self.delta_seq(),
        }
    }

    /// Shrink or grow the delta log's retention. Shrinking may evict
    /// history and force attached replicas through a full sync on their
    /// next catch-up — which is exactly what the gap-path tests use it
    /// for.
    pub fn set_delta_log_capacity(&mut self, capacity: usize) {
        self.deltas.lock().set_capacity(capacity);
    }

    // -- reads ----------------------------------------------------------

    /// The underlying network (read-only).
    pub fn network(&self) -> &MutableNetwork {
        &self.network
    }

    /// The underlying calendar store (read-only).
    pub fn calendars(&self) -> &CalendarStore {
        &self.calendars
    }

    /// Service counters (the execution-side counters come from the
    /// [`Executor`]; see [`exec_metrics`](Self::exec_metrics) for the
    /// full executor view).
    pub fn metrics(&self) -> MetricsSnapshot {
        let e = self.exec.metrics();
        MetricsSnapshot {
            queries: e.queries,
            mutations: self.mutations.load(Ordering::Relaxed),
            feasible_cache_hits: e.feasible_cache_hits,
            feasible_cache_misses: e.feasible_cache_misses,
            snapshot_rebuilds: self.snapshot_rebuilds.load(Ordering::Relaxed),
            cached_feasible_graphs: e.cached_feasible_graphs,
            frames_examined: e.frames_examined,
            frames_pruned_by_bound: e.frames_pruned_by_bound,
            pivots_skipped: e.pivots_skipped,
            peeled_candidates: e.peeled_candidates,
            pivots_refused_by_core: e.pivots_refused_by_core,
            frames_pruned_by_match: e.frames_pruned_by_match,
            children_pruned_by_parent_bound: e.children_pruned_by_parent_bound,
            prep_words_delta: e.prep_words_delta,
            prep_words_rebuilt: e.prep_words_rebuilt,
            run_cache_cross_solve_hits: e.run_cache_cross_solve_hits,
            extract_words_copied: e.extract_words_copied,
            extract_words_borrowed: e.extract_words_borrowed,
            batched_entries: e.batched_entries,
            collapsed_entries: e.collapsed_entries,
            result_cache_hits: e.result_cache_hits,
            result_cache_misses: e.result_cache_misses,
            result_cache_evicted_stale_shard: e.result_cache_evicted_stale_shard,
            result_cache_evicted_capacity: e.result_cache_evicted_capacity,
            snapshot_shards_rebuilt: e.snapshot_shards_rebuilt,
            snapshot_shards_reused: e.snapshot_shards_reused,
            cancelled: e.cancelled,
        }
    }

    /// The raw executor counters (shard jobs, snapshot publishes, pool
    /// sizing — everything [`MetricsSnapshot`] doesn't surface).
    pub fn exec_metrics(&self) -> ExecMetrics {
        self.exec.metrics()
    }

    /// A flat CSR export of the current network — a fresh build on every
    /// call (the serving path holds sharded snapshots; this flat view
    /// exists for oracle checks and offline analysis).
    pub fn graph_snapshot(&self) -> Arc<SocialGraph> {
        Arc::new(self.network.snapshot())
    }

    /// Ensure the executor's published epoch matches the mutable state,
    /// rebuilding **only the dirty shards**: each sub-snapshot (graph
    /// segment / calendar slice) whose stamp still matches the mutable
    /// store's per-shard version is carried over by `Arc` from the
    /// previous epoch, so a delta confined to one community re-freezes
    /// one shard, not the world. Returns the fresh epoch.
    fn sync_snapshot(&self) -> Arc<WorldSnapshot> {
        let graph_version = self.network.version();
        let calendar_version = self.calendars.version();
        let current = self.exec.snapshot();
        if let Some(snap) = &current {
            if snap.versions() == (graph_version, calendar_version) {
                return Arc::clone(snap);
            }
        }
        let _guard = self.publish_lock.lock();
        // Re-check under the lock: a racing reader may have published.
        let current = self.exec.snapshot();
        if let Some(snap) = &current {
            if snap.versions() == (graph_version, calendar_version) {
                return Arc::clone(snap);
            }
        }
        let shards = self.exec.shards();
        let prev = current.filter(|s| s.shard_count() == shards);
        let mut graph_rebuilt = false;
        let mut segments = Vec::with_capacity(shards);
        let mut graph_stamps = Vec::with_capacity(shards);
        let mut cal_shards = Vec::with_capacity(shards);
        let mut cal_stamps = Vec::with_capacity(shards);
        for s in 0..shards {
            // Equal stamp ⇒ identical shard content: every mutation
            // touches its people's shards, so an unmoved stamp means the
            // frozen segment is still exact (growth included — a new
            // person moves their own shard's stamp on both axes).
            let g = self.network.shard_version(s);
            match &prev {
                Some(p) if p.graph_shard_version(s) == g => {
                    segments.push(Arc::clone(p.graph_segment(s)));
                }
                _ => {
                    graph_rebuilt = true;
                    segments.push(Arc::new(self.network.segment(s, shards)));
                }
            }
            graph_stamps.push(g);
            let c = self.calendars.shard_version(s);
            match &prev {
                Some(p) if p.calendar_shard_version(s) == c => {
                    cal_shards.push(Arc::clone(p.calendar_shard(s)));
                }
                _ => cal_shards.push(Arc::new(self.calendars.shard_slice(s, shards))),
            }
            cal_stamps.push(c);
        }
        if graph_rebuilt {
            self.snapshot_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
        let snapshot = Arc::new(WorldSnapshot::from_parts(
            segments,
            graph_stamps,
            cal_shards,
            cal_stamps,
            graph_version,
            calendar_version,
        ));
        self.exec.publish_snapshot(Arc::clone(&snapshot));
        snapshot
    }

    /// Executor errors the façade's pre-validation should have made
    /// impossible; surface the nearest service error rather than panic.
    fn exec_error(e: ExecError) -> ServiceError {
        match e {
            ExecError::InitiatorOutOfRange {
                initiator,
                node_count,
            } => ServiceError::UnknownPerson {
                person: initiator,
                person_count: node_count,
            },
            ExecError::NoSnapshot | ExecError::EpochTooOld { .. } | ExecError::ShuttingDown => {
                ServiceError::ExecutorUnavailable {
                    reason: e.to_string(),
                }
            }
        }
    }

    fn sgq_report(outcome: PlanOutcome) -> SgqReport {
        let PlanOutcome {
            outcome,
            evaluations,
            exact,
            engine,
            elapsed,
            feasible_cache_hit,
            result_cache_hit,
            ..
        } = outcome;
        let SolveOutcome::Sgq(out) = outcome else {
            unreachable!("SGQ request produced an STGQ outcome");
        };
        SgqReport {
            solution: out.solution,
            stats: engine.reports_search_stats().then_some(out.stats),
            evaluations,
            exact,
            engine,
            elapsed,
            feasible_cache_hit,
            result_cache_hit,
        }
    }

    fn stgq_report(outcome: PlanOutcome) -> StgqReport {
        let PlanOutcome {
            outcome,
            evaluations,
            exact,
            engine,
            elapsed,
            feasible_cache_hit,
            result_cache_hit,
            ..
        } = outcome;
        let SolveOutcome::Stgq(out) = outcome else {
            unreachable!("STGQ request produced an SGQ outcome");
        };
        StgqReport {
            solution: out.solution,
            stats: engine.reports_search_stats().then_some(out.stats),
            evaluations,
            exact,
            engine,
            elapsed,
            feasible_cache_hit,
            result_cache_hit,
        }
    }

    /// Answer an SGQ with the chosen engine (inline on this thread,
    /// against the current epoch).
    pub fn plan_sgq(
        &self,
        initiator: NodeId,
        query: &SgqQuery,
        engine: Engine,
    ) -> Result<SgqReport, ServiceError> {
        self.network.check_person(initiator)?;
        self.sync_snapshot();
        let request = PlanRequest::new(initiator, QuerySpec::Sgq(*query), engine);
        let outcome = self.exec.execute_one(request).map_err(Self::exec_error)?;
        Ok(Self::sgq_report(outcome))
    }

    /// Answer an STGQ with the chosen engine (inline on this thread,
    /// against the current epoch).
    pub fn plan_stgq(
        &self,
        initiator: NodeId,
        query: &StgqQuery,
        engine: Engine,
    ) -> Result<StgqReport, ServiceError> {
        self.network.check_person(initiator)?;
        self.sync_snapshot();
        let request = PlanRequest::new(initiator, QuerySpec::Stgq(*query), engine);
        let outcome = self.exec.execute_one(request).map_err(Self::exec_error)?;
        Ok(Self::stgq_report(outcome))
    }

    /// Answer a whole batch of mixed SGQ/STGQ queries through the
    /// executor's batched path: admission → initiator-shard grouping →
    /// the fixed worker pool (identical entries collapsed, same-shard
    /// entries cache-local). Replies come back in input order; entries
    /// with an invalid initiator fail individually without poisoning the
    /// batch. Exact engines return bit-identical objectives to solving
    /// the same queries one by one.
    pub fn plan_batch(&self, queries: &[BatchQuery]) -> Vec<Result<PlanReply, ServiceError>> {
        // Pre-validate so invalid entries never reach admission, and so
        // valid entries keep batching even when some fail.
        let checked: Vec<Result<(), ServiceError>> = queries
            .iter()
            .map(|q| self.network.check_person(q.initiator))
            .collect();
        if checked.iter().any(|c| c.is_ok()) {
            self.sync_snapshot();
        }
        let requests: Vec<PlanRequest> = queries
            .iter()
            .zip(&checked)
            .filter(|(_, c)| c.is_ok())
            .map(|(q, _)| PlanRequest::new(q.initiator, q.spec, q.engine))
            .collect();
        let mut executed = self.exec.execute_batch(requests).into_iter();
        checked
            .into_iter()
            .map(|check| {
                check.and_then(|()| {
                    let outcome = executed
                        .next()
                        .expect("one executed entry per validated query")
                        .map_err(Self::exec_error)?;
                    Ok(match &outcome.outcome {
                        SolveOutcome::Sgq(_) => PlanReply::Sgq(Self::sgq_report(outcome)),
                        SolveOutcome::Stgq(_) => PlanReply::Stgq(Self::stgq_report(outcome)),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::{solve_sgq, solve_stgq};

    /// A 6-person service: triangle a-b-c close to each other, d-e further
    /// out, f isolated.
    fn demo() -> (Planner, Vec<NodeId>) {
        demo_with(ExecConfig::default())
    }

    /// As [`demo`], with explicit executor sizing (the cache-probing
    /// tests disable the result cache so repeats exercise the layer
    /// under test instead of replaying).
    fn demo_with(cfg: ExecConfig) -> (Planner, Vec<NodeId>) {
        let mut p = Planner::with_exec_config(12, cfg);
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|l| p.add_person(*l))
            .collect();
        p.connect(ids[0], ids[1], 2).unwrap();
        p.connect(ids[0], ids[2], 3).unwrap();
        p.connect(ids[1], ids[2], 1).unwrap();
        p.connect(ids[0], ids[3], 8).unwrap();
        p.connect(ids[3], ids[4], 2).unwrap();
        for &id in &ids {
            p.set_availability_range(id, SlotRange::new(2, 9), true)
                .unwrap();
        }
        (p, ids)
    }

    #[test]
    fn exact_sgq_end_to_end() {
        let (p, ids) = demo();
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let report = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        let sol = report.solution.unwrap();
        assert_eq!(sol.total_distance, 5);
        assert!(report.exact);
        assert!(report.stats.is_some());
    }

    #[test]
    fn cache_hits_within_a_version_and_misses_after_mutation() {
        let (mut p, ids) = demo_with(ExecConfig {
            result_cache_capacity: 0,
            ..ExecConfig::default()
        });
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let r1 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r1.feasible_cache_hit);
        let r2 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(r2.feasible_cache_hit, "same version must hit");

        p.connect(ids[0], ids[4], 4).unwrap();
        let r3 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r3.feasible_cache_hit, "network mutation must invalidate");
    }

    #[test]
    fn answers_match_solving_from_scratch_after_each_mutation() {
        let (mut p, ids) = demo();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        type Mutation = Box<dyn Fn(&mut Planner)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(move |pl| pl.connect(NodeId(0), NodeId(4), 4).map(|_| ()).unwrap()),
            Box::new(move |pl| {
                pl.disconnect(NodeId(1), NodeId(2)).map(|_| ()).unwrap();
            }),
            Box::new(move |pl| pl.connect(NodeId(2), NodeId(3), 2).map(|_| ()).unwrap()),
            Box::new(move |pl| pl.remove_person(NodeId(1)).unwrap()),
        ];
        for m in mutations {
            m(&mut p);
            let via_service = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap().solution;
            let oracle = solve_sgq(
                &p.network().snapshot(),
                ids[0],
                &q,
                &SelectConfig::default(),
            )
            .unwrap()
            .solution;
            assert_eq!(
                via_service.map(|s| s.total_distance),
                oracle.map(|s| s.total_distance),
                "cached path must equal solving from scratch"
            );
        }
    }

    #[test]
    fn calendar_edits_change_stgq_answers_without_touching_graph_cache() {
        let (mut p, ids) = demo();
        let q = StgqQuery::new(3, 1, 0, 3).unwrap();
        let r1 = p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(r1.solution.is_some());

        // Blocking b's whole calendar makes the triangle unschedulable.
        p.set_availability_range(ids[1], SlotRange::new(0, 11), false)
            .unwrap();
        let r2 = p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(
            r2.feasible_cache_hit,
            "calendar edits must not invalidate the feasible-graph cache"
        );
        let d1 = r1.solution.unwrap().total_distance;
        match &r2.solution {
            None => {}
            Some(s) => assert!(s.total_distance > d1, "b was in the only cheap group"),
        }
        // Oracle cross-check.
        let oracle = solve_stgq(
            &p.network().snapshot(),
            ids[0],
            p.calendars().calendars(),
            &q,
            &SelectConfig::default(),
        )
        .unwrap()
        .solution;
        assert_eq!(
            r2.solution.map(|s| s.total_distance),
            oracle.map(|s| s.total_distance)
        );
    }

    #[test]
    fn all_engines_dominate_or_match_the_exact_objective() {
        let (p, ids) = demo();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        let exact = p
            .plan_sgq(ids[0], &q, Engine::Exact)
            .unwrap()
            .solution
            .unwrap()
            .total_distance;
        for engine in [
            Engine::ExactParallel { threads: 2 },
            Engine::Anytime {
                frame_budget: 1_000_000,
            },
            Engine::Greedy { restarts: 3 },
            Engine::LocalSearch {
                restarts: 3,
                passes: 4,
            },
        ] {
            let r = p.plan_sgq(ids[0], &q, engine).unwrap();
            if let Some(sol) = r.solution {
                assert!(sol.total_distance >= exact, "{engine:?}");
                if matches!(
                    engine,
                    Engine::ExactParallel { .. } | Engine::Anytime { .. }
                ) {
                    assert_eq!(sol.total_distance, exact, "{engine:?} is exact here");
                }
            }
        }
    }

    #[test]
    fn tombstoned_initiator_is_rejected() {
        let (mut p, ids) = demo();
        p.remove_person(ids[5]).unwrap();
        let q = SgqQuery::new(2, 1, 1).unwrap();
        assert!(matches!(
            p.plan_sgq(ids[5], &q, Engine::Exact),
            Err(ServiceError::RemovedPerson { .. })
        ));
        assert!(matches!(
            p.plan_sgq(NodeId(77), &q, Engine::Exact),
            Err(ServiceError::UnknownPerson { .. })
        ));
    }

    #[test]
    fn metrics_reflect_activity() {
        let (p, ids) = demo_with(ExecConfig {
            result_cache_capacity: 0,
            ..ExecConfig::default()
        });
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let m0 = p.metrics();
        assert!(m0.mutations > 0, "setup mutations counted");
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        p.plan_sgq(ids[1], &q, Engine::Exact).unwrap();
        let m = p.metrics();
        assert_eq!(m.queries, 3);
        assert_eq!(m.feasible_cache_hits, 1);
        assert_eq!(m.feasible_cache_misses, 2);
        assert_eq!(m.cached_feasible_graphs, 2);
        assert_eq!(
            m.snapshot_rebuilds, 1,
            "one snapshot serves both extractions"
        );
    }

    #[test]
    fn result_cache_replays_repeats_and_invalidates_on_mutation() {
        let (mut p, ids) = demo();
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let r1 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r1.result_cache_hit);
        let r2 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(r2.result_cache_hit, "identical repeat on one epoch replays");
        assert_eq!(
            r2.solution.as_ref().map(|s| s.total_distance),
            r1.solution.as_ref().map(|s| s.total_distance)
        );
        let m = p.metrics();
        assert_eq!(m.result_cache_hits, 1);
        assert!(m.result_cache_misses >= 1);

        // Delta-scoped stamps sharpen the old "any mutation invalidates"
        // rule: an SGQ reads no calendars, so a calendar edit leaves its
        // entry replayable…
        p.set_availability(ids[0], 11, true).unwrap();
        let r3 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(
            r3.result_cache_hit,
            "a calendar edit cannot stale an SGQ answer"
        );
        // …while a graph edit inside the entry's read set re-solves.
        p.connect(ids[0], ids[4], 4).unwrap();
        let r4 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r4.result_cache_hit, "a touched graph shard must re-solve");
    }

    #[test]
    fn a_delta_rebuilds_only_its_own_shards() {
        // Two residue-class communities under 4 shards: people 0,4,8,…
        // (shard 0) and 1,5,9,… (shard 1).
        let mut p = Planner::with_exec_config(
            8,
            ExecConfig {
                workers: 1,
                shards: 4,
                ..ExecConfig::default()
            },
        );
        let ids: Vec<NodeId> = (0..12).map(|i| p.add_person(format!("p{i}"))).collect();
        for c in 0..2u32 {
            let members: Vec<NodeId> = ids.iter().copied().filter(|v| v.0 % 4 == c).collect();
            for w in members.windows(2) {
                p.connect(w[0], w[1], 1).unwrap();
            }
            for &m in &members {
                p.set_availability_range(m, SlotRange::new(0, 7), true)
                    .unwrap();
            }
        }
        let q = SgqQuery::new(3, 1, 0).unwrap();
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap(); // first publish
        let m0 = p.metrics();

        // A graph delta confined to community 0 (shard 0) republished:
        // exactly one graph segment rebuilds, everything else is reused.
        p.connect(ids[0], ids[8], 2).unwrap();
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        let m1 = p.metrics();
        assert_eq!(m1.snapshot_shards_rebuilt - m0.snapshot_shards_rebuilt, 1);
        assert_eq!(m1.snapshot_shards_reused - m0.snapshot_shards_reused, 7);

        // A calendar delta in community 1 likewise re-slices one shard.
        p.set_availability(ids[1], 3, false).unwrap();
        p.plan_sgq(ids[1], &q, Engine::Exact).unwrap();
        let m2 = p.metrics();
        assert_eq!(m2.snapshot_shards_rebuilt - m1.snapshot_shards_rebuilt, 1);
        assert_eq!(m2.snapshot_shards_reused - m1.snapshot_shards_reused, 7);
        assert_eq!(
            m2.snapshot_rebuilds, m1.snapshot_rebuilds,
            "no graph segment moved, so no graph rebuild is counted"
        );

        // The answers stay correct under all that reuse.
        let oracle = solve_sgq(
            &p.network().snapshot(),
            ids[0],
            &q,
            &SelectConfig::default(),
        )
        .unwrap()
        .solution
        .map(|s| s.total_distance);
        let served = p
            .plan_sgq(ids[0], &q, Engine::Exact)
            .unwrap()
            .solution
            .map(|s| s.total_distance);
        assert_eq!(served, oracle);
    }

    #[test]
    fn cache_entries_survive_writes_outside_their_shards() {
        // Community queries keep replaying while an unrelated community
        // churns — the delta-scoped half of the tentpole.
        let mut p = Planner::with_exec_config(
            8,
            ExecConfig {
                workers: 1,
                shards: 4,
                ..ExecConfig::default()
            },
        );
        let ids: Vec<NodeId> = (0..12).map(|i| p.add_person(format!("p{i}"))).collect();
        for c in 0..2u32 {
            let members: Vec<NodeId> = ids.iter().copied().filter(|v| v.0 % 4 == c).collect();
            for w in members.windows(2) {
                p.connect(w[0], w[1], 1).unwrap();
            }
        }
        let q = SgqQuery::new(3, 1, 0).unwrap();
        assert!(
            !p.plan_sgq(ids[0], &q, Engine::Exact)
                .unwrap()
                .result_cache_hit
        );
        assert!(
            !p.plan_sgq(ids[1], &q, Engine::Exact)
                .unwrap()
                .result_cache_hit
        );

        // Churn community 1 (shard 1): community 0's entry must survive,
        // community 1's must be evicted as stale — and nothing else.
        p.connect(ids[1], ids[9], 5).unwrap();
        let r0 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(
            r0.result_cache_hit,
            "shard-0 entry outlives a shard-1 write"
        );
        let r1 = p.plan_sgq(ids[1], &q, Engine::Exact).unwrap();
        assert!(!r1.result_cache_hit, "shard-1 entry is stale");
        let m = p.metrics();
        assert_eq!(m.result_cache_evicted_stale_shard, 1);
        assert_eq!(m.result_cache_evicted_capacity, 0);
    }

    #[test]
    fn delta_feed_replays_into_an_identical_world() {
        let (mut p, ids) = demo();
        p.disconnect(ids[0], ids[3]).unwrap();
        p.set_availability(ids[4], 1, true).unwrap();

        // A replica attaching from scratch: replay every delta.
        let records = p.deltas_since(0).expect("fresh log holds everything");
        assert_eq!(records.len() as u64, p.delta_seq());
        let mut network = MutableNetwork::new();
        let mut calendars = CalendarStore::new(12);
        for r in &records {
            r.delta.apply(&mut network, &mut calendars).unwrap();
        }
        // Replaying the total mutation order reproduces the version
        // counters exactly — the invariant snapshot stamping relies on.
        let last = records.last().unwrap();
        assert_eq!(network.version(), last.graph_version);
        assert_eq!(calendars.version(), last.calendar_version);
        assert_eq!(network.version(), p.network().version());
        assert_eq!(calendars.version(), p.calendars().version());
        assert_eq!(network.edge_list(), p.network().edge_list());
        assert_eq!(calendars.calendars(), p.calendars().calendars());

        // Full-sync state restores the same world (modulo counters).
        let state = p.world_state();
        let (restored_net, restored_cals) = state.restore().unwrap();
        assert_eq!(restored_net.edge_list(), p.network().edge_list());
        assert_eq!(restored_cals.calendars(), p.calendars().calendars());
        assert_eq!(state.seq, p.delta_seq());
    }

    #[test]
    fn shrinking_the_delta_log_creates_gaps() {
        let (mut p, ids) = demo();
        let seq = p.delta_seq();
        assert!(seq > 2);
        p.set_delta_log_capacity(2);
        assert_eq!(p.deltas_since(0), None, "evicted history is a gap");
        assert!(p.deltas_since(seq - 1).is_some(), "recent tail survives");
        // New mutations keep flowing with continuous sequence numbers.
        p.set_availability(ids[0], 0, true).unwrap();
        assert_eq!(p.delta_seq(), seq + 1);
    }

    #[test]
    fn search_metrics_accumulate_across_exact_queries_only() {
        let (p, ids) = demo();
        let q = StgqQuery::new(3, 1, 0, 3).unwrap();
        let m0 = p.metrics();
        assert_eq!(m0.frames_examined + m0.pivots_skipped, 0);
        p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        let m1 = p.metrics();
        assert!(
            m1.frames_examined + m1.pivots_skipped > 0,
            "a feasible exact solve either examines frames or skips pivots"
        );
        p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        let m2 = p.metrics();
        assert!(
            m2.frames_examined + m2.pivots_skipped >= m1.frames_examined + m1.pivots_skipped,
            "counters are cumulative"
        );
        // Heuristic engines report no search stats and must not move them.
        p.plan_stgq(ids[0], &q, Engine::Greedy { restarts: 2 })
            .unwrap();
        let m3 = p.metrics();
        assert_eq!(m3.frames_examined, m2.frames_examined);
        assert_eq!(m3.pivots_skipped, m2.pivots_skipped);
    }

    #[test]
    fn config_round_trips_and_is_tunable() {
        let mut p = Planner::with_config(12, SelectConfig::NO_SEARCH_REDUCTION, 8);
        assert_eq!(p.config().seed_restarts, 0);
        assert!(!p.config().pivot_promise_order);
        p.set_config(SelectConfig::default());
        assert_eq!(p.config().seed_restarts, 2);
        assert!(p.config().pool_pivot_buffers);
    }

    #[test]
    fn anytime_reports_truncation_honestly() {
        let (p, ids) = demo();
        let q = SgqQuery::new(4, 2, 1).unwrap();
        let r = p
            .plan_sgq(ids[0], &q, Engine::Anytime { frame_budget: 1 })
            .unwrap();
        if let Some(stats) = r.stats {
            assert_eq!(r.exact, !stats.truncated);
            assert!(!stats.cancelled, "a budget stop is not a cancellation");
        }
        let r = p
            .plan_sgq(
                ids[0],
                &q,
                Engine::Anytime {
                    frame_budget: 1_000_000,
                },
            )
            .unwrap();
        assert!(r.exact, "a generous budget finishes this tiny instance");
    }

    #[test]
    fn batch_replies_in_input_order_with_per_entry_errors() {
        let (p, ids) = demo();
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let stgq = StgqQuery::new(3, 1, 0, 3).unwrap();
        let batch = vec![
            BatchQuery {
                initiator: ids[0],
                spec: QuerySpec::Sgq(sgq),
                engine: Engine::Exact,
            },
            BatchQuery {
                initiator: NodeId(99),
                spec: QuerySpec::Sgq(sgq),
                engine: Engine::Exact,
            },
            BatchQuery {
                initiator: ids[0],
                spec: QuerySpec::Stgq(stgq),
                engine: Engine::Exact,
            },
        ];
        let replies = p.plan_batch(&batch);
        assert_eq!(replies.len(), 3);
        let first = replies[0].as_ref().unwrap();
        assert_eq!(first.objective(), Some(5));
        assert!(first.as_sgq().is_some());
        assert!(matches!(
            replies[1],
            Err(ServiceError::UnknownPerson { .. })
        ));
        let third = replies[2].as_ref().unwrap();
        assert!(third.as_stgq().is_some());
        assert!(third.exact());
    }

    #[test]
    fn batch_matches_sequential_planning() {
        let (p, ids) = demo();
        let sgq = SgqQuery::new(3, 2, 1).unwrap();
        let stgq = StgqQuery::new(3, 1, 0, 3).unwrap();
        let batch: Vec<BatchQuery> = (0..3)
            .flat_map(|i| {
                [
                    BatchQuery {
                        initiator: ids[i],
                        spec: QuerySpec::Sgq(sgq),
                        engine: Engine::Exact,
                    },
                    BatchQuery {
                        initiator: ids[i],
                        spec: QuerySpec::Stgq(stgq),
                        engine: Engine::Exact,
                    },
                ]
            })
            .collect();
        let replies = p.plan_batch(&batch);
        for (query, reply) in batch.iter().zip(&replies) {
            let reply = reply.as_ref().unwrap();
            let sequential = match query.spec {
                QuerySpec::Sgq(q) => p
                    .plan_sgq(query.initiator, &q, query.engine)
                    .unwrap()
                    .solution
                    .map(|s| s.total_distance),
                QuerySpec::Stgq(q) => p
                    .plan_stgq(query.initiator, &q, query.engine)
                    .unwrap()
                    .solution
                    .map(|s| s.total_distance),
            };
            assert_eq!(reply.objective(), sequential);
        }
    }
}
