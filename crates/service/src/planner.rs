//! The query front end: caching, engine dispatch, provenance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use stgq_core::heuristics::{
    greedy_sgq_on, greedy_stgq_on, local_search_sgq_on, local_search_stgq_on,
};
use stgq_core::{
    solve_sgq_on, solve_sgq_parallel_on, solve_stgq_parallel_on, solve_stgq_pooled, PivotArena,
    SearchStats, SelectConfig, SgqQuery, SgqSolution, StgqQuery, StgqSolution,
};
use stgq_graph::{Dist, FeasibleGraph, NodeId, SocialGraph};
use stgq_schedule::{Calendar, SlotRange};

use crate::cache::FeasibleCache;
use crate::{CalendarStore, MutableNetwork, ServiceError};

/// Which solver answers a planning query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Sequential SGSelect / STGSelect — proven optimal.
    Exact,
    /// Parallel SGSelect / STGSelect — proven optimal, `threads` workers
    /// (`0` = all cores).
    ExactParallel {
        /// Worker count; `0` means all available parallelism.
        threads: usize,
    },
    /// Budgeted SGSelect / STGSelect: returns the incumbent after at most
    /// `frame_budget` search frames. The report's `exact` flag tells
    /// whether the search actually finished.
    Anytime {
        /// Maximum search frames before returning the incumbent.
        frame_budget: u64,
    },
    /// Greedy construction with restarts — fast, feasible, no optimality
    /// guarantee.
    Greedy {
        /// Forced-first-pick restarts (1 = plain greedy).
        restarts: usize,
    },
    /// Greedy plus first-improvement swap descent.
    LocalSearch {
        /// Forced-first-pick restarts.
        restarts: usize,
        /// Improvement sweeps.
        passes: usize,
    },
}

/// Answer to an SGQ planning request, with provenance.
#[derive(Clone, Debug)]
pub struct SgqReport {
    /// The group found, `None` if the engine found none (for exact engines
    /// this proves infeasibility; for heuristics it does not).
    pub solution: Option<SgqSolution>,
    /// Search counters (exact engines only).
    pub stats: Option<SearchStats>,
    /// Feasibility evaluations (heuristic engines only).
    pub evaluations: Option<u64>,
    /// Whether the answer is proven optimal / proven infeasible.
    pub exact: bool,
    /// The engine that produced it.
    pub engine: Engine,
    /// Wall-clock time inside the engine (excludes cache work).
    pub elapsed: Duration,
    /// Whether the feasible graph came from the cache.
    pub feasible_cache_hit: bool,
}

/// Answer to an STGQ planning request, with provenance.
#[derive(Clone, Debug)]
pub struct StgqReport {
    /// The (group, period) found, `None` if the engine found none.
    pub solution: Option<StgqSolution>,
    /// Search counters (exact engines only).
    pub stats: Option<SearchStats>,
    /// Feasibility evaluations (heuristic engines only).
    pub evaluations: Option<u64>,
    /// Whether the answer is proven optimal / proven infeasible.
    pub exact: bool,
    /// The engine that produced it.
    pub engine: Engine,
    /// Wall-clock time inside the engine (excludes cache work).
    pub elapsed: Duration,
    /// Whether the feasible graph came from the cache.
    pub feasible_cache_hit: bool,
}

/// Point-in-time view of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Planning queries served.
    pub queries: u64,
    /// Mutations applied (network + calendar).
    pub mutations: u64,
    /// Feasible-graph cache hits.
    pub feasible_cache_hits: u64,
    /// Feasible-graph cache misses (each triggered an extraction).
    pub feasible_cache_misses: u64,
    /// CSR snapshot rebuilds.
    pub snapshot_rebuilds: u64,
    /// Feasible graphs currently cached.
    pub cached_feasible_graphs: usize,
    /// Search frames examined by exact engines, summed over all queries
    /// served (the quantity the search-reduction work drives down).
    pub frames_examined: u64,
    /// Frames abandoned by the incumbent distance bound (Lemma 2), summed
    /// over all exact queries.
    pub frames_pruned_by_bound: u64,
    /// Whole pivots skipped by the pivot-granularity distance bound,
    /// summed over all exact STGQ queries.
    pub pivots_skipped: u64,
}

/// A long-lived activity-planning service instance.
///
/// Mutations take `&mut self`; planning queries take `&self` (their
/// caching is interior), so a read-write lock around the whole planner —
/// see [`crate::SharedPlanner`] — gives concurrent queries for free.
pub struct Planner {
    network: MutableNetwork,
    calendars: CalendarStore,
    cfg: SelectConfig,
    snapshot: Mutex<Option<(u64, Arc<SocialGraph>)>>,
    fg_cache: Mutex<FeasibleCache>,
    /// Recycled pivot buffers shared by sequential exact STGQ queries —
    /// a steady query stream re-uses one set of flattened availability
    /// buffers instead of reallocating per query.
    stgq_arena: Mutex<PivotArena>,
    queries: AtomicU64,
    mutations: AtomicU64,
    snapshot_rebuilds: AtomicU64,
    frames_examined: AtomicU64,
    frames_pruned_by_bound: AtomicU64,
    pivots_skipped: AtomicU64,
}

/// Default bound on distinct `(initiator, s)` feasible graphs kept.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Planner {
    /// A fresh service over `horizon` time slots, with the paper's default
    /// engine configuration.
    pub fn new(horizon: usize) -> Self {
        Planner::with_config(horizon, SelectConfig::default(), DEFAULT_CACHE_CAPACITY)
    }

    /// Full-control constructor.
    pub fn with_config(horizon: usize, cfg: SelectConfig, cache_capacity: usize) -> Self {
        Planner {
            network: MutableNetwork::new(),
            calendars: CalendarStore::new(horizon),
            cfg,
            snapshot: Mutex::new(None),
            fg_cache: Mutex::new(FeasibleCache::new(cache_capacity)),
            stgq_arena: Mutex::new(PivotArena::new()),
            queries: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            snapshot_rebuilds: AtomicU64::new(0),
            frames_examined: AtomicU64::new(0),
            frames_pruned_by_bound: AtomicU64::new(0),
            pivots_skipped: AtomicU64::new(0),
        }
    }

    /// The engine configuration planning queries run with (the
    /// search-reduction knobs — seeding, pivot ordering, buffer pooling —
    /// are [`SelectConfig`] fields, so they are set at construction via
    /// [`with_config`](Self::with_config) and read back here).
    pub fn config(&self) -> SelectConfig {
        self.cfg
    }

    /// Replace the engine configuration for subsequent queries. Exactness
    /// is config-independent; only search effort changes.
    pub fn set_config(&mut self, cfg: SelectConfig) {
        self.cfg = cfg;
    }

    // -- mutations ----------------------------------------------------

    /// Register a person; their calendar starts fully unavailable.
    pub fn add_person(&mut self, label: impl Into<String>) -> NodeId {
        let id = self.network.add_person(label);
        self.calendars.ensure_people(self.network.person_count());
        self.mutations.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Create or re-weight a friendship.
    pub fn connect(&mut self, a: NodeId, b: NodeId, distance: Dist) -> Result<(), ServiceError> {
        self.network.connect(a, b, distance)?;
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Remove a friendship; reports whether it existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServiceError> {
        let existed = self.network.disconnect(a, b)?;
        if existed {
            self.mutations.fetch_add(1, Ordering::Relaxed);
        }
        Ok(existed)
    }

    /// Tombstone a person (id stays, edges and eligibility disappear).
    pub fn remove_person(&mut self, person: NodeId) -> Result<(), ServiceError> {
        self.network.remove_person(person)?;
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Mark one slot (un)available.
    pub fn set_availability(
        &mut self,
        person: NodeId,
        slot: usize,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.set_slot(person.index(), slot, available)?;
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Mark a slot range (un)available.
    pub fn set_availability_range(
        &mut self,
        person: NodeId,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.set_range(person.index(), range, available)?;
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replace a whole calendar (horizon must match the store).
    pub fn set_calendar(&mut self, person: NodeId, calendar: Calendar) -> Result<(), ServiceError> {
        self.network.check_person(person)?;
        self.calendars.replace(person.index(), calendar)?;
        self.mutations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -- reads ----------------------------------------------------------

    /// The underlying network (read-only).
    pub fn network(&self) -> &MutableNetwork {
        &self.network
    }

    /// The underlying calendar store (read-only).
    pub fn calendars(&self) -> &CalendarStore {
        &self.calendars
    }

    /// Service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let cache = self.fg_cache.lock();
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            feasible_cache_hits: cache.hits,
            feasible_cache_misses: cache.misses,
            snapshot_rebuilds: self.snapshot_rebuilds.load(Ordering::Relaxed),
            cached_feasible_graphs: cache.len(),
            frames_examined: self.frames_examined.load(Ordering::Relaxed),
            frames_pruned_by_bound: self.frames_pruned_by_bound.load(Ordering::Relaxed),
            pivots_skipped: self.pivots_skipped.load(Ordering::Relaxed),
        }
    }

    /// Fold an exact engine's search counters into the service totals.
    fn note_search(&self, stats: &SearchStats) {
        self.frames_examined
            .fetch_add(stats.frames_examined(), Ordering::Relaxed);
        self.frames_pruned_by_bound
            .fetch_add(stats.frames_pruned_by_bound(), Ordering::Relaxed);
        self.pivots_skipped
            .fetch_add(stats.pivots_skipped, Ordering::Relaxed);
    }

    /// Current CSR snapshot, rebuilt only when the network changed.
    pub fn graph_snapshot(&self) -> Arc<SocialGraph> {
        let version = self.network.version();
        let mut guard = self.snapshot.lock();
        match guard.as_ref() {
            Some((v, g)) if *v == version => Arc::clone(g),
            _ => {
                let g = Arc::new(self.network.snapshot());
                self.snapshot_rebuilds.fetch_add(1, Ordering::Relaxed);
                *guard = Some((version, Arc::clone(&g)));
                g
            }
        }
    }

    /// Feasible graph for `(initiator, s)`, cached across queries until
    /// the network changes. Returns the graph and whether it was a hit.
    fn feasible(&self, initiator: NodeId, s: usize) -> (Arc<FeasibleGraph>, bool) {
        let version = self.network.version();
        if let Some(fg) = self.fg_cache.lock().get(initiator.0, s, version) {
            return (fg, true);
        }
        let graph = self.graph_snapshot();
        let fg = Arc::new(FeasibleGraph::extract(&graph, initiator, s));
        self.fg_cache
            .lock()
            .put(initiator.0, s, version, Arc::clone(&fg));
        (fg, false)
    }

    /// Answer an SGQ with the chosen engine.
    pub fn plan_sgq(
        &self,
        initiator: NodeId,
        query: &SgqQuery,
        engine: Engine,
    ) -> Result<SgqReport, ServiceError> {
        self.network.check_person(initiator)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (fg, feasible_cache_hit) = self.feasible(initiator, query.s());

        let start = Instant::now();
        let report = match engine {
            Engine::Exact => {
                let out = solve_sgq_on(&fg, query, &self.cfg, None);
                SgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact: true,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::ExactParallel { threads } => {
                let out = solve_sgq_parallel_on(&fg, query, &self.cfg, None, threads);
                SgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact: true,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::Anytime { frame_budget } => {
                let cfg = self.cfg.with_frame_budget(frame_budget);
                let out = solve_sgq_on(&fg, query, &cfg, None);
                let exact = !out.stats.truncated;
                SgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::Greedy { restarts } => {
                let out = greedy_sgq_on(&fg, query, None, restarts);
                SgqReport {
                    solution: out.solution,
                    stats: None,
                    evaluations: Some(out.evaluations),
                    exact: false,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::LocalSearch { restarts, passes } => {
                let out = local_search_sgq_on(&fg, query, None, restarts, passes);
                SgqReport {
                    solution: out.solution,
                    stats: None,
                    evaluations: Some(out.evaluations),
                    exact: false,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
        };
        if let Some(stats) = &report.stats {
            self.note_search(stats);
        }
        Ok(report)
    }

    /// Answer an STGQ with the chosen engine.
    pub fn plan_stgq(
        &self,
        initiator: NodeId,
        query: &StgqQuery,
        engine: Engine,
    ) -> Result<StgqReport, ServiceError> {
        self.network.check_person(initiator)?;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let (fg, feasible_cache_hit) = self.feasible(initiator, query.s());
        let cals = self.calendars.calendars();

        let start = Instant::now();
        let report = match engine {
            Engine::Exact => {
                // Take the arena out under a short lock rather than
                // holding the mutex across the solve — concurrent exact
                // queries (via `SharedPlanner` read locks) must not
                // serialize on it. Racing queries just solve with a fresh
                // arena; the last one back donates its buffers.
                let mut arena = std::mem::take(&mut *self.stgq_arena.lock());
                let out = solve_stgq_pooled(&fg, cals, query, &self.cfg, &mut arena);
                *self.stgq_arena.lock() = arena;
                StgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact: true,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::ExactParallel { threads } => {
                let out = solve_stgq_parallel_on(&fg, cals, query, &self.cfg, threads);
                StgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact: true,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::Anytime { frame_budget } => {
                let cfg = self.cfg.with_frame_budget(frame_budget);
                let mut arena = std::mem::take(&mut *self.stgq_arena.lock());
                let out = solve_stgq_pooled(&fg, cals, query, &cfg, &mut arena);
                *self.stgq_arena.lock() = arena;
                let exact = !out.stats.truncated;
                StgqReport {
                    solution: out.solution,
                    stats: Some(out.stats),
                    evaluations: None,
                    exact,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::Greedy { restarts } => {
                let out = greedy_stgq_on(&fg, cals, query, restarts);
                StgqReport {
                    solution: out.solution,
                    stats: None,
                    evaluations: Some(out.evaluations),
                    exact: false,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
            Engine::LocalSearch { restarts, passes } => {
                let out = local_search_stgq_on(&fg, cals, query, restarts, passes);
                StgqReport {
                    solution: out.solution,
                    stats: None,
                    evaluations: Some(out.evaluations),
                    exact: false,
                    engine,
                    elapsed: start.elapsed(),
                    feasible_cache_hit,
                }
            }
        };
        if let Some(stats) = &report.stats {
            self.note_search(stats);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::{solve_sgq, solve_stgq};

    /// A 6-person service: triangle a-b-c close to each other, d-e further
    /// out, f isolated.
    fn demo() -> (Planner, Vec<NodeId>) {
        let mut p = Planner::new(12);
        let ids: Vec<NodeId> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|l| p.add_person(*l))
            .collect();
        p.connect(ids[0], ids[1], 2).unwrap();
        p.connect(ids[0], ids[2], 3).unwrap();
        p.connect(ids[1], ids[2], 1).unwrap();
        p.connect(ids[0], ids[3], 8).unwrap();
        p.connect(ids[3], ids[4], 2).unwrap();
        for &id in &ids {
            p.set_availability_range(id, SlotRange::new(2, 9), true)
                .unwrap();
        }
        (p, ids)
    }

    #[test]
    fn exact_sgq_end_to_end() {
        let (p, ids) = demo();
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let report = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        let sol = report.solution.unwrap();
        assert_eq!(sol.total_distance, 5);
        assert!(report.exact);
        assert!(report.stats.is_some());
    }

    #[test]
    fn cache_hits_within_a_version_and_misses_after_mutation() {
        let (mut p, ids) = demo();
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let r1 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r1.feasible_cache_hit);
        let r2 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(r2.feasible_cache_hit, "same version must hit");

        p.connect(ids[0], ids[4], 4).unwrap();
        let r3 = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(!r3.feasible_cache_hit, "network mutation must invalidate");
    }

    #[test]
    fn answers_match_solving_from_scratch_after_each_mutation() {
        let (mut p, ids) = demo();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        type Mutation = Box<dyn Fn(&mut Planner)>;
        let mutations: Vec<Mutation> = vec![
            Box::new(move |pl| pl.connect(NodeId(0), NodeId(4), 4).map(|_| ()).unwrap()),
            Box::new(move |pl| {
                pl.disconnect(NodeId(1), NodeId(2)).map(|_| ()).unwrap();
            }),
            Box::new(move |pl| pl.connect(NodeId(2), NodeId(3), 2).map(|_| ()).unwrap()),
            Box::new(move |pl| pl.remove_person(NodeId(1)).unwrap()),
        ];
        for m in mutations {
            m(&mut p);
            let via_service = p.plan_sgq(ids[0], &q, Engine::Exact).unwrap().solution;
            let oracle = solve_sgq(
                &p.network().snapshot(),
                ids[0],
                &q,
                &SelectConfig::default(),
            )
            .unwrap()
            .solution;
            assert_eq!(
                via_service.map(|s| s.total_distance),
                oracle.map(|s| s.total_distance),
                "cached path must equal solving from scratch"
            );
        }
    }

    #[test]
    fn calendar_edits_change_stgq_answers_without_touching_graph_cache() {
        let (mut p, ids) = demo();
        let q = StgqQuery::new(3, 1, 0, 3).unwrap();
        let r1 = p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(r1.solution.is_some());

        // Blocking b's whole calendar makes the triangle unschedulable.
        p.set_availability_range(ids[1], SlotRange::new(0, 11), false)
            .unwrap();
        let r2 = p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        assert!(
            r2.feasible_cache_hit,
            "calendar edits must not invalidate the feasible-graph cache"
        );
        let d1 = r1.solution.unwrap().total_distance;
        match &r2.solution {
            None => {}
            Some(s) => assert!(s.total_distance > d1, "b was in the only cheap group"),
        }
        // Oracle cross-check.
        let oracle = solve_stgq(
            &p.network().snapshot(),
            ids[0],
            p.calendars().calendars(),
            &q,
            &SelectConfig::default(),
        )
        .unwrap()
        .solution;
        assert_eq!(
            r2.solution.map(|s| s.total_distance),
            oracle.map(|s| s.total_distance)
        );
    }

    #[test]
    fn all_engines_dominate_or_match_the_exact_objective() {
        let (p, ids) = demo();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        let exact = p
            .plan_sgq(ids[0], &q, Engine::Exact)
            .unwrap()
            .solution
            .unwrap()
            .total_distance;
        for engine in [
            Engine::ExactParallel { threads: 2 },
            Engine::Anytime {
                frame_budget: 1_000_000,
            },
            Engine::Greedy { restarts: 3 },
            Engine::LocalSearch {
                restarts: 3,
                passes: 4,
            },
        ] {
            let r = p.plan_sgq(ids[0], &q, engine).unwrap();
            if let Some(sol) = r.solution {
                assert!(sol.total_distance >= exact, "{engine:?}");
                if matches!(
                    engine,
                    Engine::ExactParallel { .. } | Engine::Anytime { .. }
                ) {
                    assert_eq!(sol.total_distance, exact, "{engine:?} is exact here");
                }
            }
        }
    }

    #[test]
    fn tombstoned_initiator_is_rejected() {
        let (mut p, ids) = demo();
        p.remove_person(ids[5]).unwrap();
        let q = SgqQuery::new(2, 1, 1).unwrap();
        assert!(matches!(
            p.plan_sgq(ids[5], &q, Engine::Exact),
            Err(ServiceError::RemovedPerson { .. })
        ));
        assert!(matches!(
            p.plan_sgq(NodeId(77), &q, Engine::Exact),
            Err(ServiceError::UnknownPerson { .. })
        ));
    }

    #[test]
    fn metrics_reflect_activity() {
        let (p, ids) = demo();
        let q = SgqQuery::new(3, 1, 0).unwrap();
        let m0 = p.metrics();
        assert!(m0.mutations > 0, "setup mutations counted");
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        p.plan_sgq(ids[0], &q, Engine::Exact).unwrap();
        p.plan_sgq(ids[1], &q, Engine::Exact).unwrap();
        let m = p.metrics();
        assert_eq!(m.queries, 3);
        assert_eq!(m.feasible_cache_hits, 1);
        assert_eq!(m.feasible_cache_misses, 2);
        assert_eq!(m.cached_feasible_graphs, 2);
        assert_eq!(
            m.snapshot_rebuilds, 1,
            "one snapshot serves both extractions"
        );
    }

    #[test]
    fn search_metrics_accumulate_across_exact_queries_only() {
        let (p, ids) = demo();
        let q = StgqQuery::new(3, 1, 0, 3).unwrap();
        let m0 = p.metrics();
        assert_eq!(m0.frames_examined + m0.pivots_skipped, 0);
        p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        let m1 = p.metrics();
        assert!(
            m1.frames_examined + m1.pivots_skipped > 0,
            "a feasible exact solve either examines frames or skips pivots"
        );
        p.plan_stgq(ids[0], &q, Engine::Exact).unwrap();
        let m2 = p.metrics();
        assert!(
            m2.frames_examined + m2.pivots_skipped >= m1.frames_examined + m1.pivots_skipped,
            "counters are cumulative"
        );
        // Heuristic engines report no search stats and must not move them.
        p.plan_stgq(ids[0], &q, Engine::Greedy { restarts: 2 })
            .unwrap();
        let m3 = p.metrics();
        assert_eq!(m3.frames_examined, m2.frames_examined);
        assert_eq!(m3.pivots_skipped, m2.pivots_skipped);
    }

    #[test]
    fn config_round_trips_and_is_tunable() {
        let mut p = Planner::with_config(12, SelectConfig::NO_SEARCH_REDUCTION, 8);
        assert_eq!(p.config().seed_restarts, 0);
        assert!(!p.config().pivot_promise_order);
        p.set_config(SelectConfig::default());
        assert_eq!(p.config().seed_restarts, 2);
        assert!(p.config().pool_pivot_buffers);
    }

    #[test]
    fn anytime_reports_truncation_honestly() {
        let (p, ids) = demo();
        let q = SgqQuery::new(4, 2, 1).unwrap();
        let r = p
            .plan_sgq(ids[0], &q, Engine::Anytime { frame_budget: 1 })
            .unwrap();
        if let Some(stats) = r.stats {
            assert_eq!(r.exact, !stats.truncated);
        }
        let r = p
            .plan_sgq(
                ids[0],
                &q,
                Engine::Anytime {
                    frame_budget: 1_000_000,
                },
            )
            .unwrap();
        assert!(r.exact, "a generous budget finishes this tiny instance");
    }
}
