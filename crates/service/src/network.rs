//! The mutable social network behind the planner.

use std::collections::BTreeMap;

use stgq_graph::{Dist, GraphBuilder, GraphSegment, NodeId, SocialGraph};

use crate::ServiceError;

/// An updatable, undirected, weighted social network.
///
/// People keep their [`NodeId`] for the service's lifetime — removing a
/// person tombstones the id (clearing its edges) rather than re-indexing,
/// so calendars and cached results never need to be re-keyed. Every
/// mutation that can change a query answer bumps [`version`](Self::version),
/// which the planner's caches key on.
///
/// When [`set_shard_count`](Self::set_shard_count) has been called, the
/// network additionally tracks *which shards* each mutation touched: shard
/// `s` holds the residue class `v % shards`, and
/// [`shard_version`](Self::shard_version) reports the global version at
/// the last mutation involving any of its people. A publisher compares
/// those stamps against the previous snapshot's to rebuild only the dirty
/// sub-snapshots.
#[derive(Clone, Debug, Default)]
pub struct MutableNetwork {
    /// Adjacency maps: `adj[v][u] = distance`. Symmetric by construction.
    adj: Vec<BTreeMap<u32, Dist>>,
    labels: Vec<String>,
    active: Vec<bool>,
    edge_count: usize,
    version: u64,
    /// Per-shard last-mutation stamps; empty = untracked (every shard
    /// reads as [`version`](Self::version), i.e. always dirty).
    shard_versions: Vec<u64>,
}

impl MutableNetwork {
    /// An empty network.
    pub fn new() -> Self {
        MutableNetwork::default()
    }

    /// Register a new person; the returned id is stable forever.
    pub fn add_person(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(BTreeMap::new());
        self.labels.push(label.into());
        self.active.push(true);
        self.version += 1;
        self.touch(id.index());
        id
    }

    /// Total ids ever issued (tombstoned people included).
    pub fn person_count(&self) -> usize {
        self.adj.len()
    }

    /// People currently active.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Current friendship count.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Monotone counter bumped by every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Overwrite the version counter, flooding every shard stamp. Only
    /// replication uses this: a replica's mirror (and a promoted writer's)
    /// must keep publishing under the cluster's global version numbering,
    /// never restart from zero (stamps key every result/feasible cache in
    /// the fleet). Flooding is the conservative choice — after a forced
    /// jump there is no per-shard history to trust.
    pub fn force_version(&mut self, version: u64) {
        self.version = version;
        self.shard_versions.fill(version);
    }

    /// Start (or re-key) dirty-shard tracking with `count` shards, every
    /// shard stamped at the current version (i.e. all dirty relative to
    /// any earlier snapshot).
    pub fn set_shard_count(&mut self, count: usize) {
        self.shard_versions = vec![self.version; count.max(1)];
    }

    /// The global version at the last mutation touching shard `shard`.
    /// Untracked stores report [`version`](Self::version) for every shard
    /// (conservatively always dirty).
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.shard_versions
            .get(shard)
            .copied()
            .unwrap_or(self.version)
    }

    /// Stamp `person`'s shard with the current version. Callers bump
    /// [`version`](Self::version) first.
    fn touch(&mut self, person: usize) {
        if !self.shard_versions.is_empty() {
            let s = person % self.shard_versions.len();
            self.shard_versions[s] = self.version;
        }
    }

    /// Freeze shard `shard` of `count` (the residue class `v % count`,
    /// rows ordered by `v / count`) into the immutable segment form the
    /// executor's sharded snapshots hold.
    pub fn segment(&self, shard: usize, count: usize) -> GraphSegment {
        GraphSegment::build(
            (shard..self.adj.len())
                .step_by(count)
                .map(|v| self.adj[v].iter().map(|(&u, &w)| (u, w))),
        )
    }

    /// The label given at registration.
    pub fn label(&self, person: NodeId) -> Option<&str> {
        self.labels.get(person.index()).map(String::as_str)
    }

    /// Whether `person` exists and has not been removed.
    pub fn is_active(&self, person: NodeId) -> bool {
        self.active.get(person.index()).copied().unwrap_or(false)
    }

    /// Validate that `person` exists and is active.
    pub fn check_person(&self, person: NodeId) -> Result<(), ServiceError> {
        if person.index() >= self.adj.len() {
            return Err(ServiceError::UnknownPerson {
                person,
                person_count: self.adj.len(),
            });
        }
        if !self.active[person.index()] {
            return Err(ServiceError::RemovedPerson { person });
        }
        Ok(())
    }

    /// Create or re-weight the friendship between `a` and `b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, distance: Dist) -> Result<(), ServiceError> {
        self.check_person(a)?;
        self.check_person(b)?;
        if a == b {
            return Err(ServiceError::SelfFriendship { person: a });
        }
        if distance == 0 {
            return Err(ServiceError::ZeroDistance { a, b });
        }
        let fresh = self.adj[a.index()].insert(b.0, distance).is_none();
        self.adj[b.index()].insert(a.0, distance);
        if fresh {
            self.edge_count += 1;
        }
        self.version += 1;
        self.touch(a.index());
        self.touch(b.index());
        Ok(())
    }

    /// Remove the friendship between `a` and `b`; reports whether it existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServiceError> {
        self.check_person(a)?;
        self.check_person(b)?;
        let existed = self.adj[a.index()].remove(&b.0).is_some();
        self.adj[b.index()].remove(&a.0);
        if existed {
            self.edge_count -= 1;
            self.version += 1;
            self.touch(a.index());
            self.touch(b.index());
        }
        Ok(existed)
    }

    /// Tombstone a person: all their friendships disappear, their id stays.
    pub fn remove_person(&mut self, person: NodeId) -> Result<(), ServiceError> {
        self.check_person(person)?;
        let neighbors: Vec<u32> = self.adj[person.index()].keys().copied().collect();
        self.adj[person.index()].clear();
        self.active[person.index()] = false;
        self.version += 1;
        self.touch(person.index());
        for nb in neighbors {
            self.adj[nb as usize].remove(&person.0);
            self.edge_count -= 1;
            self.touch(nb as usize);
        }
        Ok(())
    }

    /// Current social distance between `a` and `b`, if they are friends.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<Dist> {
        self.adj.get(a.index())?.get(&b.0).copied()
    }

    /// Number of friends of `person` (0 for tombstoned or unknown ids).
    pub fn degree(&self, person: NodeId) -> usize {
        self.adj.get(person.index()).map_or(0, BTreeMap::len)
    }

    /// Every current friendship as `(a, b, distance)` with `a < b` —
    /// the edge export a full replication sync ships to a fresh replica.
    pub fn edge_list(&self) -> Vec<(u32, u32, Dist)> {
        let mut edges = Vec::with_capacity(self.edge_count);
        for (v, row) in self.adj.iter().enumerate() {
            for (&u, &w) in row {
                if (v as u32) < u {
                    edges.push((v as u32, u, w));
                }
            }
        }
        edges
    }

    /// Freeze the current state into the immutable CSR form the query
    /// engines consume. Ids are preserved; tombstoned people become
    /// isolated vertices (no query can ever select them since every
    /// candidate needs a path to the initiator).
    pub fn snapshot(&self) -> SocialGraph {
        let mut b = GraphBuilder::new(self.adj.len());
        b.set_labels(self.labels.clone());
        for (v, row) in self.adj.iter().enumerate() {
            for (&u, &w) in row {
                if (v as u32) < u {
                    b.add_edge(NodeId(v as u32), NodeId(u), w)
                        .expect("network invariants guarantee valid edges");
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_people() -> (MutableNetwork, NodeId, NodeId, NodeId) {
        let mut net = MutableNetwork::new();
        let a = net.add_person("a");
        let b = net.add_person("b");
        let c = net.add_person("c");
        (net, a, b, c)
    }

    #[test]
    fn connect_and_query_roundtrip() {
        let (mut net, a, b, c) = three_people();
        net.connect(a, b, 5).unwrap();
        net.connect(b, c, 7).unwrap();
        assert_eq!(net.distance(a, b), Some(5));
        assert_eq!(net.distance(b, a), Some(5));
        assert_eq!(net.distance(a, c), None);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.degree(b), 2);
    }

    #[test]
    fn reconnect_updates_weight_without_duplicating() {
        let (mut net, a, b, _) = three_people();
        net.connect(a, b, 5).unwrap();
        net.connect(a, b, 9).unwrap();
        assert_eq!(net.distance(a, b), Some(9));
        assert_eq!(net.edge_count(), 1);
    }

    #[test]
    fn disconnect_reports_prior_existence() {
        let (mut net, a, b, c) = three_people();
        net.connect(a, b, 5).unwrap();
        assert!(net.disconnect(a, b).unwrap());
        assert!(!net.disconnect(a, c).unwrap());
        assert_eq!(net.edge_count(), 0);
    }

    #[test]
    fn versions_bump_on_mutation_only() {
        let (mut net, a, b, _) = three_people();
        let v0 = net.version();
        net.connect(a, b, 5).unwrap();
        let v1 = net.version();
        assert!(v1 > v0);
        let _ = net.distance(a, b);
        let _ = net.snapshot();
        assert_eq!(net.version(), v1, "reads must not invalidate caches");
        // A no-op disconnect does not bump either.
        let (x, y) = (NodeId(0), NodeId(2));
        assert!(!net.disconnect(x, y).unwrap());
        assert_eq!(net.version(), v1);
    }

    #[test]
    fn remove_person_tombstones_and_clears_edges() {
        let (mut net, a, b, c) = three_people();
        net.connect(a, b, 5).unwrap();
        net.connect(b, c, 7).unwrap();
        net.remove_person(b).unwrap();
        assert!(!net.is_active(b));
        assert_eq!(net.edge_count(), 0);
        assert_eq!(net.degree(a), 0);
        assert_eq!(net.person_count(), 3, "ids are never re-issued");
        assert_eq!(net.active_count(), 2);
        assert!(matches!(
            net.connect(a, b, 1),
            Err(ServiceError::RemovedPerson { .. })
        ));
    }

    #[test]
    fn input_validation() {
        let (mut net, a, _, _) = three_people();
        assert!(matches!(
            net.connect(a, NodeId(99), 1),
            Err(ServiceError::UnknownPerson { .. })
        ));
        assert!(matches!(
            net.connect(a, a, 1),
            Err(ServiceError::SelfFriendship { .. })
        ));
        assert!(matches!(
            net.connect(a, NodeId(1), 0),
            Err(ServiceError::ZeroDistance { .. })
        ));
    }

    #[test]
    fn shard_stamps_move_only_for_touched_residue_classes() {
        let mut net = MutableNetwork::new();
        net.set_shard_count(4);
        let people: Vec<NodeId> = (0..8).map(|i| net.add_person(format!("p{i}"))).collect();
        let base = net.version();
        let stamps: Vec<u64> = (0..4).map(|s| net.shard_version(s)).collect();
        // 1-5 touches shards 1 and 1 (5 % 4 == 1): only shard 1 moves.
        net.connect(people[1], people[5], 3).unwrap();
        assert_eq!(net.shard_version(1), base + 1);
        for s in [0, 2, 3] {
            assert_eq!(net.shard_version(s), stamps[s], "shard {s} untouched");
        }
        // 2-7 touches shards 2 and 3.
        net.connect(people[2], people[7], 4).unwrap();
        assert_eq!(net.shard_version(2), base + 2);
        assert_eq!(net.shard_version(3), base + 2);
        assert_eq!(net.shard_version(0), stamps[0]);
        // Removing 5 touches its shard and every ex-neighbor's shard.
        net.remove_person(people[5]).unwrap();
        assert_eq!(net.shard_version(1), base + 3);
        assert_eq!(net.shard_version(0), stamps[0], "shard 0 never touched");
    }

    #[test]
    fn untracked_networks_report_every_shard_at_the_global_version() {
        let (mut net, a, b, _) = three_people();
        net.connect(a, b, 5).unwrap();
        assert_eq!(net.shard_version(0), net.version());
        assert_eq!(net.shard_version(99), net.version());
    }

    #[test]
    fn force_version_floods_every_shard() {
        let mut net = MutableNetwork::new();
        net.set_shard_count(3);
        net.add_person("a");
        net.force_version(40);
        assert_eq!(net.version(), 40);
        for s in 0..3 {
            assert_eq!(net.shard_version(s), 40);
        }
    }

    #[test]
    fn segments_partition_the_snapshot_by_residue() {
        let (mut net, a, b, c) = three_people();
        net.connect(a, b, 5).unwrap();
        net.connect(b, c, 7).unwrap();
        let flat = net.snapshot();
        for shards in [1usize, 2, 4] {
            for s in 0..shards {
                let seg = net.segment(s, shards);
                let mut v = s;
                for r in 0..seg.rows() {
                    let (nbrs, dists) = seg.row(r);
                    let row: Vec<(u32, Dist)> =
                        nbrs.iter().copied().zip(dists.iter().copied()).collect();
                    let expect: Vec<(u32, Dist)> = flat
                        .neighbors(NodeId(v as u32))
                        .iter()
                        .map(|&u| (u, flat.edge_weight(NodeId(v as u32), NodeId(u)).unwrap()))
                        .collect();
                    assert_eq!(row, expect, "shard {s}/{shards} row {r}");
                    v += shards;
                }
            }
        }
    }

    #[test]
    fn snapshot_matches_network_state() {
        let (mut net, a, b, c) = three_people();
        net.connect(a, b, 5).unwrap();
        net.connect(b, c, 7).unwrap();
        net.remove_person(c).unwrap();
        let g = net.snapshot();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(a, b), Some(5));
        assert_eq!(g.degree(c), 0);
        assert_eq!(g.label(a), "a");
    }
}
