//! Prometheus text exposition of one planner's counters and latency
//! histograms.
//!
//! The single-process spectrum: every [`MetricsSnapshot`] counter as a
//! Prometheus counter/gauge family, plus the executor's seven
//! [`stgq_exec::EXEC_HISTOGRAMS`] as histogram families
//! (`stgq_<name>_ns`). The cluster-wide variant — the same families
//! merged fleet-wide with per-node breakdowns and RPC round-trips — is
//! `stgq_cluster::ClusterObs::prometheus_text`, which reuses
//! [`render_metrics_snapshot`] and [`render_histograms`] so the two
//! expositions cannot drift apart.

use stgq_exec::ExecObs;
use stgq_obs::prom::PromText;
use stgq_obs::HistogramSnapshot;

use crate::planner::{MetricsSnapshot, Planner};

impl Planner {
    /// Render this planner's full observability surface —
    /// [`Planner::metrics`] counters plus the executor's latency
    /// histograms and recorder depth — as Prometheus text exposition
    /// format. The output round-trips through
    /// `stgq_obs::prom::PromReport::parse`.
    pub fn prometheus_text(&self) -> String {
        let mut text = PromText::new();
        render_metrics_snapshot(&mut text, &self.metrics(), &[]);
        let obs = self.executor().obs();
        let hists: Vec<(String, HistogramSnapshot)> = obs
            .histograms()
            .into_iter()
            .map(|(name, snap)| (name.to_string(), snap))
            .collect();
        render_histograms(&mut text, "stgq", &hists, &[]);
        text.gauge(
            "stgq_slow_queries_logged",
            "Entries currently held in the slowest-N slow-query log.",
            &[],
            obs.recorder.slow_queries().len() as f64,
        );
        text.gauge(
            "stgq_traces_buffered",
            "Query traces currently held in the flight-recorder ring.",
            &[],
            obs.recorder.traces().len() as f64,
        );
        text.finish()
    }
}

/// Render every [`MetricsSnapshot`] field into `text` under the `stgq_`
/// prefix, attaching `labels` to each sample (the cluster exposition
/// passes `node="i"` here; the single-process exposition passes none).
pub fn render_metrics_snapshot(text: &mut PromText, m: &MetricsSnapshot, labels: &[(&str, &str)]) {
    let counters: [(&str, &str, u64); 26] = [
        ("queries", "Planning queries served.", m.queries),
        (
            "mutations",
            "Mutations applied (network + calendar).",
            m.mutations,
        ),
        (
            "feasible_cache_hits",
            "Feasible-graph cache hits.",
            m.feasible_cache_hits,
        ),
        (
            "feasible_cache_misses",
            "Feasible-graph cache misses (each triggered an extraction).",
            m.feasible_cache_misses,
        ),
        (
            "snapshot_rebuilds",
            "CSR snapshot rebuilds.",
            m.snapshot_rebuilds,
        ),
        (
            "frames_examined",
            "Search frames examined by exact engines.",
            m.frames_examined,
        ),
        (
            "frames_pruned_by_bound",
            "Frames abandoned by the incumbent distance bound (Lemma 2).",
            m.frames_pruned_by_bound,
        ),
        (
            "pivots_skipped",
            "Whole pivots skipped by the pivot-granularity distance bound.",
            m.pivots_skipped,
        ),
        (
            "peeled_candidates",
            "Candidates removed by (p,k)-core peeling before exact descent.",
            m.peeled_candidates,
        ),
        (
            "pivots_refused_by_core",
            "Pivots refused because their peeled core could not seat a group.",
            m.pivots_refused_by_core,
        ),
        (
            "frames_pruned_by_match",
            "Frames abandoned by the k-plex matching bound.",
            m.frames_pruned_by_match,
        ),
        (
            "children_pruned_by_parent_bound",
            "Children retired at the parent frame by the completion bound.",
            m.children_pruned_by_parent_bound,
        ),
        (
            "prep_words_delta",
            "Availability words whose rebuild the incremental-prep cache avoided.",
            m.prep_words_delta,
        ),
        (
            "prep_words_rebuilt",
            "Availability words built from calendar words during preparation.",
            m.prep_words_rebuilt,
        ),
        (
            "run_cache_cross_solve_hits",
            "Definition-4 runs served by the cross-solve run cache under the world-version handshake.",
            m.run_cache_cross_solve_hits,
        ),
        (
            "extract_words_copied",
            "Adjacency words copied into per-query feasible graphs (materialized extraction).",
            m.extract_words_copied,
        ),
        (
            "extract_words_borrowed",
            "Adjacency words generated in place by zero-copy feasible-view extraction.",
            m.extract_words_borrowed,
        ),
        (
            "batched_entries",
            "Entries that went through the batched executor path.",
            m.batched_entries,
        ),
        (
            "collapsed_entries",
            "Batched entries answered by request collapsing.",
            m.collapsed_entries,
        ),
        (
            "result_cache_hits",
            "Whole answers replayed from the version-stamped result cache.",
            m.result_cache_hits,
        ),
        (
            "result_cache_misses",
            "Result-cache lookups that missed (fresh query or moved epoch).",
            m.result_cache_misses,
        ),
        (
            "result_cache_evicted_stale_shard",
            "Result-cache entries evicted because a stamped shard moved.",
            m.result_cache_evicted_stale_shard,
        ),
        (
            "result_cache_evicted_capacity",
            "Result-cache entries evicted to make room at capacity.",
            m.result_cache_evicted_capacity,
        ),
        (
            "snapshot_shards_rebuilt",
            "Per-shard sub-snapshots actually rebuilt at publication.",
            m.snapshot_shards_rebuilt,
        ),
        (
            "snapshot_shards_reused",
            "Per-shard sub-snapshots carried over by Arc reuse.",
            m.snapshot_shards_reused,
        ),
        (
            "cancelled",
            "Solves stopped early by a deadline or cancellation token.",
            m.cancelled,
        ),
    ];
    for (name, help, value) in counters {
        text.counter(&format!("stgq_{name}"), help, labels, value);
    }
    text.gauge(
        "stgq_cached_feasible_graphs",
        "Feasible graphs currently cached.",
        labels,
        m.cached_feasible_graphs as f64,
    );
}

/// Render named histogram snapshots as `<prefix>_<name>_ns` families
/// with `labels` on every sample. Shared by the planner and cluster
/// expositions; `ExecObs::histogram_help` keys the `HELP` strings so
/// both describe identical families identically.
pub fn render_histograms(
    text: &mut PromText,
    prefix: &str,
    histograms: &[(String, HistogramSnapshot)],
    labels: &[(&str, &str)],
) {
    for (name, snap) in histograms {
        text.histogram(
            &format!("{prefix}_{name}_ns"),
            ExecObs::histogram_help(name),
            labels,
            snap,
        );
    }
}
