//! Version-stamped caches for snapshots and feasible graphs.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use stgq_graph::FeasibleGraph;

/// A bounded FIFO cache of feasible graphs keyed by `(initiator, s)`,
/// each entry stamped with the network version it was built from.
///
/// Radius-graph extraction (§3.2.1) is the per-query fixed cost every
/// engine pays; for a service handling repeated queries from the same
/// initiators it is also the most cacheable: the feasible graph depends
/// only on the social graph, never on calendars, `p`, `k` or `m`.
#[derive(Debug)]
pub(crate) struct FeasibleCache {
    entries: HashMap<(u32, usize), Entry>,
    insertion_order: VecDeque<(u32, usize)>,
    capacity: usize,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    fg: Arc<FeasibleGraph>,
}

impl FeasibleCache {
    pub(crate) fn new(capacity: usize) -> Self {
        FeasibleCache {
            entries: HashMap::new(),
            insertion_order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `(initiator, s)` at `version`; stale entries miss (and are
    /// evicted on replacement).
    pub(crate) fn get(
        &mut self,
        initiator: u32,
        s: usize,
        version: u64,
    ) -> Option<Arc<FeasibleGraph>> {
        match self.entries.get(&(initiator, s)) {
            Some(e) if e.version == version => {
                self.hits += 1;
                Some(Arc::clone(&e.fg))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly-built graph, evicting the oldest entry at capacity.
    pub(crate) fn put(&mut self, initiator: u32, s: usize, version: u64, fg: Arc<FeasibleGraph>) {
        let key = (initiator, s);
        if self.entries.insert(key, Entry { version, fg }).is_none() {
            self.insertion_order.push_back(key);
            if self.insertion_order.len() > self.capacity {
                if let Some(oldest) = self.insertion_order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::{GraphBuilder, NodeId};

    fn fg() -> Arc<FeasibleGraph> {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        Arc::new(FeasibleGraph::extract(&b.build(), NodeId(0), 1))
    }

    #[test]
    fn hit_requires_matching_version() {
        let mut c = FeasibleCache::new(4);
        c.put(0, 1, 7, fg());
        assert!(c.get(0, 1, 7).is_some());
        assert!(c.get(0, 1, 8).is_none(), "stale version must miss");
        assert!(c.get(1, 1, 7).is_none(), "different initiator must miss");
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn capacity_evicts_oldest_key() {
        let mut c = FeasibleCache::new(2);
        c.put(0, 1, 1, fg());
        c.put(1, 1, 1, fg());
        c.put(2, 1, 1, fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, 1).is_none(), "oldest key evicted");
        assert!(c.get(2, 1, 1).is_some());
    }

    #[test]
    fn replacing_a_key_does_not_grow_the_order_queue() {
        let mut c = FeasibleCache::new(2);
        for version in 0..10 {
            c.put(0, 1, version, fg());
        }
        c.put(1, 1, 0, fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, 9).is_some());
    }
}
