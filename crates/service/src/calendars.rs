//! Per-person availability storage with a shared horizon.

use stgq_schedule::{Calendar, SlotRange};

use crate::ServiceError;

/// Calendars for every registered person over one slot horizon.
///
/// The store grows in lock-step with the network (the planner calls
/// [`ensure_people`](Self::ensure_people) after registrations); new people
/// start fully **unavailable**, mirroring the paper's model where the
/// system only knows the slots users have shared. Calendar mutations bump
/// a version of their own so STGQ answers can be cache-stamped, but they
/// never touch the graph caches.
/// Like [`MutableNetwork`](crate::MutableNetwork), the store can track
/// dirty shards (residue classes `person % shards`) once
/// [`set_shard_count`](Self::set_shard_count) is called, so publication
/// re-slices only the shards whose calendars actually changed.
#[derive(Clone, Debug)]
pub struct CalendarStore {
    cals: Vec<Calendar>,
    horizon: usize,
    version: u64,
    /// Per-shard last-mutation stamps; empty = untracked (every shard
    /// reads as [`version`](Self::version)).
    shard_versions: Vec<u64>,
}

impl CalendarStore {
    /// An empty store over `horizon` slots.
    pub fn new(horizon: usize) -> Self {
        CalendarStore {
            cals: Vec::new(),
            horizon,
            version: 0,
            shard_versions: Vec::new(),
        }
    }

    /// The shared slot horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Monotone counter bumped by every availability mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Overwrite the version counter, flooding every shard stamp
    /// (replication only — see
    /// [`MutableNetwork::force_version`](crate::MutableNetwork::force_version)).
    pub fn force_version(&mut self, version: u64) {
        self.version = version;
        self.shard_versions.fill(version);
    }

    /// Start (or re-key) dirty-shard tracking with `count` shards, every
    /// shard stamped at the current version.
    pub fn set_shard_count(&mut self, count: usize) {
        self.shard_versions = vec![self.version; count.max(1)];
    }

    /// The global version at the last mutation touching shard `shard`;
    /// untracked stores report [`version`](Self::version) everywhere.
    pub fn shard_version(&self, shard: usize) -> u64 {
        self.shard_versions
            .get(shard)
            .copied()
            .unwrap_or(self.version)
    }

    fn touch(&mut self, person: usize) {
        if !self.shard_versions.is_empty() {
            let s = person % self.shard_versions.len();
            self.shard_versions[s] = self.version;
        }
    }

    /// Clone shard `shard` of `count` (calendars of the residue class
    /// `person % count`, ordered by `person / count`) — the slice a
    /// sharded snapshot holds for that shard.
    pub fn shard_slice(&self, shard: usize, count: usize) -> Vec<Calendar> {
        (shard..self.cals.len())
            .step_by(count)
            .map(|p| self.cals[p].clone())
            .collect()
    }

    /// Number of calendars held.
    pub fn len(&self) -> usize {
        self.cals.len()
    }

    /// Whether the store holds no calendars yet.
    pub fn is_empty(&self) -> bool {
        self.cals.is_empty()
    }

    /// Grow to `count` calendars (new ones fully unavailable). Never
    /// shrinks — person ids are stable. Growing bumps the version and
    /// touches each new person's shard: the published calendar slices
    /// must lengthen even though the new calendars are all-unavailable
    /// (a snapshot that kept the short slice would index out of range as
    /// soon as a new person becomes reachable).
    pub fn ensure_people(&mut self, count: usize) {
        if count <= self.cals.len() {
            return;
        }
        self.version += 1;
        while self.cals.len() < count {
            self.touch(self.cals.len());
            self.cals.push(Calendar::new(self.horizon));
        }
    }

    fn check_slot(&self, slot: usize) -> Result<(), ServiceError> {
        if slot >= self.horizon {
            return Err(ServiceError::SlotOutOfRange {
                slot,
                horizon: self.horizon,
            });
        }
        Ok(())
    }

    /// Mark one slot (un)available for `person` (index pre-validated by
    /// the planner).
    pub fn set_slot(
        &mut self,
        person: usize,
        slot: usize,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.check_slot(slot)?;
        self.cals[person].set_available(slot, available);
        self.version += 1;
        self.touch(person);
        Ok(())
    }

    /// Mark a whole range (un)available for `person`.
    pub fn set_range(
        &mut self,
        person: usize,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.check_slot(range.lo)?;
        self.check_slot(range.hi)?;
        self.cals[person].set_range(range, available);
        self.version += 1;
        self.touch(person);
        Ok(())
    }

    /// Replace one person's calendar wholesale (horizon must match).
    pub fn replace(&mut self, person: usize, calendar: Calendar) -> Result<(), ServiceError> {
        if calendar.horizon() != self.horizon {
            return Err(ServiceError::SlotOutOfRange {
                slot: calendar.horizon(),
                horizon: self.horizon,
            });
        }
        self.cals[person] = calendar;
        self.version += 1;
        self.touch(person);
        Ok(())
    }

    /// Read one calendar.
    pub fn calendar(&self, person: usize) -> &Calendar {
        &self.cals[person]
    }

    /// All calendars, indexed by person id — the exact slice the STGQ
    /// engines take.
    pub fn calendars(&self) -> &[Calendar] {
        &self.cals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_unavailable_defaults() {
        let mut store = CalendarStore::new(10);
        store.ensure_people(3);
        assert_eq!(store.len(), 3);
        assert_eq!(store.calendar(0).count_available(), 0);
        store.ensure_people(2);
        assert_eq!(store.len(), 3, "never shrinks");
    }

    #[test]
    fn slot_and_range_updates() {
        let mut store = CalendarStore::new(10);
        store.ensure_people(1);
        store.set_slot(0, 4, true).unwrap();
        store.set_range(0, SlotRange::new(6, 8), true).unwrap();
        let c = store.calendar(0);
        assert!(c.is_available(4));
        assert!(c.is_available(7));
        assert!(!c.is_available(5));
        store.set_slot(0, 4, false).unwrap();
        assert!(!store.calendar(0).is_available(4));
    }

    #[test]
    fn out_of_range_slots_error() {
        let mut store = CalendarStore::new(5);
        store.ensure_people(1);
        assert!(matches!(
            store.set_slot(0, 5, true),
            Err(ServiceError::SlotOutOfRange { .. })
        ));
        assert!(matches!(
            store.set_range(0, SlotRange::new(3, 7), true),
            Err(ServiceError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn replace_validates_horizon() {
        let mut store = CalendarStore::new(5);
        store.ensure_people(1);
        assert!(store.replace(0, Calendar::all_available(5)).is_ok());
        assert_eq!(store.calendar(0).count_available(), 5);
        assert!(store.replace(0, Calendar::all_available(6)).is_err());
    }

    #[test]
    fn ensure_people_bumps_the_version_when_it_grows() {
        let mut store = CalendarStore::new(5);
        let v0 = store.version();
        store.ensure_people(3);
        assert!(store.version() > v0, "a longer slice is a new epoch");
        let v1 = store.version();
        store.ensure_people(3);
        assert_eq!(store.version(), v1, "a no-op grow is not a mutation");
    }

    #[test]
    fn shard_stamps_move_only_for_the_edited_person() {
        let mut store = CalendarStore::new(8);
        store.set_shard_count(4);
        store.ensure_people(8);
        let base = store.version();
        let stamps: Vec<u64> = (0..4).map(|s| store.shard_version(s)).collect();
        store.set_slot(6, 2, true).unwrap(); // shard 2
        assert_eq!(store.shard_version(2), base + 1);
        for s in [0, 1, 3] {
            assert_eq!(store.shard_version(s), stamps[s], "shard {s} untouched");
        }
        store.force_version(77);
        for s in 0..4 {
            assert_eq!(store.shard_version(s), 77);
        }
    }

    #[test]
    fn shard_slices_partition_the_store_by_residue() {
        let mut store = CalendarStore::new(6);
        store.ensure_people(7);
        for p in 0..7 {
            store.set_slot(p, p % 6, true).unwrap();
        }
        for shards in [1usize, 3] {
            for s in 0..shards {
                let slice = store.shard_slice(s, shards);
                for (r, cal) in slice.iter().enumerate() {
                    assert_eq!(cal, store.calendar(s + r * shards), "shard {s}/{shards}");
                }
            }
        }
    }

    #[test]
    fn versions_track_mutations() {
        let mut store = CalendarStore::new(5);
        store.ensure_people(1);
        let v0 = store.version();
        store.set_slot(0, 1, true).unwrap();
        assert!(store.version() > v0);
        let v1 = store.version();
        let _ = store.calendar(0);
        assert_eq!(store.version(), v1);
    }
}
