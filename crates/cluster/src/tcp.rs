//! Real socket transport: the cluster protocol over TCP.
//!
//! The wire format is the **same JSON encoding** [`WireCodec::Json`]
//! exercises in-process — [`NodeMsg`]/[`NodeReply`] through the
//! workspace serde shim — framed with a 4-byte big-endian length prefix.
//! Because both transports speak identical frames, every serving test
//! that passes in-process passes over loopback TCP unchanged; the socket
//! transport changes *where* bytes go, not *what* they say.
//!
//! Two halves:
//!
//! * [`TcpNodeServer`] — wraps one [`ClusterNode`] behind a listener:
//!   one accept loop, one thread per connection, each connection a
//!   sequential request/reply stream (the client pools connections for
//!   parallelism instead of multiplexing one).
//! * [`TcpTransport`] — the client side: implements [`Transport`] over a
//!   per-peer connection pool with connect/read/write timeouts. Socket
//!   failures surface as [`TransportError::Io`] — transient, so the
//!   retry layer treats a refused connect like a dropped frame.
//!
//! [`WireCodec::Json`]: crate::WireCodec::Json

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::message::{NodeMsg, NodeReply};
use crate::node::ClusterNode;
use crate::transport::{Transport, TransportError};

/// Refuse frames larger than this (a corrupt length prefix must fail
/// loudly, not allocate gigabytes).
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Socket timeouts for the client side of the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpTimeouts {
    /// Ceiling on establishing a connection to a peer.
    pub connect: Duration,
    /// Ceiling on waiting for a reply frame.
    pub read: Duration,
    /// Ceiling on pushing a request frame out.
    pub write: Duration,
}

impl Default for TcpTimeouts {
    fn default() -> Self {
        TcpTimeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(30),
            write: Duration::from_secs(5),
        }
    }
}

// ---- framing ---------------------------------------------------------

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "frame exceeds u32 length")
    })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

// ---- server ----------------------------------------------------------

/// One cluster node served over a loopback/LAN TCP listener.
///
/// Dropping the server stops the accept loop; connection threads exit
/// when their peers disconnect (the pool is dropped client-side).
pub struct TcpNodeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Clones of every accepted stream, so dropping the server can sever
    /// live connections (fail-stop semantics: a crashed server's clients
    /// must observe errors, not a half-open socket).
    conns: Arc<Mutex<Vec<TcpStream>>>,
    node: Arc<ClusterNode>,
}

impl TcpNodeServer {
    /// Serve `node` on an OS-assigned loopback port.
    pub fn spawn(node: Arc<ClusterNode>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let node = Arc::clone(&node);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().push(clone);
                    }
                    let node = Arc::clone(&node);
                    std::thread::spawn(move || serve_connection(stream, &node));
                }
            })
        };
        Ok(TcpNodeServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            node,
        })
    }

    /// The address clients dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node behind this listener.
    pub fn node(&self) -> &Arc<ClusterNode> {
        &self.node
    }
}

impl Drop for TcpNodeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Sever live connections so clients observe the crash.
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One connection: a sequential stream of length-prefixed request
/// frames, each answered with one reply frame. Exits on EOF or any
/// socket/codec error (the client reconnects).
fn serve_connection(mut stream: TcpStream, node: &ClusterNode) {
    let _ = stream.set_nodelay(true);
    loop {
        let Ok(payload) = read_frame(&mut stream) else {
            return;
        };
        let reply = match std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| serde_json::from_str::<NodeMsg>(text).ok())
        {
            Some(msg) => node.handle(msg),
            None => NodeReply::Failed {
                reason: "undecodable request frame".to_string(),
            },
        };
        let Ok(encoded) = serde_json::to_string(&reply) else {
            return;
        };
        if write_frame(&mut stream, encoded.as_bytes()).is_err() {
            return;
        }
    }
}

// ---- client ----------------------------------------------------------

/// The client half: [`Transport`] over per-peer pooled TCP connections.
///
/// Each send checks a connection out of the peer's pool (dialing a fresh
/// one when empty), performs one request/reply exchange, and returns the
/// connection on success. A failed exchange *discards* the connection —
/// and, if the failure happened on a **pooled** (possibly idle-stale)
/// connection before any reply bytes arrived, retries once on a fresh
/// dial so a server restart does not fail the first send after it.
pub struct TcpTransport {
    peers: Vec<SocketAddr>,
    pools: Vec<Mutex<Vec<TcpStream>>>,
    timeouts: TcpTimeouts,
}

impl TcpTransport {
    /// A transport dialing `peers` (node index = position) with default
    /// timeouts.
    pub fn new(peers: Vec<SocketAddr>) -> Self {
        TcpTransport::with_timeouts(peers, TcpTimeouts::default())
    }

    /// Same, with explicit socket timeouts.
    pub fn with_timeouts(peers: Vec<SocketAddr>, timeouts: TcpTimeouts) -> Self {
        let pools = peers.iter().map(|_| Mutex::new(Vec::new())).collect();
        TcpTransport {
            peers,
            pools,
            timeouts,
        }
    }

    fn dial(&self, addr: &SocketAddr) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(addr, self.timeouts.connect)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeouts.read))?;
        stream.set_write_timeout(Some(self.timeouts.write))?;
        Ok(stream)
    }

    fn exchange(stream: &mut TcpStream, request: &[u8]) -> std::io::Result<Vec<u8>> {
        write_frame(stream, request)?;
        read_frame(stream)
    }
}

impl Transport for TcpTransport {
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError> {
        let addr = self
            .peers
            .get(node)
            .ok_or(TransportError::UnknownNode { node })?;
        let request =
            serde_json::to_string(&msg).map_err(|e| TransportError::Codec(e.to_string()))?;

        let pooled = self.pools[node].lock().pop();
        let from_pool = pooled.is_some();
        let mut stream = match pooled {
            Some(s) => s,
            None => self
                .dial(addr)
                .map_err(|e| TransportError::Io(format!("connect {addr}: {e}")))?,
        };

        let reply_bytes = match Self::exchange(&mut stream, request.as_bytes()) {
            Ok(bytes) => bytes,
            Err(_) if from_pool => {
                // The idle pooled connection may have been closed under
                // us; one fresh dial before declaring the peer down.
                drop(stream);
                let mut fresh = self
                    .dial(addr)
                    .map_err(|e| TransportError::Io(format!("connect {addr}: {e}")))?;
                let bytes = Self::exchange(&mut fresh, request.as_bytes())
                    .map_err(|e| TransportError::Io(format!("exchange with {addr}: {e}")))?;
                stream = fresh;
                bytes
            }
            Err(e) => {
                return Err(TransportError::Io(format!("exchange with {addr}: {e}")));
            }
        };

        let text = std::str::from_utf8(&reply_bytes)
            .map_err(|e| TransportError::Codec(format!("reply not utf-8: {e}")))?;
        let reply: NodeReply =
            serde_json::from_str(text).map_err(|e| TransportError::Codec(e.to_string()))?;
        self.pools[node].lock().push(stream);
        Ok(reply)
    }

    fn node_count(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_exec::ExecConfig;

    fn exec_cfg() -> ExecConfig {
        ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn status_roundtrips_over_loopback() {
        let server = TcpNodeServer::spawn(Arc::new(ClusterNode::new(0, exec_cfg()))).unwrap();
        let transport = TcpTransport::new(vec![server.addr()]);
        let reply = transport.send(0, NodeMsg::Status).unwrap();
        let NodeReply::Status(status) = reply else {
            panic!("expected status reply, got {reply:?}");
        };
        assert!(!status.attached);

        // Second send reuses the pooled connection.
        assert!(transport.send(0, NodeMsg::Status).is_ok());
        assert_eq!(transport.pools[0].lock().len(), 1);
    }

    #[test]
    fn dead_peer_is_an_io_error() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let transport = TcpTransport::with_timeouts(
            vec![addr],
            TcpTimeouts {
                connect: Duration::from_millis(300),
                ..TcpTimeouts::default()
            },
        );
        match transport.send(0, NodeMsg::Status) {
            Err(TransportError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn pooled_connection_survives_server_restart_via_fresh_dial() {
        let node = Arc::new(ClusterNode::new(0, exec_cfg()));
        let server = TcpNodeServer::spawn(Arc::clone(&node)).unwrap();
        let addr = server.addr();
        let transport = TcpTransport::new(vec![addr]);
        assert!(transport.send(0, NodeMsg::Status).is_ok());

        // Kill the server; the pooled connection is now dead.
        drop(server);
        assert!(matches!(
            transport.send(0, NodeMsg::Status),
            Err(TransportError::Io(_))
        ));
    }
}
