//! The pluggable node-to-node transport.
//!
//! Two implementations ship:
//!
//! * [`InProcessTransport`] — every node lives in this process and a send
//!   is a direct dispatch, which makes the whole cluster deterministic
//!   and testable in one process. Its [`WireCodec::Json`] mode
//!   round-trips every message and reply through their JSON wire form
//!   before delivery, so anything that cannot cross a real wire fails
//!   loudly in unit tests.
//! * [`TcpTransport`](crate::TcpTransport) — the real thing: the same
//!   JSON frames over length-prefixed loopback/LAN TCP with per-peer
//!   connection pooling and timeouts (see the `tcp` module).
//!
//! [`FaultInjector`] wraps any transport and injects failures —
//! message drops (targeted, per-class, or probabilistic), added latency,
//! one-way partitions (request delivered, reply lost), and whole-node
//! crashes — all behind **per-node deterministic RNG streams** so a
//! seeded chaos run replays bit-identically regardless of scatter-thread
//! interleaving.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::message::{NodeMsg, NodeReply};
use crate::node::ClusterNode;

/// Why a send did not produce a reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No node is registered at this index.
    UnknownNode {
        /// The offending index.
        node: usize,
    },
    /// The message was dropped in flight (fault injection; a real
    /// transport surfaces timeouts the same way).
    Dropped,
    /// The message or reply failed to encode/decode on the wire.
    Codec(String),
    /// A socket-level failure: connect refused, read/write timeout,
    /// connection reset. Transient for retry purposes.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownNode { node } => write!(f, "no node registered at {node}"),
            TransportError::Dropped => write!(f, "message dropped in flight"),
            TransportError::Codec(why) => write!(f, "wire codec failure: {why}"),
            TransportError::Io(why) => write!(f, "transport i/o failure: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Node-to-node messaging: send one [`NodeMsg`] to the node at `node`
/// and wait for its [`NodeReply`] (RPC-shaped, like the network
/// transport it stands in for).
pub trait Transport: Send + Sync {
    /// Deliver `msg` to node `node` and return its reply.
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError>;

    /// How many node slots this transport can address.
    fn node_count(&self) -> usize;
}

/// How the in-process transport moves messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireCodec {
    /// Direct dispatch: the message value is handed to the node as-is.
    #[default]
    Direct,
    /// Serialize → JSON text → deserialize on both the message and the
    /// reply, proving every exchanged value is wire-encodable.
    Json,
}

/// The in-process transport: all nodes live in this process; a send is
/// a (possibly codec-round-tripped) direct call into the node.
pub struct InProcessTransport {
    nodes: Vec<Arc<ClusterNode>>,
    codec: WireCodec,
}

impl InProcessTransport {
    /// A transport over `nodes` with direct dispatch.
    pub fn new(nodes: Vec<Arc<ClusterNode>>) -> Self {
        InProcessTransport {
            nodes,
            codec: WireCodec::Direct,
        }
    }

    /// The same transport with an explicit codec.
    pub fn with_codec(nodes: Vec<Arc<ClusterNode>>, codec: WireCodec) -> Self {
        InProcessTransport { nodes, codec }
    }
}

impl Transport for InProcessTransport {
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError> {
        let target = self
            .nodes
            .get(node)
            .ok_or(TransportError::UnknownNode { node })?;
        match self.codec {
            WireCodec::Direct => Ok(target.handle(msg)),
            WireCodec::Json => {
                let encoded = serde_json::to_string(&msg)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                let decoded: NodeMsg = serde_json::from_str(&encoded)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                let reply = target.handle(decoded);
                let encoded = serde_json::to_string(&reply)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                serde_json::from_str(&encoded).map_err(|e| TransportError::Codec(e.to_string()))
            }
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Per-node fault switches (all default off).
#[derive(Clone, Debug, Default)]
struct NodeFaults {
    /// Drop replication messages only (data/status still flow).
    drop_replication: bool,
    /// Drop every message toward the node (two-way partition, writer
    /// side).
    partition_to: bool,
    /// Deliver the message, drop the **reply** (one-way partition: the
    /// node applies the payload but the sender sees a loss — the
    /// accounted-but-lost case the `Stale` repair path exists for).
    partition_from: bool,
    /// The node has crashed: every message fails (pair with
    /// [`ClusterNode::reset`] to model the lost memory).
    crashed: bool,
    /// Probability in `[0, 1]` of dropping any given message (drawn from
    /// this node's deterministic RNG stream).
    drop_probability: f64,
    /// Added latency before delivery.
    delay: Duration,
    /// SplitMix64 state for this node's probabilistic decisions. Per-node
    /// streams keep seeded runs deterministic even though the router
    /// scatters from one thread per node: each node's decision sequence
    /// depends only on the order of messages *to that node*.
    rng: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counters of what the injector actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages swallowed (all causes: targeted, probabilistic, crash,
    /// partition — replies dropped by one-way partitions included).
    pub dropped: u64,
    /// Messages delivered late.
    pub delayed: u64,
}

/// A decorator injecting transport faults in front of any inner
/// transport — deterministic chaos for the self-healing tests.
///
/// All switches are per-node and can be flipped mid-run. Probabilistic
/// drops draw from per-node SplitMix64 streams derived from one seed, so
/// a chaos test that replays the same seed and the same message order
/// per node makes identical drop decisions.
pub struct FaultInjector {
    inner: Arc<dyn Transport>,
    faults: Mutex<Vec<NodeFaults>>,
    counters: Mutex<FaultCounters>,
}

impl FaultInjector {
    /// Wrap `inner` with no faults active (seed 0).
    pub fn new(inner: Arc<dyn Transport>) -> Self {
        FaultInjector::with_seed(inner, 0)
    }

    /// Wrap `inner` with per-node RNG streams derived from `seed`.
    pub fn with_seed(inner: Arc<dyn Transport>, seed: u64) -> Self {
        let faults = (0..inner.node_count())
            .map(|node| NodeFaults {
                // Distinct, seed-determined stream per node.
                rng: seed ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                ..NodeFaults::default()
            })
            .collect();
        FaultInjector {
            inner,
            faults: Mutex::new(faults),
            counters: Mutex::new(FaultCounters::default()),
        }
    }

    fn with_node<R>(&self, node: usize, f: impl FnOnce(&mut NodeFaults) -> R) -> Option<R> {
        self.faults.lock().get_mut(node).map(f)
    }

    /// Start (or stop) dropping **replication** messages to `node`
    /// (data-plane and status messages still flow, so a lagging node
    /// stays observable).
    pub fn set_drop_replication(&self, node: usize, drop: bool) {
        self.with_node(node, |f| f.drop_replication = drop);
    }

    /// Partition the path **toward** `node`: every message to it is
    /// dropped before delivery.
    pub fn set_partition_to(&self, node: usize, on: bool) {
        self.with_node(node, |f| f.partition_to = on);
    }

    /// One-way partition **from** `node`: messages are delivered (the
    /// node applies them) but the replies are lost — the sender observes
    /// a drop. This is the accounting-hazard case: a replica can be ahead
    /// of what the writer believes it acked.
    pub fn set_partition_from(&self, node: usize, on: bool) {
        self.with_node(node, |f| f.partition_from = on);
    }

    /// Crash `node`: every message to it fails until
    /// [`restart`](Self::restart). The injector only severs the wires —
    /// pair with [`ClusterNode::reset`] so the "rebooted" node has also
    /// lost its in-memory world, as a real crash would.
    pub fn crash(&self, node: usize) {
        self.with_node(node, |f| f.crashed = true);
    }

    /// Bring a crashed `node`'s network back. Its state is whatever the
    /// caller left it (reset for a real crash, intact for a zombie).
    pub fn restart(&self, node: usize) {
        self.with_node(node, |f| f.crashed = false);
    }

    /// Drop any message to `node` with probability `p`, drawn from the
    /// node's deterministic stream.
    pub fn set_drop_probability(&self, node: usize, p: f64) {
        self.with_node(node, |f| f.drop_probability = p.clamp(0.0, 1.0));
    }

    /// Delay every message to `node` by `delay` before delivery.
    pub fn set_delay(&self, node: usize, delay: Duration) {
        self.with_node(node, |f| f.delay = delay);
    }

    /// Clear every fault on every node.
    pub fn heal_all(&self) {
        let mut faults = self.faults.lock();
        for f in faults.iter_mut() {
            let rng = f.rng;
            *f = NodeFaults {
                rng,
                ..NodeFaults::default()
            };
        }
    }

    /// Messages swallowed so far (all causes).
    pub fn dropped(&self) -> u64 {
        self.counters.lock().dropped
    }

    /// What the injector has done so far.
    pub fn counters(&self) -> FaultCounters {
        *self.counters.lock()
    }

    fn note_drop(&self) {
        self.counters.lock().dropped += 1;
    }
}

impl Transport for FaultInjector {
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError> {
        // One locked pass decides this message's fate; the actual sleep
        // and delivery happen outside the lock so injected latency on one
        // node never stalls traffic to another.
        let (delay, swallow, drop_reply) = {
            let mut faults = self.faults.lock();
            let Some(f) = faults.get_mut(node) else {
                return self.inner.send(node, msg);
            };
            let targeted = f.crashed
                || f.partition_to
                || (f.drop_replication && matches!(msg, NodeMsg::Replicate(_)));
            let random = f.drop_probability > 0.0 && {
                let draw = (splitmix(&mut f.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                draw < f.drop_probability
            };
            (f.delay, targeted || random, f.partition_from)
        };
        if !delay.is_zero() {
            self.counters.lock().delayed += 1;
            std::thread::sleep(delay);
        }
        if swallow {
            self.note_drop();
            return Err(TransportError::Dropped);
        }
        let reply = self.inner.send(node, msg);
        if drop_reply && reply.is_ok() {
            self.note_drop();
            return Err(TransportError::Dropped);
        }
        reply
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport that answers every send with a status reply.
    struct Echo(usize);
    impl Transport for Echo {
        fn send(&self, _node: usize, _msg: NodeMsg) -> Result<NodeReply, TransportError> {
            Ok(NodeReply::Status(crate::message::NodeStatus::default()))
        }
        fn node_count(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn probabilistic_drops_replay_bit_identically_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::with_seed(Arc::new(Echo(2)), seed);
            inj.set_drop_probability(1, 0.5);
            (0..64)
                .map(|_| inj.send(1, NodeMsg::Status).is_err())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same fate sequence");
        assert_ne!(run(7), run(8), "different seed, different sequence");
        let drops = run(7).iter().filter(|&&d| d).count();
        assert!((10..=54).contains(&drops), "p=0.5 drops roughly half");
    }

    #[test]
    fn node_streams_are_independent() {
        let inj = FaultInjector::with_seed(Arc::new(Echo(3)), 42);
        inj.set_drop_probability(2, 0.5);
        // Traffic to node 0 must not perturb node 2's decision stream.
        let fates: Vec<bool> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    let _ = inj.send(0, NodeMsg::Status);
                }
                inj.send(2, NodeMsg::Status).is_err()
            })
            .collect();
        let inj2 = FaultInjector::with_seed(Arc::new(Echo(3)), 42);
        inj2.set_drop_probability(2, 0.5);
        let fates2: Vec<bool> = (0..16)
            .map(|_| inj2.send(2, NodeMsg::Status).is_err())
            .collect();
        assert_eq!(fates, fates2);
    }

    #[test]
    fn crash_partitions_and_restart() {
        let inj = FaultInjector::new(Arc::new(Echo(2)));
        assert!(inj.send(1, NodeMsg::Status).is_ok());
        inj.crash(1);
        assert_eq!(inj.send(1, NodeMsg::Status), Err(TransportError::Dropped));
        inj.restart(1);
        assert!(inj.send(1, NodeMsg::Status).is_ok());

        inj.set_partition_from(1, true);
        assert_eq!(
            inj.send(1, NodeMsg::Status),
            Err(TransportError::Dropped),
            "one-way partition: delivered but reply lost"
        );
        inj.heal_all();
        assert!(inj.send(1, NodeMsg::Status).is_ok());
        assert!(inj.counters().dropped >= 2);
    }
}
