//! The pluggable node-to-node transport.
//!
//! The offline build has no network registry crates, so the shipped
//! implementation is [`InProcessTransport`]: every node lives in this
//! process and a send is a direct dispatch — which makes the whole
//! cluster deterministic and testable in one process. The [`Transport`]
//! trait is the seam a real network transport slots into later; to keep
//! the protocol honest in the meantime, the in-process transport can run
//! with [`WireCodec::Json`], round-tripping every message and reply
//! through their JSON wire form before delivery (anything that cannot
//! cross a real wire fails loudly today).
//!
//! [`FaultInjector`] wraps any transport and drops selected messages —
//! how the tests force replicas to miss deltas (gap → full sync) and
//! lag behind minimum-epoch requests.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::message::{NodeMsg, NodeReply};
use crate::node::ClusterNode;

/// Why a send did not produce a reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No node is registered at this index.
    UnknownNode {
        /// The offending index.
        node: usize,
    },
    /// The message was dropped in flight (fault injection; a real
    /// transport would surface timeouts the same way).
    Dropped,
    /// The message or reply failed to encode/decode on the wire.
    Codec(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownNode { node } => write!(f, "no node registered at {node}"),
            TransportError::Dropped => write!(f, "message dropped in flight"),
            TransportError::Codec(why) => write!(f, "wire codec failure: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Node-to-node messaging: send one [`NodeMsg`] to the node at `node`
/// and wait for its [`NodeReply`] (RPC-shaped, like the network
/// transport it stands in for).
pub trait Transport: Send + Sync {
    /// Deliver `msg` to node `node` and return its reply.
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError>;

    /// How many node slots this transport can address.
    fn node_count(&self) -> usize;
}

/// How the in-process transport moves messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireCodec {
    /// Direct dispatch: the message value is handed to the node as-is.
    #[default]
    Direct,
    /// Serialize → JSON text → deserialize on both the message and the
    /// reply, proving every exchanged value is wire-encodable.
    Json,
}

/// The in-process transport: all nodes live in this process; a send is
/// a (possibly codec-round-tripped) direct call into the node.
pub struct InProcessTransport {
    nodes: Vec<Arc<ClusterNode>>,
    codec: WireCodec,
}

impl InProcessTransport {
    /// A transport over `nodes` with direct dispatch.
    pub fn new(nodes: Vec<Arc<ClusterNode>>) -> Self {
        InProcessTransport {
            nodes,
            codec: WireCodec::Direct,
        }
    }

    /// The same transport with an explicit codec.
    pub fn with_codec(nodes: Vec<Arc<ClusterNode>>, codec: WireCodec) -> Self {
        InProcessTransport { nodes, codec }
    }
}

impl Transport for InProcessTransport {
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError> {
        let target = self
            .nodes
            .get(node)
            .ok_or(TransportError::UnknownNode { node })?;
        match self.codec {
            WireCodec::Direct => Ok(target.handle(msg)),
            WireCodec::Json => {
                let encoded = serde_json::to_string(&msg)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                let decoded: NodeMsg = serde_json::from_str(&encoded)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                let reply = target.handle(decoded);
                let encoded = serde_json::to_string(&reply)
                    .map_err(|e| TransportError::Codec(e.to_string()))?;
                serde_json::from_str(&encoded).map_err(|e| TransportError::Codec(e.to_string()))
            }
        }
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A decorator dropping selected messages before they reach the inner
/// transport — deterministic fault injection for the replication tests.
pub struct FaultInjector {
    inner: Arc<dyn Transport>,
    /// Nodes whose **replication** messages are dropped (data-plane and
    /// status messages still flow, so a lagging node is observable).
    drop_replication_to: Mutex<HashSet<usize>>,
    /// Replication messages swallowed so far.
    dropped: Mutex<u64>,
}

impl FaultInjector {
    /// Wrap `inner` with no faults active.
    pub fn new(inner: Arc<dyn Transport>) -> Self {
        FaultInjector {
            inner,
            drop_replication_to: Mutex::new(HashSet::new()),
            dropped: Mutex::new(0),
        }
    }

    /// Start (or stop) dropping replication messages to `node`.
    pub fn set_drop_replication(&self, node: usize, drop: bool) {
        let mut set = self.drop_replication_to.lock();
        if drop {
            set.insert(node);
        } else {
            set.remove(&node);
        }
    }

    /// Replication messages swallowed so far.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }
}

impl Transport for FaultInjector {
    fn send(&self, node: usize, msg: NodeMsg) -> Result<NodeReply, TransportError> {
        if matches!(msg, NodeMsg::Replicate(_)) && self.drop_replication_to.lock().contains(&node) {
            *self.dropped.lock() += 1;
            return Err(TransportError::Dropped);
        }
        self.inner.send(node, msg)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
}
