//! Writer-side replication: tracking what each node has acknowledged
//! and shipping the right payload (deltas when the log still reaches the
//! node's sequence, full state otherwise).
//!
//! The protocol is pull-free and idempotent per round: on every
//! [`sync_node`](Replicator::sync_node) the writer decides
//!
//! 1. **first attach** (node never acked) → full sync;
//! 2. **caught up** (acked == writer seq) → nothing to send;
//! 3. **in retention** (`deltas_since` reaches back) → delta batch;
//! 4. **gap** (log evicted the node's sequence) → full sync;
//!
//! and updates its record from the node's [`NodeReply::Ack`]. A node
//! that answers [`NodeReply::Stale`] (it missed a batch the writer
//! *thought* was delivered, e.g. dropped in flight after accounting, or
//! the node restarted) is repaired with a full sync in the same round.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stgq_service::Planner;

use crate::message::{Epoch, NodeMsg, NodeReply, ReplicationPayload};
use crate::obs::RpcObs;
use crate::retry::{send_with_retry, MsgClass, RetryPolicy};
use crate::transport::{Transport, TransportError};

/// Why one node's replication round failed (the other nodes proceed).
#[derive(Clone, Debug, PartialEq)]
pub enum SyncError {
    /// The transport refused or dropped the payload; the node keeps its
    /// previous epoch and simply lags until a later round reaches it.
    Transport(TransportError),
    /// The node reported an irrecoverable apply failure.
    Node {
        /// The node's reported cause.
        reason: String,
    },
    /// The node answered outside the replication protocol.
    Protocol,
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Transport(e) => write!(f, "transport: {e}"),
            SyncError::Node { reason } => write!(f, "node failure: {reason}"),
            SyncError::Protocol => write!(f, "unexpected reply to replication"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Writer-side replication state over a fixed set of node slots.
pub struct Replicator {
    /// Per node: the last sequence it acknowledged (`None` = never).
    acked: Vec<Option<u64>>,
    /// Per node: the last epoch it acknowledged.
    epochs: Vec<Epoch>,
    /// Per node: whether the previous round's send failed — the next
    /// successful delta batch to such a node is *catch-up* traffic.
    lagging: Vec<bool>,
    /// Retry schedule for replication sends ([`MsgClass::Replication`]
    /// budget); [`RetryPolicy::none`] restores single-shot sends.
    retry: RetryPolicy,
    /// RPC round-trip histograms — shared with the owning
    /// [`Cluster`](crate::Cluster) so replication and data-plane sends
    /// land in one spectrum.
    rpc: Arc<RpcObs>,
    /// Full syncs shipped (first attaches + gap/stale repairs).
    pub full_syncs: u64,
    /// Incremental delta batches shipped.
    pub delta_batches: u64,
    /// Replication sends that the transport refused or dropped (after
    /// the whole retry budget).
    pub failed_sends: u64,
    /// Individual send retries performed.
    pub retries: u64,
    /// Delta records shipped to nodes recovering from a failed round —
    /// the "how much healing happened incrementally" counter.
    pub catch_up_deltas: u64,
}

impl Replicator {
    /// A replicator for `nodes` slots, all unattached, with single-shot
    /// sends (no retry).
    pub fn new(nodes: usize) -> Self {
        Replicator::with_retry(nodes, RetryPolicy::none())
    }

    /// A replicator whose sends retry per `retry`'s replication budget.
    pub fn with_retry(nodes: usize, retry: RetryPolicy) -> Self {
        Replicator::with_observer(nodes, retry, Arc::new(RpcObs::default()))
    }

    /// A replicator recording its send round-trips into a shared
    /// [`RpcObs`] (the cluster passes its own, so both planes merge).
    pub fn with_observer(nodes: usize, retry: RetryPolicy, rpc: Arc<RpcObs>) -> Self {
        Replicator {
            acked: vec![None; nodes],
            epochs: vec![Epoch::default(); nodes],
            lagging: vec![false; nodes],
            retry,
            rpc,
            full_syncs: 0,
            delta_batches: 0,
            failed_sends: 0,
            retries: 0,
            catch_up_deltas: 0,
        }
    }

    /// The last epoch `node` acknowledged (default zero epoch before its
    /// first ack) — the basis for replica-lag metrics.
    pub fn acked_epoch(&self, node: usize) -> Epoch {
        self.epochs[node]
    }

    /// The last sequence `node` acknowledged (`None` before attach).
    pub fn acked_seq(&self, node: usize) -> Option<u64> {
        self.acked[node]
    }

    /// Forget everything about `node` (it is being removed, or must be
    /// re-attached from scratch).
    pub fn reset_node(&mut self, node: usize) {
        self.acked[node] = None;
        self.epochs[node] = Epoch::default();
        self.lagging[node] = false;
    }

    /// Forget every node's replication state. The writer-failover path:
    /// after a promotion the new writer's delta log starts at the
    /// promoted sequence, so *every* replica (including ones ahead of
    /// the old writer's accounting) must re-attach through a full sync —
    /// which is exactly what an unattached slot gets on its next round.
    pub fn reset_all(&mut self) {
        for node in 0..self.acked.len() {
            self.reset_node(node);
        }
    }

    /// Bring one node up to the writer's current state, choosing deltas
    /// or full sync as the module docs describe. Returns the node's
    /// acknowledged epoch on success. The shipped-payload counters
    /// (`full_syncs`/`delta_batches`) move only on an acknowledged
    /// apply — a dropped send counts as `failed_sends`, nothing else.
    pub fn sync_node(
        &mut self,
        planner: &Planner,
        transport: &dyn Transport,
        node: usize,
    ) -> Result<Epoch, SyncError> {
        let (payload, is_full) = match self.acked[node] {
            None => (ReplicationPayload::Full(planner.world_state()), true),
            Some(have_seq) if have_seq >= planner.delta_seq() => {
                // Caught up: nothing to ship.
                return Ok(self.epochs[node]);
            }
            Some(have_seq) => match planner.deltas_since(have_seq) {
                Some(records) => (
                    ReplicationPayload::Deltas {
                        from_seq: have_seq,
                        records,
                    },
                    false,
                ),
                // Gap: the log no longer reaches the node's sequence.
                None => (ReplicationPayload::Full(planner.world_state()), true),
            },
        };
        let shipped_records = match &payload {
            ReplicationPayload::Deltas { records, .. } => records.len() as u64,
            ReplicationPayload::Full(_) => 0,
        };
        // A delta batch acked by a node whose previous round failed is
        // catch-up traffic (counted on ack, below — not on attempt).
        let catching_up = !is_full && self.lagging[node];
        match self.deliver(transport, node, payload)? {
            NodeReply::Ack { seq, epoch } => {
                if catching_up {
                    self.catch_up_deltas += shipped_records;
                }
                self.lagging[node] = false;
                Ok(self.note_ack(node, seq, epoch, is_full))
            }
            NodeReply::Stale { .. } => {
                // The node and the writer disagree about its history
                // (restart, or an accounted-but-lost batch): repair with
                // a full sync in the same round.
                match self.deliver(
                    transport,
                    node,
                    ReplicationPayload::Full(planner.world_state()),
                )? {
                    NodeReply::Ack { seq, epoch } => {
                        self.lagging[node] = false;
                        Ok(self.note_ack(node, seq, epoch, true))
                    }
                    NodeReply::Failed { reason } => Err(SyncError::Node { reason }),
                    _ => Err(SyncError::Protocol),
                }
            }
            NodeReply::Failed { reason } => Err(SyncError::Node { reason }),
            _ => Err(SyncError::Protocol),
        }
    }

    fn note_ack(&mut self, node: usize, seq: u64, epoch: Epoch, was_full: bool) -> Epoch {
        self.acked[node] = Some(seq);
        self.epochs[node] = epoch;
        if was_full {
            self.full_syncs += 1;
        } else {
            self.delta_batches += 1;
        }
        epoch
    }

    fn deliver(
        &mut self,
        transport: &dyn Transport,
        node: usize,
        payload: ReplicationPayload,
    ) -> Result<NodeReply, SyncError> {
        let retries = AtomicU64::new(0);
        let result = send_with_retry(
            transport,
            node,
            NodeMsg::Replicate(payload),
            &self.retry,
            MsgClass::Replication,
            &retries,
            &self.rpc,
        );
        self.retries += retries.load(Ordering::Relaxed);
        result.map_err(|e| {
            self.failed_sends += 1;
            self.lagging[node] = true;
            SyncError::Transport(e)
        })
    }
}
