//! The shard router: which node answers which initiator shard.
//!
//! The executor already partitions everything by **initiator shard**
//! (`initiator mod shards` — the feasible-graph cache, the batch
//! scheduler's job grouping, the result cache). The router lifts exactly
//! that partition across nodes: a shard map assigns every shard to one
//! node, a scatter groups a batch's entries by assigned node, and the
//! gather reassembles outcomes in submission order. Same-initiator
//! traffic therefore always lands on the same node while that node is in
//! the map — its caches stay hot, exactly as a shard job keeps one cache
//! shard hot inside a single executor.
//!
//! Draining a node reassigns its shards round-robin over the remaining
//! nodes; the drained node finishes nothing in this design because
//! scatter/gather is synchronous per batch — after
//! [`drain`](ShardRouter::drain) returns, no future batch addresses it.

use stgq_graph::NodeId;

/// Maps initiator shards onto cluster node indices.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    /// `assignment[shard]` = node index answering that shard.
    assignment: Vec<usize>,
    /// Per node: whether it currently takes traffic.
    active: Vec<bool>,
}

/// Router construction/mutation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The node index is outside the cluster.
    UnknownNode {
        /// The offending index.
        node: usize,
    },
    /// Draining this node would leave zero active nodes.
    LastNode,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::UnknownNode { node } => write!(f, "unknown cluster node {node}"),
            RouterError::LastNode => write!(f, "cannot drain the last active node"),
        }
    }
}

impl std::error::Error for RouterError {}

impl ShardRouter {
    /// `shards` shards spread round-robin over `nodes` nodes.
    pub fn new(shards: usize, nodes: usize) -> Self {
        let shards = shards.max(1);
        let nodes = nodes.max(1);
        ShardRouter {
            assignment: (0..shards).map(|s| s % nodes).collect(),
            active: vec![true; nodes],
        }
    }

    /// The shard modulus (must equal the per-node executors' shard count
    /// for cache alignment, though correctness never depends on it).
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// Total node slots (active or drained).
    pub fn node_slots(&self) -> usize {
        self.active.len()
    }

    /// Indices of the nodes currently taking traffic.
    pub fn active_nodes(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&n| self.active[n]).collect()
    }

    /// Whether `node` currently takes traffic.
    pub fn is_active(&self, node: usize) -> bool {
        self.active.get(node).copied().unwrap_or(false)
    }

    /// The shard owning `initiator` (the executor's modulus).
    pub fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.assignment.len()
    }

    /// The node answering `initiator`.
    pub fn node_of(&self, initiator: NodeId) -> usize {
        self.assignment[self.shard_of(initiator)]
    }

    /// Stop routing to `node`, reassigning its shards round-robin over
    /// the remaining active nodes.
    pub fn drain(&mut self, node: usize) -> Result<(), RouterError> {
        if node >= self.active.len() {
            return Err(RouterError::UnknownNode { node });
        }
        if !self.active[node] {
            return Ok(());
        }
        self.active[node] = false;
        let survivors = self.active_nodes();
        if survivors.is_empty() {
            self.active[node] = true;
            return Err(RouterError::LastNode);
        }
        let mut next = 0usize;
        for owner in &mut self.assignment {
            if *owner == node {
                *owner = survivors[next % survivors.len()];
                next += 1;
            }
        }
        Ok(())
    }

    /// Return a drained node to service: it takes back every shard it
    /// would own under the round-robin layout over the now-active set.
    pub fn undrain(&mut self, node: usize) -> Result<(), RouterError> {
        if node >= self.active.len() {
            return Err(RouterError::UnknownNode { node });
        }
        if self.active[node] {
            return Ok(());
        }
        self.active[node] = true;
        let survivors = self.active_nodes();
        for (shard, owner) in self.assignment.iter_mut().enumerate() {
            *owner = survivors[shard % survivors.len()];
        }
        Ok(())
    }

    /// Group batch positions by assigned node: returns `(node, positions)`
    /// pairs covering every input position exactly once, positions in
    /// submission order (the per-node executor relies on that for
    /// within-batch collapsing determinism).
    pub fn scatter_plan(&self, initiators: &[NodeId]) -> Vec<(usize, Vec<usize>)> {
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.active.len()];
        for (pos, &initiator) in initiators.iter().enumerate() {
            per_node[self.node_of(initiator)].push(pos);
        }
        per_node
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_shard() {
        let r = ShardRouter::new(8, 3);
        let owners: Vec<usize> = (0..8).map(|s| r.assignment[s]).collect();
        assert_eq!(owners, [0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(r.node_of(NodeId(9)), r.assignment[1]);
    }

    #[test]
    fn drain_reassigns_and_undrain_restores() {
        let mut r = ShardRouter::new(8, 3);
        r.drain(1).unwrap();
        assert!(!r.is_active(1));
        assert!(r.assignment.iter().all(|&n| n != 1), "no shard left on 1");
        assert_eq!(r.active_nodes(), [0, 2]);

        r.drain(0).unwrap();
        assert!(r.assignment.iter().all(|&n| n == 2));
        assert_eq!(r.drain(2), Err(RouterError::LastNode), "someone must serve");

        r.undrain(0).unwrap();
        r.undrain(1).unwrap();
        assert_eq!(r.active_nodes(), [0, 1, 2]);
        assert!(r.assignment.contains(&1));
    }

    #[test]
    fn scatter_plan_partitions_positions_in_order() {
        let r = ShardRouter::new(4, 2);
        let initiators: Vec<NodeId> = [0u32, 1, 2, 3, 4, 5].map(NodeId).to_vec();
        let plan = r.scatter_plan(&initiators);
        let mut seen: Vec<usize> = plan.iter().flat_map(|(_, p)| p.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2, 3, 4, 5], "every position exactly once");
        for (_, positions) in &plan {
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
    }
}
