//! The shard router: which node answers which initiator shard.
//!
//! The executor already partitions everything by **initiator shard**
//! (`initiator mod shards` — the feasible-graph cache, the batch
//! scheduler's job grouping, the result cache). The router lifts exactly
//! that partition across nodes: a shard map assigns every shard to one
//! node, a scatter groups a batch's entries by assigned node, and the
//! gather reassembles outcomes in submission order. Same-initiator
//! traffic therefore always lands on the same node while that node is in
//! the map — its caches stay hot, exactly as a shard job keeps one cache
//! shard hot inside a single executor.
//!
//! # Draining: who calls it, and when
//!
//! Draining a node reassigns its shards round-robin over the remaining
//! nodes; the drained node finishes nothing in this design because
//! scatter/gather is synchronous per batch — after
//! [`drain`](ShardRouter::drain) returns, no future batch addresses it.
//! Two callers exist, and they compose:
//!
//! * the **failure detector** auto-drains a node whose suspicion crossed
//!   the threshold (and auto-undrains it once it answers heartbeats and
//!   re-syncs — see [`HealthConfig`](crate::HealthConfig));
//! * an **operator** drains for maintenance via
//!   [`Cluster::drain_node`](crate::Cluster::drain_node). Operator
//!   drains are never auto-undrained: the detector tracks whose drain it
//!   was, so taking a node out for maintenance is safe even with
//!   self-healing on.
//!
//! State transitions are strict: draining an already-drained node is
//! [`RouterError::AlreadyDrained`] and undraining an active one is
//! [`RouterError::NotDrained`] — a caller that *observed* the wrong
//! state learns about the race instead of silently double-counting, and
//! the auto-drain path uses exactly that signal to yield to a
//! concurrent operator action.
//!
//! Reassignment is deterministic: drain hands the drained node's shards
//! round-robin (in shard order) over the survivors in index order;
//! undrain recomputes the canonical round-robin layout over the
//! now-active set. Interleaved drain/undrain sequences therefore always
//! converge to a layout that depends only on the final active set, never
//! on the order faults arrived in — which keeps chaos runs replayable.

use stgq_graph::NodeId;

/// Maps initiator shards onto cluster node indices.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    /// `assignment[shard]` = node index answering that shard.
    assignment: Vec<usize>,
    /// Per node: whether it currently takes traffic.
    active: Vec<bool>,
}

/// Router construction/mutation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The node index is outside the cluster.
    UnknownNode {
        /// The offending index.
        node: usize,
    },
    /// Draining this node would leave zero active nodes.
    LastNode,
    /// The node is already drained (a concurrent drain won the race).
    AlreadyDrained {
        /// The already-drained node.
        node: usize,
    },
    /// Undrain of a node that is not drained.
    NotDrained {
        /// The still-active node.
        node: usize,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::UnknownNode { node } => write!(f, "unknown cluster node {node}"),
            RouterError::LastNode => write!(f, "cannot drain the last active node"),
            RouterError::AlreadyDrained { node } => {
                write!(f, "node {node} is already drained")
            }
            RouterError::NotDrained { node } => {
                write!(f, "node {node} is active, not drained")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl ShardRouter {
    /// `shards` shards spread round-robin over `nodes` nodes.
    pub fn new(shards: usize, nodes: usize) -> Self {
        let shards = shards.max(1);
        let nodes = nodes.max(1);
        ShardRouter {
            assignment: (0..shards).map(|s| s % nodes).collect(),
            active: vec![true; nodes],
        }
    }

    /// The shard modulus (must equal the per-node executors' shard count
    /// for cache alignment, though correctness never depends on it).
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// Total node slots (active or drained).
    pub fn node_slots(&self) -> usize {
        self.active.len()
    }

    /// Indices of the nodes currently taking traffic.
    pub fn active_nodes(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&n| self.active[n]).collect()
    }

    /// Whether `node` currently takes traffic.
    pub fn is_active(&self, node: usize) -> bool {
        self.active.get(node).copied().unwrap_or(false)
    }

    /// The shard owning `initiator` (the executor's modulus).
    pub fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.assignment.len()
    }

    /// The node answering `initiator`.
    pub fn node_of(&self, initiator: NodeId) -> usize {
        self.assignment[self.shard_of(initiator)]
    }

    /// Stop routing to `node`, reassigning its shards round-robin over
    /// the remaining active nodes. Draining a node that is already
    /// drained is [`RouterError::AlreadyDrained`] — the caller raced a
    /// concurrent drain and must not double-count the action.
    pub fn drain(&mut self, node: usize) -> Result<(), RouterError> {
        if node >= self.active.len() {
            return Err(RouterError::UnknownNode { node });
        }
        if !self.active[node] {
            return Err(RouterError::AlreadyDrained { node });
        }
        self.active[node] = false;
        let survivors = self.active_nodes();
        if survivors.is_empty() {
            self.active[node] = true;
            return Err(RouterError::LastNode);
        }
        let mut next = 0usize;
        for owner in &mut self.assignment {
            if *owner == node {
                *owner = survivors[next % survivors.len()];
                next += 1;
            }
        }
        Ok(())
    }

    /// Return a drained node to service: the whole map recomputes to the
    /// canonical round-robin layout over the now-active set (so the
    /// final layout depends only on *which* nodes are active, not the
    /// fault order). Undraining an active node is
    /// [`RouterError::NotDrained`].
    pub fn undrain(&mut self, node: usize) -> Result<(), RouterError> {
        if node >= self.active.len() {
            return Err(RouterError::UnknownNode { node });
        }
        if self.active[node] {
            return Err(RouterError::NotDrained { node });
        }
        self.active[node] = true;
        let survivors = self.active_nodes();
        for (shard, owner) in self.assignment.iter_mut().enumerate() {
            *owner = survivors[shard % survivors.len()];
        }
        Ok(())
    }

    /// Group batch positions by assigned node: returns `(node, positions)`
    /// pairs covering every input position exactly once, positions in
    /// submission order (the per-node executor relies on that for
    /// within-batch collapsing determinism).
    pub fn scatter_plan(&self, initiators: &[NodeId]) -> Vec<(usize, Vec<usize>)> {
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.active.len()];
        for (pos, &initiator) in initiators.iter().enumerate() {
            per_node[self.node_of(initiator)].push(pos);
        }
        per_node
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_shard() {
        let r = ShardRouter::new(8, 3);
        let owners: Vec<usize> = (0..8).map(|s| r.assignment[s]).collect();
        assert_eq!(owners, [0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(r.node_of(NodeId(9)), r.assignment[1]);
    }

    #[test]
    fn drain_reassigns_and_undrain_restores() {
        let mut r = ShardRouter::new(8, 3);
        r.drain(1).unwrap();
        assert!(!r.is_active(1));
        assert!(r.assignment.iter().all(|&n| n != 1), "no shard left on 1");
        assert_eq!(r.active_nodes(), [0, 2]);

        r.drain(0).unwrap();
        assert!(r.assignment.iter().all(|&n| n == 2));
        assert_eq!(r.drain(2), Err(RouterError::LastNode), "someone must serve");

        r.undrain(0).unwrap();
        r.undrain(1).unwrap();
        assert_eq!(r.active_nodes(), [0, 1, 2]);
        assert!(r.assignment.contains(&1));
    }

    #[test]
    fn invalid_transitions_are_errors() {
        let mut r = ShardRouter::new(8, 3);
        assert_eq!(r.drain(9), Err(RouterError::UnknownNode { node: 9 }));
        assert_eq!(r.undrain(9), Err(RouterError::UnknownNode { node: 9 }));
        assert_eq!(
            r.undrain(1),
            Err(RouterError::NotDrained { node: 1 }),
            "undrain of an active node"
        );
        r.drain(1).unwrap();
        assert_eq!(
            r.drain(1),
            Err(RouterError::AlreadyDrained { node: 1 }),
            "double drain"
        );
        r.undrain(1).unwrap();
    }

    #[test]
    fn interleaved_drain_undrain_reassignment_is_order_pinned() {
        // Drain 1 then 0: node 1's shards round-robin over {0, 2}; then
        // node 0's (original plus inherited) all land on 2.
        let mut r = ShardRouter::new(8, 3);
        r.drain(1).unwrap();
        assert_eq!(r.assignment, [0, 0, 2, 0, 2, 2, 0, 0]);
        r.drain(0).unwrap();
        assert_eq!(r.assignment, [2; 8]);

        // Undrain recomputes the canonical layout over the active set —
        // independent of which order the drains happened in.
        r.undrain(0).unwrap();
        assert_eq!(r.assignment, [0, 2, 0, 2, 0, 2, 0, 2]);
        r.undrain(1).unwrap();
        assert_eq!(r.assignment, [0, 1, 2, 0, 1, 2, 0, 1], "full layout back");

        // The mirrored interleaving converges to the same final layout.
        let mut r2 = ShardRouter::new(8, 3);
        r2.drain(0).unwrap();
        r2.drain(1).unwrap();
        r2.undrain(1).unwrap();
        r2.undrain(0).unwrap();
        assert_eq!(r2.assignment, r.assignment);
        assert_eq!(r2.active_nodes(), r.active_nodes());
    }

    #[test]
    fn scatter_plan_partitions_positions_in_order() {
        let r = ShardRouter::new(4, 2);
        let initiators: Vec<NodeId> = [0u32, 1, 2, 3, 4, 5].map(NodeId).to_vec();
        let plan = r.scatter_plan(&initiators);
        let mut seen: Vec<usize> = plan.iter().flat_map(|(_, p)| p.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2, 3, 4, 5], "every position exactly once");
        for (_, positions) in &plan {
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "order preserved");
        }
    }
}
