//! The cluster protocol: every message and reply that crosses a
//! [`Transport`](crate::Transport), plus their wire encodings.
//!
//! Two planes share one envelope type ([`NodeMsg`]):
//!
//! * **replication** — the writer ships [`ReplicationPayload`]s (ordered
//!   deltas, or a full state for first attach / gap recovery) and nodes
//!   acknowledge with their applied sequence and epoch;
//! * **data** — the router scatters [`WireRequest`] batches and gathers
//!   per-entry outcomes.
//!
//! All of it is JSON-encodable through the workspace serde shim: the
//! in-process transport can run in a codec-exercising mode that
//! round-trips every message through its wire form, so a future network
//! transport changes *where* bytes go, not *what* they say.

use serde::value::{get, Value};
use serde::{DeError, Deserialize, Serialize};
use stgq_exec::{Engine, ExecError, PlanOutcome, QuerySpec};
use stgq_graph::NodeId;
use stgq_obs::{HistogramSnapshot, BUCKETS};
use stgq_service::{DeltaRecord, WorldState};

/// A world version stamp: the `(graph, calendar)` pair identifying one
/// published epoch. Ordered axis-wise — an epoch *covers* a requirement
/// iff it is at least as new on **both** axes (graph and calendar
/// versions advance independently).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Epoch {
    /// The network (graph) version.
    pub graph: u64,
    /// The calendar-store version.
    pub calendar: u64,
}

impl Epoch {
    /// Build from a `(graph_version, calendar_version)` pair.
    pub fn new(graph: u64, calendar: u64) -> Self {
        Epoch { graph, calendar }
    }

    /// Whether this epoch satisfies `min` on both axes.
    pub fn covers(&self, min: Epoch) -> bool {
        self.graph >= min.graph && self.calendar >= min.calendar
    }
}

/// One query as it crosses the transport: the executor request minus the
/// process-local control handles (deadlines and cancellation tokens do
/// not serialize; cluster requests are the deterministic, collapsible
/// kind).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireRequest {
    /// Who is asking.
    pub initiator: NodeId,
    /// What is being asked.
    pub spec: QuerySpec,
    /// Which solver answers it.
    pub engine: Engine,
    /// Read-your-writes floor: the answering node's epoch must cover
    /// this or the request is refused ([`ExecError::EpochTooOld`]).
    pub min_epoch: Option<Epoch>,
}

/// What the writer ships to a replica in one replication round.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicationPayload {
    /// The ordered mutations after the replica's acknowledged sequence.
    /// `from_seq` is the sequence the records splice onto — a replica
    /// whose applied sequence differs replies [`NodeReply::Stale`]
    /// instead of applying out of order.
    Deltas {
        /// The sequence number the first record follows.
        from_seq: u64,
        /// The mutations, oldest first, each with its version stamps.
        records: Vec<DeltaRecord>,
    },
    /// A complete world copy: first attach, or the delta log no longer
    /// reaches back to the replica's sequence (gap).
    Full(WorldState),
}

/// A message to one cluster node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeMsg {
    /// Replication plane: apply this payload and acknowledge.
    Replicate(ReplicationPayload),
    /// Data plane: answer this shard batch against the local epoch.
    Execute(Vec<WireRequest>),
    /// Observability: report sequence, epoch and serving counters. Also
    /// serves as the heartbeat probe — a node that answers *anything* is
    /// alive.
    Status,
    /// Deep observability: report status **plus** the node executor's
    /// latency histograms ([`NodeObs`]) — what
    /// [`Cluster::observability`](crate::Cluster::observability)
    /// scatter/gathers to build the fleet-wide latency spectrum.
    Metrics,
    /// Failover: export the node's full mirrored world ([`WorldState`]),
    /// so a surviving replica can be promoted to writer.
    Export,
}

/// Point-in-time serving counters of one node, as reported by
/// [`NodeMsg::Status`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeStatus {
    /// The last delta sequence applied.
    pub seq: u64,
    /// The epoch of the node's published snapshot.
    pub epoch: Epoch,
    /// Whether the node has completed its first sync.
    pub attached: bool,
    /// Full syncs this node went through (first attach + gap recoveries).
    pub full_syncs: u64,
    /// Incremental delta batches applied.
    pub delta_batches: u64,
    /// Queries answered by the node's executor.
    pub queries: u64,
    /// Result-cache hits at the node.
    pub result_cache_hits: u64,
}

/// One node's deep observability report ([`NodeMsg::Metrics`]): its
/// status plus its executor's named latency histograms
/// ([`stgq_exec::EXEC_HISTOGRAMS`]). Histograms cross the wire as plain
/// bucket arrays, so the cluster can merge them fleet-wide — log₂
/// histograms merge exactly by element-wise addition.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeObs {
    /// The node's serving status (same report as [`NodeMsg::Status`]).
    pub status: NodeStatus,
    /// Named histogram snapshots from the node's executor.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A node's answer to one [`NodeMsg`].
#[derive(Clone, Debug, PartialEq)]
pub enum NodeReply {
    /// Replication applied; the node now stands at this sequence/epoch.
    Ack {
        /// Last applied delta sequence.
        seq: u64,
        /// The epoch now published to the node's executor.
        epoch: Epoch,
    },
    /// The delta payload did not splice onto the node's sequence (the
    /// node missed earlier records, or has never attached): the writer
    /// must fall back to a full sync.
    Stale {
        /// The sequence the node actually stands at.
        have_seq: u64,
    },
    /// Replication failed irrecoverably at the node (corrupt payload).
    Failed {
        /// Human-readable cause.
        reason: String,
    },
    /// Data-plane outcomes, one per [`WireRequest`], in request order.
    Outcomes(Vec<Result<PlanOutcome, ExecError>>),
    /// Status report.
    Status(NodeStatus),
    /// Deep observability report, answering [`NodeMsg::Metrics`].
    Metrics(NodeObs),
    /// The node's full mirrored world, answering [`NodeMsg::Export`].
    State(WorldState),
}

// ---- wire encodings --------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn need<'a>(entries: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
    get(entries, name).ok_or_else(|| DeError::new(format!("missing field `{name}` in {ty}")))
}

fn tagged(v: &Value, ty: &str) -> Result<(String, Vec<(String, Value)>), DeError> {
    let entries = v
        .as_object()
        .ok_or_else(|| DeError::new(format!("expected object for {ty}")))?;
    let [(tag, inner)] = entries else {
        return Err(DeError::new(format!(
            "{ty} object must have exactly one key"
        )));
    };
    let fields = inner
        .as_object()
        .ok_or_else(|| DeError::new(format!("expected object payload for {ty}::{tag}")))?;
    Ok((tag.clone(), fields.to_vec()))
}

impl Serialize for Epoch {
    fn to_value(&self) -> Value {
        obj(vec![
            ("graph", self.graph.to_value()),
            ("calendar", self.calendar.to_value()),
        ])
    }
}

impl Deserialize for Epoch {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for Epoch"))?;
        Ok(Epoch {
            graph: u64::from_value(need(entries, "graph", "Epoch")?)?,
            calendar: u64::from_value(need(entries, "calendar", "Epoch")?)?,
        })
    }
}

impl Serialize for WireRequest {
    fn to_value(&self) -> Value {
        obj(vec![
            ("initiator", self.initiator.0.to_value()),
            ("spec", self.spec.to_value()),
            ("engine", self.engine.to_value()),
            ("min_epoch", self.min_epoch.to_value()),
        ])
    }
}

impl Deserialize for WireRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for WireRequest"))?;
        Ok(WireRequest {
            initiator: NodeId(u32::from_value(need(entries, "initiator", "WireRequest")?)?),
            spec: QuerySpec::from_value(need(entries, "spec", "WireRequest")?)?,
            engine: Engine::from_value(need(entries, "engine", "WireRequest")?)?,
            min_epoch: Option::from_value(need(entries, "min_epoch", "WireRequest")?)?,
        })
    }
}

impl Serialize for ReplicationPayload {
    fn to_value(&self) -> Value {
        match self {
            ReplicationPayload::Deltas { from_seq, records } => obj(vec![(
                "deltas",
                obj(vec![
                    ("from_seq", from_seq.to_value()),
                    ("records", records.to_value()),
                ]),
            )]),
            ReplicationPayload::Full(state) => {
                obj(vec![("full", obj(vec![("state", state.to_value())]))])
            }
        }
    }
}

impl Deserialize for ReplicationPayload {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, fields) = tagged(v, "ReplicationPayload")?;
        match tag.as_str() {
            "deltas" => Ok(ReplicationPayload::Deltas {
                from_seq: u64::from_value(need(&fields, "from_seq", "deltas")?)?,
                records: Vec::from_value(need(&fields, "records", "deltas")?)?,
            }),
            "full" => Ok(ReplicationPayload::Full(WorldState::from_value(need(
                &fields, "state", "full",
            )?)?)),
            other => Err(DeError::new(format!(
                "unknown ReplicationPayload `{other}`"
            ))),
        }
    }
}

impl Serialize for NodeMsg {
    fn to_value(&self) -> Value {
        match self {
            NodeMsg::Replicate(p) => obj(vec![("replicate", obj(vec![("payload", p.to_value())]))]),
            NodeMsg::Execute(reqs) => {
                obj(vec![("execute", obj(vec![("requests", reqs.to_value())]))])
            }
            NodeMsg::Status => Value::Str("status".to_string()),
            NodeMsg::Metrics => Value::Str("metrics".to_string()),
            NodeMsg::Export => Value::Str("export".to_string()),
        }
    }
}

impl Deserialize for NodeMsg {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Value::Str(s) = v {
            return match s.as_str() {
                "status" => Ok(NodeMsg::Status),
                "metrics" => Ok(NodeMsg::Metrics),
                "export" => Ok(NodeMsg::Export),
                other => Err(DeError::new(format!("unknown NodeMsg `{other}`"))),
            };
        }
        let (tag, fields) = tagged(v, "NodeMsg")?;
        match tag.as_str() {
            "replicate" => Ok(NodeMsg::Replicate(ReplicationPayload::from_value(need(
                &fields,
                "payload",
                "replicate",
            )?)?)),
            "execute" => Ok(NodeMsg::Execute(Vec::from_value(need(
                &fields, "requests", "execute",
            )?)?)),
            other => Err(DeError::new(format!("unknown NodeMsg `{other}`"))),
        }
    }
}

impl Serialize for NodeStatus {
    fn to_value(&self) -> Value {
        obj(vec![
            ("seq", self.seq.to_value()),
            ("epoch", self.epoch.to_value()),
            ("attached", self.attached.to_value()),
            ("full_syncs", self.full_syncs.to_value()),
            ("delta_batches", self.delta_batches.to_value()),
            ("queries", self.queries.to_value()),
            ("result_cache_hits", self.result_cache_hits.to_value()),
        ])
    }
}

impl Deserialize for NodeStatus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for NodeStatus"))?;
        Ok(NodeStatus {
            seq: u64::from_value(need(entries, "seq", "NodeStatus")?)?,
            epoch: Epoch::from_value(need(entries, "epoch", "NodeStatus")?)?,
            attached: bool::from_value(need(entries, "attached", "NodeStatus")?)?,
            full_syncs: u64::from_value(need(entries, "full_syncs", "NodeStatus")?)?,
            delta_batches: u64::from_value(need(entries, "delta_batches", "NodeStatus")?)?,
            queries: u64::from_value(need(entries, "queries", "NodeStatus")?)?,
            result_cache_hits: u64::from_value(need(entries, "result_cache_hits", "NodeStatus")?)?,
        })
    }
}

// `HistogramSnapshot` is foreign to both this crate and the serde shim
// (and `stgq-obs` is deliberately dependency-free), so its wire form
// lives here: trailing zero buckets are trimmed on encode and padded
// back on decode — a mostly-empty 64-bucket spectrum costs a few array
// elements, not 64.
fn hist_to_value(name: &str, h: &HistogramSnapshot) -> Value {
    let used = BUCKETS - h.buckets.iter().rev().take_while(|&&b| b == 0).count();
    obj(vec![
        ("name", name.to_value()),
        ("count", h.count.to_value()),
        ("sum_ns", h.sum_ns.to_value()),
        ("buckets", h.buckets[..used].to_vec().to_value()),
    ])
}

fn hist_from_value(v: &Value) -> Result<(String, HistogramSnapshot), DeError> {
    let entries = v
        .as_object()
        .ok_or_else(|| DeError::new("expected object for histogram"))?;
    let raw: Vec<u64> = Vec::from_value(need(entries, "buckets", "histogram")?)?;
    if raw.len() > BUCKETS {
        return Err(DeError::new(format!(
            "histogram has {} buckets, max {BUCKETS}",
            raw.len()
        )));
    }
    let mut buckets = [0u64; BUCKETS];
    buckets[..raw.len()].copy_from_slice(&raw);
    Ok((
        String::from_value(need(entries, "name", "histogram")?)?,
        HistogramSnapshot {
            buckets,
            count: u64::from_value(need(entries, "count", "histogram")?)?,
            sum_ns: u64::from_value(need(entries, "sum_ns", "histogram")?)?,
        },
    ))
}

impl Serialize for NodeObs {
    fn to_value(&self) -> Value {
        obj(vec![
            ("status", self.status.to_value()),
            (
                "histograms",
                Value::Array(
                    self.histograms
                        .iter()
                        .map(|(name, h)| hist_to_value(name, h))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for NodeObs {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for NodeObs"))?;
        let items = need(entries, "histograms", "NodeObs")?
            .as_array()
            .ok_or_else(|| DeError::new("expected array for NodeObs histograms"))?;
        Ok(NodeObs {
            status: NodeStatus::from_value(need(entries, "status", "NodeObs")?)?,
            histograms: items
                .iter()
                .map(hist_from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl Serialize for NodeReply {
    fn to_value(&self) -> Value {
        match self {
            NodeReply::Ack { seq, epoch } => obj(vec![(
                "ack",
                obj(vec![("seq", seq.to_value()), ("epoch", epoch.to_value())]),
            )]),
            NodeReply::Stale { have_seq } => obj(vec![(
                "stale",
                obj(vec![("have_seq", have_seq.to_value())]),
            )]),
            NodeReply::Failed { reason } => {
                obj(vec![("failed", obj(vec![("reason", reason.to_value())]))])
            }
            NodeReply::Outcomes(outcomes) => {
                // Result<_, _> has no blanket impl in the shim: encode as
                // {"ok": ...} / {"err": ...} objects.
                let items: Vec<Value> = outcomes
                    .iter()
                    .map(|r| match r {
                        Ok(o) => obj(vec![("ok", o.to_value())]),
                        Err(e) => obj(vec![("err", e.to_value())]),
                    })
                    .collect();
                obj(vec![(
                    "outcomes",
                    obj(vec![("items", Value::Array(items))]),
                )])
            }
            NodeReply::Status(status) => {
                obj(vec![("status", obj(vec![("report", status.to_value())]))])
            }
            NodeReply::Metrics(node_obs) => obj(vec![(
                "metrics",
                obj(vec![("report", node_obs.to_value())]),
            )]),
            NodeReply::State(state) => obj(vec![("state", obj(vec![("world", state.to_value())]))]),
        }
    }
}

impl Deserialize for NodeReply {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (tag, fields) = tagged(v, "NodeReply")?;
        match tag.as_str() {
            "ack" => Ok(NodeReply::Ack {
                seq: u64::from_value(need(&fields, "seq", "ack")?)?,
                epoch: Epoch::from_value(need(&fields, "epoch", "ack")?)?,
            }),
            "stale" => Ok(NodeReply::Stale {
                have_seq: u64::from_value(need(&fields, "have_seq", "stale")?)?,
            }),
            "failed" => Ok(NodeReply::Failed {
                reason: String::from_value(need(&fields, "reason", "failed")?)?,
            }),
            "outcomes" => {
                let items = need(&fields, "items", "outcomes")?
                    .as_array()
                    .ok_or_else(|| DeError::new("expected array for outcomes"))?;
                let mut outcomes = Vec::with_capacity(items.len());
                for item in items {
                    let (kind, inner) = {
                        let entries = item
                            .as_object()
                            .ok_or_else(|| DeError::new("expected ok/err object"))?;
                        let [(k, v)] = entries else {
                            return Err(DeError::new("outcome entry must have one key"));
                        };
                        (k.clone(), v.clone())
                    };
                    outcomes.push(match kind.as_str() {
                        "ok" => Ok(PlanOutcome::from_value(&inner)?),
                        "err" => Err(ExecError::from_value(&inner)?),
                        other => {
                            return Err(DeError::new(format!("unknown outcome kind `{other}`")))
                        }
                    });
                }
                Ok(NodeReply::Outcomes(outcomes))
            }
            "status" => Ok(NodeReply::Status(NodeStatus::from_value(need(
                &fields, "report", "status",
            )?)?)),
            "metrics" => Ok(NodeReply::Metrics(NodeObs::from_value(need(
                &fields, "report", "metrics",
            )?)?)),
            "state" => Ok(NodeReply::State(WorldState::from_value(need(
                &fields, "world", "state",
            )?)?)),
            other => Err(DeError::new(format!("unknown NodeReply `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::SgqQuery;

    #[test]
    fn epoch_covering_is_axis_wise() {
        let e = Epoch::new(3, 5);
        assert!(e.covers(Epoch::new(3, 5)));
        assert!(e.covers(Epoch::new(2, 5)));
        assert!(!e.covers(Epoch::new(4, 0)), "graph axis behind");
        assert!(!e.covers(Epoch::new(0, 6)), "calendar axis behind");
    }

    #[test]
    fn protocol_messages_roundtrip_through_json() {
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let msgs = [
            NodeMsg::Status,
            NodeMsg::Metrics,
            NodeMsg::Export,
            NodeMsg::Execute(vec![WireRequest {
                initiator: NodeId(4),
                spec: QuerySpec::Sgq(sgq),
                engine: Engine::Exact,
                min_epoch: Some(Epoch::new(7, 2)),
            }]),
            NodeMsg::Replicate(ReplicationPayload::Deltas {
                from_seq: 9,
                records: Vec::new(),
            }),
        ];
        for msg in msgs {
            let json = serde_json::to_string(&msg).unwrap();
            let back: NodeMsg = serde_json::from_str(&json).unwrap();
            assert_eq!(back, msg);
        }

        let replies = [
            NodeReply::Ack {
                seq: 12,
                epoch: Epoch::new(3, 4),
            },
            NodeReply::Stale { have_seq: 2 },
            NodeReply::Failed {
                reason: "boom".into(),
            },
            NodeReply::Outcomes(vec![Err(ExecError::NoSnapshot)]),
            NodeReply::Status(NodeStatus {
                seq: 1,
                epoch: Epoch::new(1, 1),
                attached: true,
                full_syncs: 1,
                delta_batches: 2,
                queries: 3,
                result_cache_hits: 4,
            }),
            NodeReply::Metrics(NodeObs {
                status: NodeStatus::default(),
                histograms: vec![("end_to_end".to_string(), {
                    let h = stgq_obs::Histogram::new();
                    h.record_ns(1); // bucket 0
                    h.record_ns(u64::MAX); // bucket 63: trimming must keep it
                    h.snapshot()
                })],
            }),
            NodeReply::State(WorldState {
                horizon: 8,
                labels: vec!["ann".into(), "bob".into()],
                active: vec![true, true],
                edges: vec![(0, 1, 1)],
                calendars: Vec::new(),
                graph_version: 5,
                calendar_version: 6,
                seq: 7,
            }),
        ];
        for reply in replies {
            let json = serde_json::to_string(&reply).unwrap();
            let back: NodeReply = serde_json::from_str(&json).unwrap();
            assert_eq!(back, reply);
        }
    }
}
