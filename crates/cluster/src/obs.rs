//! Cluster-side RPC observability: per-message-class round-trip
//! histograms.
//!
//! Every logical send that crosses the transport is timed **around its
//! whole retry loop** — the recorded round-trip includes backoff sleeps
//! and failed attempts, so the histogram answers "what did reaching
//! this node actually cost the caller", not "how fast is one frame".
//! One histogram per [`MsgClass`] (replication, execute,
//! status/observability probes), lock-free and mergeable like every
//! other histogram in the pipeline.

use stgq_obs::{Histogram, HistogramSnapshot};

use crate::retry::MsgClass;

/// The RPC histogram names, in exposition order (matching
/// [`RpcObs::histograms`]).
pub const CLUSTER_RPC_HISTOGRAMS: [&str; 3] = ["rpc_replication", "rpc_execute", "rpc_status"];

/// Per-message-class RPC round-trip histograms (retry backoff
/// included). Owned by the [`Cluster`](crate::Cluster) and shared with
/// its [`Replicator`](crate::Replicator), so both planes record into
/// the same spectrum.
#[derive(Debug, Default)]
pub struct RpcObs {
    /// Writer → replica replication sends.
    pub replication: Histogram,
    /// Router → node scatter/gather sends.
    pub execute: Histogram,
    /// Heartbeat / status / metrics probes.
    pub status: Histogram,
}

impl RpcObs {
    /// The histogram recording `class`'s round-trips.
    pub fn for_class(&self, class: MsgClass) -> &Histogram {
        match class {
            MsgClass::Replication => &self.replication,
            MsgClass::Execute => &self.execute,
            MsgClass::Status => &self.status,
        }
    }

    /// Named snapshots of all three class histograms, in
    /// [`CLUSTER_RPC_HISTOGRAMS`] order.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("rpc_replication", self.replication.snapshot()),
            ("rpc_execute", self.execute.snapshot()),
            ("rpc_status", self.status.snapshot()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn classes_record_into_distinct_histograms() {
        let rpc = RpcObs::default();
        rpc.for_class(MsgClass::Execute)
            .record(Duration::from_micros(5));
        rpc.for_class(MsgClass::Execute)
            .record(Duration::from_micros(9));
        rpc.for_class(MsgClass::Status)
            .record(Duration::from_nanos(100));
        let hists = rpc.histograms();
        assert_eq!(
            hists.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            CLUSTER_RPC_HISTOGRAMS.to_vec()
        );
        assert_eq!(hists[0].1.count, 0, "replication untouched");
        assert_eq!(hists[1].1.count, 2);
        assert_eq!(hists[2].1.count, 1);
    }
}
