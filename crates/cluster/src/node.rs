//! One serving node: a mirrored world plus a full
//! [`Executor`](stgq_exec::Executor).
//!
//! A node never mutates the world on its own — it *replays* the writer's
//! replication payloads into a local mirror (a [`MutableNetwork`] plus
//! [`CalendarStore`], the same types the writer's planner owns) and
//! republishes its executor's immutable [`WorldSnapshot`] under the
//! **writer's** version stamps. Everything the single-process executor
//! does per node — shard-partitioned feasible-graph cache, result cache,
//! worker pool, epoch-swapped snapshots — works unchanged; the cluster
//! layer only decides *which* node answers *which* initiator shard.

use std::sync::Arc;

use parking_lot::Mutex;
use stgq_exec::{ExecConfig, Executor, PlanRequest, WorldSnapshot};
use stgq_service::{CalendarStore, MutableNetwork};

use stgq_graph::NodeId;
use stgq_service::WorldState;

use crate::message::{
    Epoch, NodeMsg, NodeObs, NodeReply, NodeStatus, ReplicationPayload, WireRequest,
};

/// The mirrored mutable world behind one node's executor.
struct ReplicaWorld {
    network: MutableNetwork,
    calendars: CalendarStore,
    /// Last delta sequence applied (0 before first attach).
    seq: u64,
    /// The writer-stamped epoch of the last applied payload.
    epoch: Epoch,
    /// Whether a first sync has completed (until then every delta
    /// payload is refused as [`NodeReply::Stale`]).
    attached: bool,
    full_syncs: u64,
    delta_batches: u64,
}

/// One cluster serving node. See the module docs.
pub struct ClusterNode {
    id: usize,
    exec: Executor,
    world: Mutex<ReplicaWorld>,
}

impl ClusterNode {
    /// A fresh, unattached node. It refuses queries
    /// ([`stgq_exec::ExecError::NoSnapshot`]) until its first full sync.
    pub fn new(id: usize, cfg: ExecConfig) -> Self {
        ClusterNode {
            id,
            exec: Executor::new(cfg),
            world: Mutex::new(ReplicaWorld {
                network: MutableNetwork::new(),
                calendars: CalendarStore::new(0),
                seq: 0,
                epoch: Epoch::default(),
                attached: false,
                full_syncs: 0,
                delta_batches: 0,
            }),
        }
    }

    /// This node's index in the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's executor (metrics, direct inspection).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Dispatch one protocol message. This is the entire server side of
    /// the cluster protocol — a network transport would deserialize into
    /// [`NodeMsg`] and call exactly this.
    pub fn handle(&self, msg: NodeMsg) -> NodeReply {
        match msg {
            NodeMsg::Replicate(payload) => self.apply_replication(payload),
            NodeMsg::Execute(requests) => self.execute(requests),
            NodeMsg::Status => NodeReply::Status(self.status()),
            NodeMsg::Metrics => NodeReply::Metrics(self.observability()),
            NodeMsg::Export => NodeReply::State(self.export_state()),
        }
    }

    /// Capture the node's full mirrored world — the failover donor path:
    /// a promoted writer is [`Planner::restore`](stgq_service::Planner::restore)d
    /// from exactly this state. Field-for-field the same capture the
    /// writer's `world_state()` performs, so a replica that replayed the
    /// full log exports a bit-identical state.
    pub fn export_state(&self) -> WorldState {
        let world = self.world.lock();
        let n = world.network.person_count();
        WorldState {
            horizon: world.calendars.horizon(),
            labels: (0..n)
                .map(|v| {
                    world
                        .network
                        .label(NodeId(v as u32))
                        .expect("ids below person_count are allocated")
                        .to_string()
                })
                .collect(),
            active: (0..n)
                .map(|v| world.network.is_active(NodeId(v as u32)))
                .collect(),
            edges: world.network.edge_list(),
            calendars: world.calendars.calendars().to_vec(),
            graph_version: world.epoch.graph,
            calendar_version: world.epoch.calendar,
            seq: world.seq,
        }
    }

    /// Forget everything: fresh unattached world, no published snapshot.
    /// Models a crash-and-restart — the "rebooted" node refuses queries
    /// (`NoSnapshot`) and deltas (`Stale`) until its next full sync, just
    /// like a freshly provisioned node.
    pub fn reset(&self) {
        let mut world = self.world.lock();
        *world = ReplicaWorld {
            network: MutableNetwork::new(),
            calendars: CalendarStore::new(0),
            seq: 0,
            epoch: Epoch::default(),
            attached: false,
            full_syncs: 0,
            delta_batches: 0,
        };
        self.exec.clear_snapshot();
    }

    /// The node's current status snapshot.
    pub fn status(&self) -> NodeStatus {
        let world = self.world.lock();
        let m = self.exec.metrics();
        NodeStatus {
            seq: world.seq,
            epoch: world.epoch,
            attached: world.attached,
            full_syncs: world.full_syncs,
            delta_batches: world.delta_batches,
            queries: m.queries,
            result_cache_hits: m.result_cache_hits,
        }
    }

    /// The node's deep observability report: status plus its executor's
    /// named latency histograms — what crosses the wire for
    /// [`NodeMsg::Metrics`].
    pub fn observability(&self) -> NodeObs {
        NodeObs {
            status: self.status(),
            histograms: self
                .exec
                .obs()
                .histograms()
                .into_iter()
                .map(|(name, snap)| (name.to_string(), snap))
                .collect(),
        }
    }

    fn apply_replication(&self, payload: ReplicationPayload) -> NodeReply {
        let mut world = self.world.lock();
        match payload {
            ReplicationPayload::Full(state) => {
                let (network, calendars) = match state.restore() {
                    Ok(mirror) => mirror,
                    Err(e) => {
                        return NodeReply::Failed {
                            reason: format!("full sync failed to restore: {e}"),
                        }
                    }
                };
                world.network = network;
                world.calendars = calendars;
                world.seq = state.seq;
                world.epoch = Epoch::new(state.graph_version, state.calendar_version);
                // Re-stamp the mirror under the writer's global version
                // numbering: tracking starts now (no per-shard history
                // survives a full sync), and every stamp floods to the
                // carried version. Subsequent delta replays bump the
                // mirror in lockstep with the writer, so mirror-internal
                // stamps and writer stamps never diverge.
                world.network.set_shard_count(self.exec.shards());
                world.calendars.set_shard_count(self.exec.shards());
                world.network.force_version(state.graph_version);
                world.calendars.force_version(state.calendar_version);
                world.attached = true;
                world.full_syncs += 1;
                self.publish(&world);
                NodeReply::Ack {
                    seq: world.seq,
                    epoch: world.epoch,
                }
            }
            ReplicationPayload::Deltas { from_seq, records } => {
                if !world.attached || from_seq != world.seq {
                    // Out-of-order or never-attached: applying would skip
                    // history. The writer falls back to a full sync.
                    return NodeReply::Stale {
                        have_seq: world.seq,
                    };
                }
                let mut graph_moved = false;
                let mut calendar_moved = false;
                for record in records {
                    debug_assert_eq!(record.seq, world.seq + 1, "log is dense");
                    let ReplicaWorld {
                        network, calendars, ..
                    } = &mut *world;
                    if let Err(e) = record.delta.apply(network, calendars) {
                        // A delta that applied on the writer must apply on
                        // a faithful mirror; failure means the mirror has
                        // diverged — report it and let a full sync repair.
                        return NodeReply::Failed {
                            reason: format!("delta {} failed to apply: {e}", record.seq),
                        };
                    }
                    graph_moved |= record.graph_version != world.epoch.graph;
                    calendar_moved |= record.calendar_version != world.epoch.calendar;
                    world.seq = record.seq;
                    world.epoch = Epoch::new(record.graph_version, record.calendar_version);
                }
                if graph_moved || calendar_moved {
                    world.delta_batches += 1;
                    self.publish(&world);
                }
                NodeReply::Ack {
                    seq: world.seq,
                    epoch: world.epoch,
                }
            }
        }
    }

    /// Rebuild and epoch-swap the executor's snapshot from the mirror,
    /// re-freezing **only the dirty shards**: a delta batch confined to
    /// one community re-derives that community's graph segment and/or
    /// calendar slice and carries every other sub-snapshot over by `Arc`,
    /// exactly like the single-process planner's drift check. Published
    /// under the **writer's** epoch stamps.
    fn publish(&self, world: &ReplicaWorld) {
        debug_assert_eq!(
            world.network.version(),
            world.epoch.graph,
            "mirror replays in lockstep with the writer's stamps"
        );
        debug_assert_eq!(world.calendars.version(), world.epoch.calendar);
        let shards = self.exec.shards();
        let prev = self.exec.snapshot().filter(|s| s.shard_count() == shards);
        let mut segments = Vec::with_capacity(shards);
        let mut graph_stamps = Vec::with_capacity(shards);
        let mut cal_shards = Vec::with_capacity(shards);
        let mut cal_stamps = Vec::with_capacity(shards);
        for s in 0..shards {
            let g = world.network.shard_version(s);
            match &prev {
                Some(p) if p.graph_shard_version(s) == g => {
                    segments.push(Arc::clone(p.graph_segment(s)));
                }
                _ => segments.push(Arc::new(world.network.segment(s, shards))),
            }
            graph_stamps.push(g);
            let c = world.calendars.shard_version(s);
            match &prev {
                Some(p) if p.calendar_shard_version(s) == c => {
                    cal_shards.push(Arc::clone(p.calendar_shard(s)));
                }
                _ => cal_shards.push(Arc::new(world.calendars.shard_slice(s, shards))),
            }
            cal_stamps.push(c);
        }
        self.exec
            .publish_snapshot(Arc::new(WorldSnapshot::from_parts(
                segments,
                graph_stamps,
                cal_shards,
                cal_stamps,
                world.epoch.graph,
                world.epoch.calendar,
            )));
    }

    fn execute(&self, requests: Vec<WireRequest>) -> NodeReply {
        let requests: Vec<PlanRequest> = requests
            .into_iter()
            .map(|r| {
                let mut request = PlanRequest::new(r.initiator, r.spec, r.engine);
                if let Some(min) = r.min_epoch {
                    request = request.with_min_epoch(min.graph, min.calendar);
                }
                request
            })
            .collect();
        NodeReply::Outcomes(self.exec.execute_batch(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::SgqQuery;
    use stgq_exec::{Engine, ExecError, QuerySpec};
    use stgq_graph::NodeId;
    use stgq_service::Planner;

    fn writer() -> Planner {
        let mut p = Planner::new(8);
        let ids: Vec<NodeId> = (0..4).map(|i| p.add_person(format!("p{i}"))).collect();
        p.connect(ids[0], ids[1], 2).unwrap();
        p.connect(ids[0], ids[2], 3).unwrap();
        p.connect(ids[1], ids[2], 1).unwrap();
        for &id in &ids {
            p.set_availability_range(id, stgq_schedule::SlotRange::new(0, 7), true)
                .unwrap();
        }
        p
    }

    fn exec_cfg() -> ExecConfig {
        ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn unattached_node_refuses_queries_and_deltas() {
        let node = ClusterNode::new(0, exec_cfg());
        let sgq = SgqQuery::new(2, 1, 1).unwrap();
        let NodeReply::Outcomes(outcomes) = node.handle(NodeMsg::Execute(vec![WireRequest {
            initiator: NodeId(0),
            spec: QuerySpec::Sgq(sgq),
            engine: Engine::Exact,
            min_epoch: None,
        }])) else {
            panic!("execute must reply with outcomes");
        };
        assert_eq!(outcomes, vec![Err(ExecError::NoSnapshot)]);

        let reply = node.handle(NodeMsg::Replicate(ReplicationPayload::Deltas {
            from_seq: 0,
            records: Vec::new(),
        }));
        assert_eq!(reply, NodeReply::Stale { have_seq: 0 });
    }

    #[test]
    fn full_sync_then_deltas_track_the_writer() {
        let mut p = writer();
        let node = ClusterNode::new(0, exec_cfg());

        // Attach: full sync.
        let reply = node.handle(NodeMsg::Replicate(ReplicationPayload::Full(
            p.world_state(),
        )));
        let NodeReply::Ack { seq, epoch } = reply else {
            panic!("full sync must ack, got {reply:?}");
        };
        assert_eq!(seq, p.delta_seq());
        assert_eq!(
            epoch,
            Epoch::new(p.network().version(), p.calendars().version())
        );
        assert!(node.status().attached);
        assert_eq!(node.status().full_syncs, 1);

        // The node answers queries now.
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let ask = |node: &ClusterNode| -> Option<u64> {
            let NodeReply::Outcomes(mut outcomes) =
                node.handle(NodeMsg::Execute(vec![WireRequest {
                    initiator: NodeId(0),
                    spec: QuerySpec::Sgq(sgq),
                    engine: Engine::Exact,
                    min_epoch: None,
                }]))
            else {
                panic!("execute must reply with outcomes");
            };
            outcomes.remove(0).unwrap().outcome.objective()
        };
        assert_eq!(ask(&node), Some(5));

        // Writer mutates; catch up via deltas only.
        let have = p.delta_seq();
        p.connect(NodeId(0), NodeId(3), 1).unwrap();
        p.connect(NodeId(1), NodeId(3), 1).unwrap();
        let records = p.deltas_since(have).unwrap();
        let reply = node.handle(NodeMsg::Replicate(ReplicationPayload::Deltas {
            from_seq: have,
            records,
        }));
        let NodeReply::Ack { seq, epoch } = reply else {
            panic!("delta batch must ack, got {reply:?}");
        };
        assert_eq!(seq, p.delta_seq());
        assert_eq!(epoch.graph, p.network().version());
        assert_eq!(node.status().delta_batches, 1);
        assert_eq!(node.status().full_syncs, 1, "no extra full sync");
        assert_eq!(ask(&node), Some(3), "new epoch, new answer");

        // Mis-spliced deltas are refused.
        let reply = node.handle(NodeMsg::Replicate(ReplicationPayload::Deltas {
            from_seq: 1,
            records: Vec::new(),
        }));
        assert_eq!(
            reply,
            NodeReply::Stale {
                have_seq: p.delta_seq()
            }
        );
    }
}
