//! Heartbeat-driven failure detection.
//!
//! The cluster probes every node slot with a [`NodeMsg::Status`]
//! heartbeat on each [`Cluster::heartbeat`] round (and feeds data-plane
//! send failures in as extra evidence). The detector is a
//! threshold-style accrual detector: every missed heartbeat raises a
//! per-node **suspicion level** by one, every answered heartbeat clears
//! it, and a node whose level reaches
//! [`suspect_after`](HealthConfig::suspect_after) is **suspected** — the
//! self-healing layer auto-drains it. An exhausted *data-plane* retry
//! budget jumps the level straight to the threshold: a node that cannot
//! answer a query after N retries is stronger evidence than one missed
//! idle probe.
//!
//! Recovery is the same loop in reverse: a suspected node that answers a
//! heartbeat again is re-attached through the normal full-sync
//! replication path and undrained. The detector distinguishes drains *it*
//! performed from operator drains — auto-recovery never undrains a node
//! an operator took out on purpose.
//!
//! [`NodeMsg::Status`]: crate::NodeMsg::Status
//! [`Cluster::heartbeat`]: crate::Cluster::heartbeat

/// Failure-detection and self-healing knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive missed heartbeats before a node is suspected (and, if
    /// `auto_drain`, drained). Data-plane failures after retries count as
    /// reaching this threshold immediately.
    pub suspect_after: u32,
    /// Drain suspected nodes automatically (their shards reassign to the
    /// survivors; the last active node is never auto-drained).
    pub auto_drain: bool,
    /// When a suspected node answers heartbeats again, re-attach it
    /// (full sync) and undrain it automatically.
    pub auto_recover: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 3,
            auto_drain: true,
            auto_recover: true,
        }
    }
}

/// One node's health as the failure detector sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Suspicion {
    /// Answering heartbeats; no evidence against it.
    #[default]
    Healthy,
    /// Missed heartbeats accruing, threshold not reached yet.
    Accruing {
        /// Consecutive misses so far.
        missed: u32,
    },
    /// Threshold reached: the node is presumed failed (and auto-drained
    /// when self-healing is on).
    Suspected,
}

/// Per-node detector state.
#[derive(Clone, Copy, Debug, Default)]
struct NodeHealth {
    /// Consecutive missed heartbeats.
    missed: u32,
    /// Whether the threshold has been crossed.
    suspected: bool,
    /// Whether the *detector* drained this node (operator drains are
    /// never auto-undrained).
    auto_drained: bool,
}

/// Threshold-accrual failure detector over a fixed set of node slots.
pub(crate) struct FailureDetector {
    nodes: Vec<NodeHealth>,
    cfg: HealthConfig,
    /// Heartbeats that went unanswered, totalled over all nodes.
    pub(crate) heartbeats_missed: u64,
    /// Drains this detector performed.
    pub(crate) auto_drains: u64,
    /// Recoveries (re-attach + undrain) this detector performed.
    pub(crate) auto_recoveries: u64,
}

impl FailureDetector {
    pub(crate) fn new(nodes: usize, cfg: HealthConfig) -> Self {
        FailureDetector {
            nodes: vec![NodeHealth::default(); nodes],
            cfg,
            heartbeats_missed: 0,
            auto_drains: 0,
            auto_recoveries: 0,
        }
    }

    pub(crate) fn config(&self) -> HealthConfig {
        self.cfg
    }

    /// Record an answered heartbeat. Returns `true` when the node still
    /// carries an auto-drain claim — i.e. it is a recovery candidate.
    /// (The claim outlives the cleared suspicion, so a recovery whose
    /// re-sync failed is retried on the next answered heartbeat.)
    pub(crate) fn note_alive(&mut self, node: usize) -> bool {
        let h = &mut self.nodes[node];
        h.missed = 0;
        h.suspected = false;
        h.auto_drained
    }

    /// Record a missed heartbeat. Returns `true` when this miss crossed
    /// the suspicion threshold (the node should be drained now).
    pub(crate) fn note_missed(&mut self, node: usize) -> bool {
        self.heartbeats_missed += 1;
        let threshold = self.cfg.suspect_after.max(1);
        let h = &mut self.nodes[node];
        h.missed = h.missed.saturating_add(1);
        if h.missed >= threshold && !h.suspected {
            h.suspected = true;
            return true;
        }
        false
    }

    /// Record a data-plane send that failed after its whole retry
    /// budget: jumps suspicion straight to the threshold. Returns `true`
    /// when the node newly became suspected.
    pub(crate) fn note_data_failure(&mut self, node: usize) -> bool {
        self.heartbeats_missed += 1;
        let h = &mut self.nodes[node];
        h.missed = h.missed.max(self.cfg.suspect_after.max(1));
        if !h.suspected {
            h.suspected = true;
            return true;
        }
        false
    }

    /// Record that the detector drained `node`.
    pub(crate) fn note_auto_drained(&mut self, node: usize) {
        self.nodes[node].auto_drained = true;
        self.auto_drains += 1;
    }

    /// Record that the detector recovered (re-attached + undrained)
    /// `node`.
    pub(crate) fn note_recovered(&mut self, node: usize) {
        self.nodes[node].auto_drained = false;
        self.auto_recoveries += 1;
    }

    /// Forget any auto-drain claim on `node` (an operator took over,
    /// e.g. by explicitly undraining it).
    pub(crate) fn release_claim(&mut self, node: usize) {
        self.nodes[node].auto_drained = false;
    }

    /// The node's current suspicion state.
    pub(crate) fn suspicion(&self, node: usize) -> Suspicion {
        match self.nodes.get(node) {
            None => Suspicion::Healthy,
            Some(h) if h.suspected => Suspicion::Suspected,
            Some(h) if h.missed > 0 => Suspicion::Accruing { missed: h.missed },
            Some(_) => Suspicion::Healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_accrue_to_suspicion_and_success_clears() {
        let mut d = FailureDetector::new(2, HealthConfig::default());
        assert!(!d.note_missed(1));
        assert!(!d.note_missed(1));
        assert_eq!(d.suspicion(1), Suspicion::Accruing { missed: 2 });
        assert!(d.note_missed(1), "third consecutive miss crosses");
        assert_eq!(d.suspicion(1), Suspicion::Suspected);
        assert!(!d.note_missed(1), "already suspected: no re-trigger");
        assert_eq!(d.heartbeats_missed, 4);
        assert_eq!(d.suspicion(0), Suspicion::Healthy, "nodes independent");

        d.note_auto_drained(1);
        assert!(d.note_alive(1), "answered again while auto-drained");
        assert_eq!(d.suspicion(1), Suspicion::Healthy);
    }

    #[test]
    fn data_failures_jump_the_threshold() {
        let mut d = FailureDetector::new(1, HealthConfig::default());
        assert!(d.note_data_failure(0), "one exhausted budget suffices");
        assert_eq!(d.suspicion(0), Suspicion::Suspected);
    }

    #[test]
    fn operator_drains_are_not_recovery_candidates() {
        let mut d = FailureDetector::new(1, HealthConfig::default());
        d.note_missed(0);
        d.note_missed(0);
        d.note_missed(0);
        // Suspected but drained by an operator, not the detector: a later
        // heartbeat answer is not a recovery candidate.
        assert!(!d.note_alive(0));
    }
}
