//! Retry with bounded exponential backoff and deterministic jitter.
//!
//! Every send that crosses the transport is wrapped in a
//! [`RetryPolicy`]: a transient failure (dropped frame, connect refused,
//! read timeout) is retried up to a **per-message-class budget** before
//! the failure is surfaced. The classes differ on purpose:
//!
//! * **replication** gets the largest budget — a lost delta batch costs
//!   a full sync later, so spending a few retries is cheap insurance;
//! * **execute** (scatter/gather) gets a small budget — the caller is
//!   waiting, and the self-healing layer re-dispatches to another node
//!   anyway once the budget is exhausted;
//! * **status** (heartbeats) gets exactly one attempt — a heartbeat *is*
//!   the probe; retrying it would hide the misses the failure detector
//!   exists to count.
//!
//! Backoff is exponential from [`base_delay`](RetryPolicy::base_delay)
//! capped at [`max_delay`](RetryPolicy::max_delay), with deterministic
//! jitter: the jitter factor is a pure function of `(seed, class,
//! attempt)` (SplitMix64), so two runs of a seeded chaos test sleep the
//! same schedule and replay bit-identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::message::{NodeMsg, NodeReply};
use crate::obs::RpcObs;
use crate::transport::{Transport, TransportError};

/// Which plane a message belongs to — each has its own retry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Writer → replica snapshot replication ([`NodeMsg::Replicate`]).
    Replication,
    /// Router → node scatter/gather ([`NodeMsg::Execute`]).
    Execute,
    /// Heartbeat / observability probes ([`NodeMsg::Status`] and
    /// [`NodeMsg::Export`](crate::NodeMsg::Export)).
    Status,
}

/// Bounded exponential backoff with deterministic jitter and per-class
/// attempt budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included) for replication sends.
    pub replication_attempts: u32,
    /// Total attempts for scatter/gather sends.
    pub execute_attempts: u32,
    /// Total attempts for status/heartbeat probes (keep at 1 so missed
    /// heartbeats stay observable).
    pub status_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed — the same seed replays the same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            replication_attempts: 3,
            execute_attempts: 3,
            status_attempts: 1,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never sleeps — restores the
    /// pre-retry behavior for tests that assert on single-send outcomes.
    pub fn none() -> Self {
        RetryPolicy {
            replication_attempts: 1,
            execute_attempts: 1,
            status_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// The attempt budget for `class` (always at least 1).
    pub fn attempts(&self, class: MsgClass) -> u32 {
        let n = match class {
            MsgClass::Replication => self.replication_attempts,
            MsgClass::Execute => self.execute_attempts,
            MsgClass::Status => self.status_attempts,
        };
        n.max(1)
    }

    /// The backoff before retry number `retry` (1-based): exponential
    /// from `base_delay`, capped at `max_delay`, scaled by a
    /// deterministic jitter factor in `[0.5, 1.0]` drawn from
    /// `(seed, class, retry)`.
    pub fn delay(&self, class: MsgClass, retry: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.max_delay);
        // SplitMix64 over (seed, class, retry): a pure function, so a
        // replayed chaos run sleeps the identical schedule.
        let class_tag = match class {
            MsgClass::Replication => 1u64,
            MsgClass::Execute => 2,
            MsgClass::Status => 3,
        };
        let mut z = self
            .seed
            .wrapping_add(class_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((retry as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = 0.5 + (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 0.5;
        exp.mul_f64(jitter)
    }
}

/// Send `msg` to `node`, retrying transport failures within the class
/// budget (each retry bumps `retries` — the cluster-wide robustness
/// counter). Protocol-level replies are never retried: a node that
/// *answered* is alive, whatever it said. The whole call — every
/// attempt plus every backoff sleep — is recorded as one round-trip in
/// `rpc`'s class histogram, success or not.
pub(crate) fn send_with_retry(
    transport: &dyn Transport,
    node: usize,
    msg: NodeMsg,
    policy: &RetryPolicy,
    class: MsgClass,
    retries: &AtomicU64,
    rpc: &RpcObs,
) -> Result<NodeReply, TransportError> {
    let t0 = Instant::now();
    let result = send_once_budgeted(transport, node, msg, policy, class, retries);
    rpc.for_class(class).record(t0.elapsed());
    result
}

fn send_once_budgeted(
    transport: &dyn Transport,
    node: usize,
    msg: NodeMsg,
    policy: &RetryPolicy,
    class: MsgClass,
    retries: &AtomicU64,
) -> Result<NodeReply, TransportError> {
    let budget = policy.attempts(class);
    let mut attempt = 1u32;
    loop {
        if attempt == budget {
            // Final (or only) attempt: consume the message — a
            // single-shot policy never pays a clone.
            return transport.send(node, msg);
        }
        match transport.send(node, msg.clone()) {
            Ok(reply) => return Ok(reply),
            Err(TransportError::UnknownNode { node }) => {
                // Misconfiguration, not a transient fault: no retry.
                return Err(TransportError::UnknownNode { node });
            }
            Err(_) => {
                retries.fetch_add(1, Ordering::Relaxed);
                let delay = policy.delay(class, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_per_class_and_at_least_one() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(MsgClass::Replication), 3);
        assert_eq!(p.attempts(MsgClass::Status), 1, "heartbeats never retry");
        let zeroed = RetryPolicy {
            replication_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zeroed.attempts(MsgClass::Replication), 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(20),
            seed: 7,
            ..RetryPolicy::default()
        };
        let d1 = p.delay(MsgClass::Execute, 1);
        let d2 = p.delay(MsgClass::Execute, 2);
        let d9 = p.delay(MsgClass::Execute, 9);
        assert_eq!(
            d1,
            p.delay(MsgClass::Execute, 1),
            "pure in (seed, class, retry)"
        );
        assert!(d1 >= Duration::from_millis(2) && d1 <= Duration::from_millis(4));
        assert!(d2 >= Duration::from_millis(4) && d2 <= Duration::from_millis(8));
        assert!(d9 <= Duration::from_millis(20), "capped at max_delay");
        assert_ne!(
            p.delay(MsgClass::Execute, 1),
            p.delay(MsgClass::Replication, 1),
            "classes draw distinct jitter streams"
        );
    }

    #[test]
    fn zero_base_delay_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.delay(MsgClass::Replication, 1), Duration::ZERO);
        assert_eq!(p.delay(MsgClass::Replication, 30), Duration::ZERO);
    }
}
