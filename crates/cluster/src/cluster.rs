//! The cluster façade: one writer (a full [`Planner`] owning the
//! mutable world and the delta log) plus N serving nodes behind a
//! [`ShardRouter`], all talking through one [`Transport`].
//!
//! # Failure model and the self-healing loop
//!
//! The cluster assumes **transient transport faults** (dropped frames,
//! refused connects, timeouts — retried within
//! [`ClusterConfig::retry`]'s budgets) and **fail-stop nodes** (crash,
//! partition — detected and routed around). It heals in three tiers,
//! each engaging only when the one below was not enough:
//!
//! 1. **Retry** — every send retries with bounded exponential backoff
//!    and deterministic jitter; a blip costs milliseconds and nothing
//!    else.
//! 2. **Auto-drain + re-dispatch** — a node that misses
//!    [`HealthConfig::suspect_after`] consecutive heartbeats (or
//!    exhausts a data-plane retry budget, which counts as reaching the
//!    threshold at once) is *suspected* and drained: its shards move to
//!    the survivors and any in-flight batch entries it failed are
//!    re-dispatched to the new owners inside the same
//!    [`execute`](Cluster::execute) call — the caller sees answers, not
//!    errors. When the node answers heartbeats again it is re-attached
//!    (full sync) and undrained automatically.
//! 3. **Writer failover** ([`Cluster::fail_over`]) — when the *writer*
//!    is lost, the reachable replica with the highest applied sequence
//!    exports its mirrored world and is promoted. Promotion bumps the
//!    new writer's version stamps past every epoch any replica ever
//!    acknowledged (and past the old writer's last issued floor), so
//!    epochs stay **monotonic fleet-wide**: version-keyed caches never
//!    alias across the promotion, and every read-your-writes floor
//!    handed out before the failover is still coverable after it.
//!
//! ## Detector tuning
//!
//! `suspect_after` trades detection latency against false positives: at
//! the default 3, one lost heartbeat never drains a node, while a real
//! crash is detected within three rounds. Raise it on flaky networks;
//! lower it to 1 only where the transport is reliable (in-process) and
//! failover speed matters most. Heartbeats deliberately do **not**
//! retry (their budget is 1): a retried heartbeat would hide exactly
//! the misses the detector exists to count. Data-plane evidence is
//! stronger — a query send that exhausted its whole retry budget jumps
//! suspicion straight to the threshold.
//!
//! ## Manual-override runbook
//!
//! Self-healing composes with operations rather than replacing them:
//!
//! * **Planned maintenance** — [`drain_node`](Cluster::drain_node),
//!   do the work, [`undrain_node`](Cluster::undrain_node). The detector
//!   never auto-undrains an operator's drain (it tracks whose drain it
//!   was), so a node held down on purpose stays down even if it answers
//!   heartbeats.
//! * **Disable healing** — set [`HealthConfig::auto_drain`] /
//!   [`HealthConfig::auto_recover`] to `false` to run the detector in
//!   observe-only mode: suspicion is tracked and reported in
//!   [`ClusterMetrics`], actions are yours.
//! * **Force re-attach** — drain then undrain a node; the next
//!   replication round full-syncs it if its sequence fell out of the
//!   delta log.
//! * **Promote manually** — [`fail_over`](Cluster::fail_over) picks the
//!   best donor itself; it is safe to call while replicas lag (anything
//!   unacknowledged everywhere is lost by design — it was never
//!   durable).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use stgq_exec::{ExecConfig, ExecError, PlanOutcome};
use stgq_graph::NodeId;
use stgq_schedule::{Calendar, SlotRange};
use stgq_service::{BatchQuery, Planner, ServiceError};

use stgq_obs::prom::PromText;
use stgq_obs::HistogramSnapshot;

use crate::health::{FailureDetector, HealthConfig, Suspicion};
use crate::message::{Epoch, NodeMsg, NodeObs, NodeReply, NodeStatus, WireRequest};
use crate::node::ClusterNode;
use crate::obs::RpcObs;
use crate::replication::{Replicator, SyncError};
use crate::retry::{send_with_retry, MsgClass, RetryPolicy};
use crate::router::{RouterError, ShardRouter};
use crate::transport::{InProcessTransport, Transport, TransportError, WireCodec};

/// Construction-time knobs for a [`Cluster`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Serving nodes.
    pub nodes: usize,
    /// Initiator-shard modulus the router distributes over (kept equal
    /// to the per-node executors' shard count so the routing partition
    /// and the nodes' internal cache partitions align).
    pub shards: usize,
    /// Executor sizing applied to every node.
    pub node_exec: ExecConfig,
    /// Stamp every routed request with the writer's current epoch as its
    /// minimum (read-your-writes: a lagging replica refuses rather than
    /// serves stale). Off, requests accept whatever epoch their node has.
    pub read_your_writes: bool,
    /// How the in-process transport moves messages (JSON proves
    /// wire-encodability in tests).
    pub codec: WireCodec,
    /// Retry/backoff schedule applied to every send (replication and
    /// scatter/gather); [`RetryPolicy::none`] restores single-shot
    /// sends.
    pub retry: RetryPolicy,
    /// Failure-detection and self-healing knobs.
    pub health: HealthConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            shards: 16,
            node_exec: ExecConfig::default(),
            read_your_writes: true,
            codec: WireCodec::Direct,
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
        }
    }
}

/// Why one routed entry failed (entries fail individually; a batch is
/// never poisoned by one node).
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The answering node's executor refused the entry.
    Exec(ExecError),
    /// The transport could not reach the assigned node.
    Transport(TransportError),
    /// The node answered outside the protocol.
    Protocol,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Exec(e) => write!(f, "{e}"),
            ClusterError::Transport(e) => write!(f, "{e}"),
            ClusterError::Protocol => write!(f, "unexpected reply to execute"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Why a writer failover could not complete. Failover never
/// half-applies: on any error the old writer state is untouched.
#[derive(Clone, Debug, PartialEq)]
pub enum FailoverError {
    /// No reachable, attached replica exists to promote.
    NoCandidate,
    /// The chosen donor could not export its world.
    Export(TransportError),
    /// The donor answered outside the protocol.
    Protocol,
    /// The exported world failed to restore into a writer.
    Restore(String),
}

impl std::fmt::Display for FailoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailoverError::NoCandidate => write!(f, "no reachable attached replica to promote"),
            FailoverError::Export(e) => write!(f, "donor export failed: {e}"),
            FailoverError::Protocol => write!(f, "unexpected reply during failover"),
            FailoverError::Restore(why) => write!(f, "promoted state failed to restore: {why}"),
        }
    }
}

impl std::error::Error for FailoverError {}

/// One node's replication/serving position relative to the writer.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeLag {
    /// The node's index.
    pub node: usize,
    /// Whether the router currently sends it traffic.
    pub active: bool,
    /// The node's own status report (zeroed when unreachable).
    pub status: NodeStatus,
    /// Writer graph version minus the node's (0 = caught up).
    pub graph_lag: u64,
    /// Writer calendar version minus the node's.
    pub calendar_lag: u64,
    /// Writer delta sequence minus the node's.
    pub seq_lag: u64,
    /// Whether the status probe reached the node.
    pub reachable: bool,
    /// The failure detector's current view of the node.
    pub suspicion: Suspicion,
}

/// Point-in-time cluster observability: writer position, per-node lag,
/// replication counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterMetrics {
    /// The writer's current epoch.
    pub writer_epoch: Epoch,
    /// The writer's delta sequence.
    pub writer_seq: u64,
    /// Per node: status and lag.
    pub nodes: Vec<NodeLag>,
    /// Full syncs shipped (first attaches + gap/stale repairs).
    pub full_syncs: u64,
    /// Incremental delta batches shipped.
    pub delta_batches: u64,
    /// Replication sends the transport refused or dropped (after their
    /// whole retry budget).
    pub failed_sends: u64,
    /// Heartbeat probes that went unanswered (includes data-plane
    /// failures fed to the detector as evidence).
    pub heartbeats_missed: u64,
    /// Nodes the failure detector drained.
    pub auto_drains: u64,
    /// Nodes the detector re-attached and undrained.
    pub auto_recoveries: u64,
    /// Individual send retries performed (replication + data plane).
    pub retries: u64,
    /// Writer failovers performed.
    pub failovers: u64,
    /// Delta records shipped to nodes recovering from a failed round.
    pub catch_up_deltas: u64,
}

/// The cluster's full latency spectrum: [`ClusterMetrics`] plus every
/// node's executor histograms, both per node and merged fleet-wide —
/// what [`Cluster::observability`] gathers with [`NodeMsg::Metrics`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterObs {
    /// Writer position, per-node status/lag/suspicion, replication
    /// counters (the same report as [`Cluster::metrics`]).
    pub metrics: ClusterMetrics,
    /// Each reachable node's deep report, by node index.
    pub per_node: Vec<(usize, NodeObs)>,
    /// Fleet-wide histograms: every node's same-named executor
    /// histograms merged element-wise (log₂ bucket merge is exact).
    pub merged: Vec<(String, HistogramSnapshot)>,
    /// Cluster-side RPC round-trip histograms, one per message class
    /// (retry backoff included).
    pub rpc: Vec<(&'static str, HistogramSnapshot)>,
}

impl ClusterObs {
    /// Render the fleet's whole spectrum as Prometheus text exposition
    /// format: writer position and replication/healing counters,
    /// per-node lag/suspicion/serving gauges (label `node="i"`), the
    /// fleet-merged histogram families (`stgq_<name>_ns` — same family
    /// names as the single-process `Planner::prometheus_text`, so
    /// dashboards work unchanged against either), per-node histograms
    /// (`stgq_node_<name>_ns{node="i"}` — a separate family so summing
    /// the merged families never double-counts), and the cluster's RPC
    /// round-trip histograms.
    pub fn prometheus_text(&self) -> String {
        use stgq_service::expose::render_histograms;

        let mut text = PromText::new();
        let m = &self.metrics;
        text.gauge(
            "stgq_writer_graph_version",
            "The writer's current graph version (epoch, graph axis).",
            &[],
            m.writer_epoch.graph as f64,
        );
        text.gauge(
            "stgq_writer_calendar_version",
            "The writer's current calendar version (epoch, calendar axis).",
            &[],
            m.writer_epoch.calendar as f64,
        );
        text.gauge(
            "stgq_writer_seq",
            "The writer's delta-log sequence.",
            &[],
            m.writer_seq as f64,
        );
        let cluster_counters: [(&str, &str, u64); 9] = [
            (
                "stgq_cluster_full_syncs",
                "Full syncs shipped (first attaches + gap/stale repairs).",
                m.full_syncs,
            ),
            (
                "stgq_cluster_delta_batches",
                "Incremental delta batches shipped.",
                m.delta_batches,
            ),
            (
                "stgq_cluster_failed_sends",
                "Replication sends dropped after their whole retry budget.",
                m.failed_sends,
            ),
            (
                "stgq_cluster_heartbeats_missed",
                "Unanswered heartbeat probes (incl. data-plane evidence).",
                m.heartbeats_missed,
            ),
            (
                "stgq_cluster_auto_drains",
                "Nodes the failure detector drained.",
                m.auto_drains,
            ),
            (
                "stgq_cluster_auto_recoveries",
                "Nodes the detector re-attached and undrained.",
                m.auto_recoveries,
            ),
            (
                "stgq_cluster_retries",
                "Individual send retries performed (replication + data plane).",
                m.retries,
            ),
            (
                "stgq_cluster_failovers",
                "Writer failovers performed.",
                m.failovers,
            ),
            (
                "stgq_cluster_catch_up_deltas",
                "Delta records shipped to nodes recovering from a failed round.",
                m.catch_up_deltas,
            ),
        ];
        for (name, help, value) in cluster_counters {
            text.counter(name, help, &[], value);
        }
        for lag in &m.nodes {
            let node = lag.node.to_string();
            let labels: [(&str, &str); 1] = [("node", node.as_str())];
            let flags: [(&str, &str, bool); 3] = [
                (
                    "stgq_node_active",
                    "Whether the router currently sends this node traffic.",
                    lag.active,
                ),
                (
                    "stgq_node_reachable",
                    "Whether the status probe reached this node.",
                    lag.reachable,
                ),
                (
                    "stgq_node_attached",
                    "Whether the node has completed its first sync.",
                    lag.status.attached,
                ),
            ];
            for (name, help, value) in flags {
                text.gauge(name, help, &labels, if value { 1.0 } else { 0.0 });
            }
            let gauges: [(&str, &str, u64); 4] = [
                (
                    "stgq_node_seq_lag",
                    "Writer delta sequence minus the node's (0 = caught up).",
                    lag.seq_lag,
                ),
                (
                    "stgq_node_graph_lag",
                    "Writer graph version minus the node's.",
                    lag.graph_lag,
                ),
                (
                    "stgq_node_calendar_lag",
                    "Writer calendar version minus the node's.",
                    lag.calendar_lag,
                ),
                (
                    "stgq_node_seq",
                    "The last delta sequence the node applied.",
                    lag.status.seq,
                ),
            ];
            for (name, help, value) in gauges {
                text.gauge(name, help, &labels, value as f64);
            }
            let (suspected, misses) = match lag.suspicion {
                Suspicion::Healthy => (0.0, 0),
                Suspicion::Accruing { missed } => (0.0, missed),
                Suspicion::Suspected => (1.0, 0),
            };
            text.gauge(
                "stgq_node_suspected",
                "1 while the failure detector suspects this node.",
                &labels,
                suspected,
            );
            text.gauge(
                "stgq_node_suspicion_misses",
                "Consecutive heartbeat misses accrued (0 once healthy or suspected).",
                &labels,
                misses as f64,
            );
            let counters: [(&str, &str, u64); 4] = [
                (
                    "stgq_node_queries",
                    "Queries answered by the node's executor.",
                    lag.status.queries,
                ),
                (
                    "stgq_node_result_cache_hits",
                    "Result-cache hits at the node.",
                    lag.status.result_cache_hits,
                ),
                (
                    "stgq_node_full_syncs",
                    "Full syncs this node went through.",
                    lag.status.full_syncs,
                ),
                (
                    "stgq_node_delta_batches",
                    "Incremental delta batches this node applied.",
                    lag.status.delta_batches,
                ),
            ];
            for (name, help, value) in counters {
                text.counter(name, help, &labels, value);
            }
        }
        render_histograms(&mut text, "stgq", &self.merged, &[]);
        for (node, obs) in &self.per_node {
            let node = node.to_string();
            render_histograms(
                &mut text,
                "stgq_node",
                &obs.histograms,
                &[("node", node.as_str())],
            );
        }
        let rpc: Vec<(String, HistogramSnapshot)> = self
            .rpc
            .iter()
            .map(|(name, snap)| (name.to_string(), *snap))
            .collect();
        render_histograms(&mut text, "stgq", &rpc, &[]);
        text.finish()
    }
}

/// A multi-node serving cluster. See the crate docs for the architecture
/// (router → transport → replication → node executors).
pub struct Cluster {
    planner: Planner,
    nodes: Vec<Arc<ClusterNode>>,
    transport: Arc<dyn Transport>,
    router: Mutex<ShardRouter>,
    replicator: Mutex<Replicator>,
    detector: Mutex<FailureDetector>,
    retry: RetryPolicy,
    read_your_writes: bool,
    /// Data-plane (scatter/gather + heartbeat) send retries performed.
    exec_retries: AtomicU64,
    /// Writer failovers performed.
    failovers: AtomicU64,
    /// Per-message-class RPC round-trip histograms (shared with the
    /// replicator so both planes record into one spectrum).
    rpc: Arc<RpcObs>,
}

impl Cluster {
    /// A cluster over `horizon` time slots with an in-process transport.
    pub fn new(horizon: usize, cfg: ClusterConfig) -> Self {
        let nodes: Vec<Arc<ClusterNode>> = (0..cfg.nodes.max(1))
            .map(|id| Arc::new(ClusterNode::new(id, cfg.node_exec)))
            .collect();
        let transport: Arc<dyn Transport> =
            Arc::new(InProcessTransport::with_codec(nodes.clone(), cfg.codec));
        Cluster::from_parts(horizon, cfg, nodes, transport)
    }

    /// Assemble a cluster from pre-built nodes and an arbitrary
    /// transport (how tests interpose a
    /// [`FaultInjector`](crate::FaultInjector)).
    pub fn from_parts(
        horizon: usize,
        cfg: ClusterConfig,
        nodes: Vec<Arc<ClusterNode>>,
        transport: Arc<dyn Transport>,
    ) -> Self {
        // The writer is control-plane only: queries are served by the
        // nodes, so its own executor stays minimal.
        let writer_exec = ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        };
        let node_count = nodes.len();
        let rpc = Arc::new(RpcObs::default());
        Cluster {
            planner: Planner::with_exec_config(horizon, writer_exec),
            nodes,
            transport,
            router: Mutex::new(ShardRouter::new(cfg.shards, node_count)),
            replicator: Mutex::new(Replicator::with_observer(
                node_count,
                cfg.retry,
                Arc::clone(&rpc),
            )),
            detector: Mutex::new(FailureDetector::new(node_count, cfg.health)),
            retry: cfg.retry,
            read_your_writes: cfg.read_your_writes,
            exec_retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rpc,
        }
    }

    // -- writer (mutations) -------------------------------------------

    /// The writer planner (read access: network, calendars, delta feed).
    pub fn writer(&self) -> &Planner {
        &self.planner
    }

    /// The writer planner, mutably — the full mutation surface beyond
    /// the forwarding helpers below.
    pub fn writer_mut(&mut self) -> &mut Planner {
        &mut self.planner
    }

    /// Register a person (see [`Planner::add_person`]).
    pub fn add_person(&mut self, label: impl Into<String>) -> NodeId {
        self.planner.add_person(label)
    }

    /// Create or re-weight a friendship.
    pub fn connect(&mut self, a: NodeId, b: NodeId, distance: u64) -> Result<(), ServiceError> {
        self.planner.connect(a, b, distance)
    }

    /// Remove a friendship.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServiceError> {
        self.planner.disconnect(a, b)
    }

    /// Tombstone a person.
    pub fn remove_person(&mut self, person: NodeId) -> Result<(), ServiceError> {
        self.planner.remove_person(person)
    }

    /// Mark one slot (un)available.
    pub fn set_availability(
        &mut self,
        person: NodeId,
        slot: usize,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.planner.set_availability(person, slot, available)
    }

    /// Mark a slot range (un)available.
    pub fn set_availability_range(
        &mut self,
        person: NodeId,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.planner
            .set_availability_range(person, range, available)
    }

    /// Replace a whole calendar.
    pub fn set_calendar(&mut self, person: NodeId, calendar: Calendar) -> Result<(), ServiceError> {
        self.planner.set_calendar(person, calendar)
    }

    /// The writer's current epoch — the read-your-writes floor.
    pub fn writer_epoch(&self) -> Epoch {
        Epoch::new(
            self.planner.network().version(),
            self.planner.calendars().version(),
        )
    }

    // -- replication ---------------------------------------------------

    /// Ship pending state to every **active** node (deltas where the log
    /// reaches, full sync otherwise). Per-node failures are returned,
    /// not raised: an unreachable node simply lags until a later round.
    pub fn replicate(&self) -> Vec<(usize, Result<Epoch, SyncError>)> {
        let active = self.router.lock().active_nodes();
        let mut replicator = self.replicator.lock();
        active
            .into_iter()
            .map(|node| {
                (
                    node,
                    replicator.sync_node(&self.planner, &*self.transport, node),
                )
            })
            .collect()
    }

    // -- serving -------------------------------------------------------

    /// Answer a batch: replicate, stamp (read-your-writes), scatter by
    /// initiator shard, gather in input order.
    pub fn plan_batch(&self, queries: &[BatchQuery]) -> Vec<Result<PlanOutcome, ClusterError>> {
        self.replicate();
        let min_epoch = self.read_your_writes.then(|| self.writer_epoch());
        let requests: Vec<WireRequest> = queries
            .iter()
            .map(|q| WireRequest {
                initiator: q.initiator,
                spec: q.spec,
                engine: q.engine,
                min_epoch,
            })
            .collect();
        self.execute(requests)
    }

    /// The scatter/gather data plane on explicit wire requests (no
    /// implicit replication, no stamping — what [`plan_batch`] builds
    /// on). Self-healing: a node that fails its whole retry budget is
    /// suspected, auto-drained (when [`HealthConfig::auto_drain`] is
    /// on), and its entries **re-dispatched** to the shards' new owners
    /// inside this same call — a mid-batch node loss costs latency, not
    /// answers.
    ///
    /// [`plan_batch`]: Self::plan_batch
    pub fn execute(&self, requests: Vec<WireRequest>) -> Vec<Result<PlanOutcome, ClusterError>> {
        let mut slots: Vec<Option<Result<PlanOutcome, ClusterError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Original-batch positions still unanswered; re-dispatch rounds
        // shrink this. Each healing round drains at least one node, so
        // the loop is bounded by the cluster size.
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        loop {
            let initiators: Vec<NodeId> = pending.iter().map(|&p| requests[p].initiator).collect();
            // Plan positions index into `pending`.
            let plan = self.router.lock().scatter_plan(&initiators);
            // Scatter concurrently — one thread per addressed node, so
            // node executors genuinely run side by side (this is where
            // multi-node beats one node on a multi-core host).
            let replies: Vec<(usize, &Vec<usize>, Result<NodeReply, TransportError>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = plan
                        .iter()
                        .map(|(node, positions)| {
                            let batch: Vec<WireRequest> =
                                positions.iter().map(|&p| requests[pending[p]]).collect();
                            let transport = Arc::clone(&self.transport);
                            let node = *node;
                            let policy = &self.retry;
                            let retries = &self.exec_retries;
                            let rpc = &self.rpc;
                            scope.spawn(move || {
                                (
                                    node,
                                    send_with_retry(
                                        &*transport,
                                        node,
                                        NodeMsg::Execute(batch),
                                        policy,
                                        MsgClass::Execute,
                                        retries,
                                        rpc,
                                    ),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .zip(plan.iter())
                        .map(|(h, (_, positions))| {
                            let (node, reply) = h.join().expect("scatter worker never panics");
                            (node, positions, reply)
                        })
                        .collect()
                });
            let mut failed: Vec<(usize, Vec<usize>, TransportError)> = Vec::new();
            for (node, positions, reply) in replies {
                match reply {
                    Ok(NodeReply::Outcomes(outcomes)) if outcomes.len() == positions.len() => {
                        for (&p, outcome) in positions.iter().zip(outcomes) {
                            slots[pending[p]] = Some(outcome.map_err(ClusterError::Exec));
                        }
                    }
                    Ok(_) => {
                        for &p in positions {
                            slots[pending[p]] = Some(Err(ClusterError::Protocol));
                        }
                    }
                    Err(e) => failed.push((node, positions.clone(), e)),
                }
            }
            if failed.is_empty() {
                break;
            }
            // An exhausted retry budget is fail-stop evidence: suspect
            // the node (jumping straight to the threshold), drain it,
            // and re-dispatch its entries to the shards' new owners.
            let auto_drain = self.detector.lock().config().auto_drain;
            let mut healed = false;
            for (node, _, _) in &failed {
                self.detector.lock().note_data_failure(*node);
                if !auto_drain {
                    continue;
                }
                match self.router.lock().drain(*node) {
                    Ok(()) => {
                        self.detector.lock().note_auto_drained(*node);
                        healed = true;
                    }
                    // Lost the race with a concurrent drain: the shards
                    // are already reassigned, so re-dispatch still works.
                    Err(RouterError::AlreadyDrained { .. }) => healed = true,
                    // Last active node, or unknown: nothing to heal with.
                    Err(_) => {}
                }
            }
            if !healed {
                for (_, positions, e) in failed {
                    for p in positions {
                        slots[pending[p]] = Some(Err(ClusterError::Transport(e.clone())));
                    }
                }
                break;
            }
            // Re-dispatch in original submission order (per-node batch
            // order is what within-batch collapsing relies on).
            let mut next: Vec<usize> = failed
                .iter()
                .flat_map(|(_, positions, _)| positions.iter().map(|&p| pending[p]))
                .collect();
            next.sort_unstable();
            pending = next;
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every position answered or failed"))
            .collect()
    }

    // -- self-healing --------------------------------------------------

    /// Run one failure-detection round: probe every node slot with a
    /// status heartbeat (deliberately single-attempt — a retried
    /// heartbeat would hide the misses the detector counts), accrue
    /// suspicion on misses, auto-drain newly suspected nodes, and
    /// re-attach + undrain recovered ones. Returns every node's
    /// suspicion after the round.
    ///
    /// Call this on a timer (or between batches); the cadence times
    /// `suspect_after` is the detection latency.
    pub fn heartbeat(&self) -> Vec<(usize, Suspicion)> {
        let health = self.detector.lock().config();
        let slots = self.transport.node_count();
        for node in 0..slots {
            let reply = send_with_retry(
                &*self.transport,
                node,
                NodeMsg::Status,
                &self.retry,
                MsgClass::Status,
                &self.exec_retries,
                &self.rpc,
            );
            match reply {
                Ok(_) => {
                    let recoverable = self.detector.lock().note_alive(node);
                    if recoverable && health.auto_recover {
                        self.recover_node(node);
                    }
                }
                Err(_) => {
                    let newly_suspected = self.detector.lock().note_missed(node);
                    if newly_suspected && health.auto_drain {
                        // On Err: the operator got there first (the drain
                        // stays theirs), or it is the last active node
                        // (keep serving and surfacing errors rather than
                        // stopping).
                        if self.router.lock().drain(node).is_ok() {
                            self.detector.lock().note_auto_drained(node);
                        }
                    }
                }
            }
        }
        (0..slots)
            .map(|node| (node, self.detector.lock().suspicion(node)))
            .collect()
    }

    /// Re-attach a recovered node: reset its replication accounting (a
    /// crashed node's mirror is gone, so force the full-sync path),
    /// sync it to the writer's state, and undrain it on success. A
    /// failed sync keeps the auto-drain claim, so the next answered
    /// heartbeat retries.
    fn recover_node(&self, node: usize) {
        let mut replicator = self.replicator.lock();
        replicator.reset_node(node);
        if replicator
            .sync_node(&self.planner, &*self.transport, node)
            .is_err()
        {
            return;
        }
        drop(replicator);
        match self.router.lock().undrain(node) {
            Ok(()) => self.detector.lock().note_recovered(node),
            // An operator undrained it meanwhile: the node is serving;
            // just release our claim.
            Err(RouterError::NotDrained { .. }) => self.detector.lock().release_claim(node),
            Err(_) => {}
        }
    }

    /// Promote the best surviving replica to writer.
    ///
    /// The donor is the reachable, attached node with the highest
    /// applied delta sequence (lowest index on ties — deterministic).
    /// Its exported world becomes the new writer state, with the version
    /// stamps **bumped past** every epoch any replica ever acknowledged
    /// and past the old writer's last issued floor: epochs stay
    /// monotonic fleet-wide, version-keyed caches never alias content
    /// across the promotion, and outstanding read-your-writes floors
    /// remain coverable. All replication accounting is reset, so every
    /// replica (even one that was *ahead* of the donor) re-attaches
    /// through a full sync of the promoted state.
    ///
    /// Mutations the old writer never replicated to any acking replica
    /// are lost — they were never durable. On error nothing changes.
    /// Returns the promoted donor's index.
    pub fn fail_over(&mut self) -> Result<usize, FailoverError> {
        let slots = self.transport.node_count();
        // Probe with the data-plane budget: failover is worth retries.
        let mut best: Option<(u64, usize)> = None;
        for node in 0..slots {
            let reply = send_with_retry(
                &*self.transport,
                node,
                NodeMsg::Status,
                &self.retry,
                MsgClass::Execute,
                &self.exec_retries,
                &self.rpc,
            );
            if let Ok(NodeReply::Status(status)) = reply {
                if status.attached && best.is_none_or(|(seq, _)| status.seq > seq) {
                    best = Some((status.seq, node));
                }
            }
        }
        let (_, donor) = best.ok_or(FailoverError::NoCandidate)?;

        let reply = send_with_retry(
            &*self.transport,
            donor,
            NodeMsg::Export,
            &self.retry,
            MsgClass::Execute,
            &self.exec_retries,
            &self.rpc,
        )
        .map_err(FailoverError::Export)?;
        let NodeReply::State(mut state) = reply else {
            return Err(FailoverError::Protocol);
        };

        // Monotonicity bump: past the donor, past every acked epoch
        // (a one-way-partitioned replica can be ahead of the writer's
        // accounting), and past the old writer's own floor.
        let mut graph_max = state.graph_version.max(self.planner.network().version());
        let mut calendar_max = state
            .calendar_version
            .max(self.planner.calendars().version());
        let mut seq_max = state.seq.max(self.planner.delta_seq());
        {
            let replicator = self.replicator.lock();
            for node in 0..slots {
                let acked = replicator.acked_epoch(node);
                graph_max = graph_max.max(acked.graph);
                calendar_max = calendar_max.max(acked.calendar);
                if let Some(seq) = replicator.acked_seq(node) {
                    seq_max = seq_max.max(seq);
                }
            }
        }
        state.graph_version = graph_max + 1;
        state.calendar_version = calendar_max + 1;
        state.seq = seq_max;

        let writer_exec = ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        };
        self.planner = Planner::restore(&state, writer_exec)
            .map_err(|e| FailoverError::Restore(e.to_string()))?;
        self.replicator.lock().reset_all();
        self.failovers.fetch_add(1, Ordering::Relaxed);
        Ok(donor)
    }

    // -- membership ----------------------------------------------------

    /// Operator drain: stop routing to `node` and hand its shards to
    /// the remaining active nodes. The node keeps its state and can be
    /// [`undrained`](Self::undrain_node) later. An operator drain is
    /// never auto-undrained — the failure detector only recovers drains
    /// *it* performed.
    pub fn drain_node(&self, node: usize) -> Result<(), RouterError> {
        self.router.lock().drain(node)
    }

    /// Operator undrain: return a drained node to the shard map (it
    /// catches up through the normal replication path on the next
    /// round). Also releases any auto-drain claim the failure detector
    /// held on the node, so self-healing will not re-run recovery on a
    /// node the operator already brought back.
    pub fn undrain_node(&self, node: usize) -> Result<(), RouterError> {
        self.router.lock().undrain(node)?;
        self.detector.lock().release_claim(node);
        Ok(())
    }

    /// Indices of the nodes currently taking traffic.
    pub fn active_nodes(&self) -> Vec<usize> {
        self.router.lock().active_nodes()
    }

    /// The node slots behind this cluster (for direct metric probes in
    /// benches and tests).
    pub fn nodes(&self) -> &[Arc<ClusterNode>] {
        &self.nodes
    }

    // -- observability -------------------------------------------------

    /// Writer position, per-node status and lag, replication counters.
    pub fn metrics(&self) -> ClusterMetrics {
        let writer_epoch = self.writer_epoch();
        let writer_seq = self.planner.delta_seq();
        let router = self.router.lock();
        let replicator = self.replicator.lock();
        let detector = self.detector.lock();
        let nodes = (0..router.node_slots())
            .map(|node| {
                let (status, reachable) = match self.transport.send(node, NodeMsg::Status) {
                    Ok(NodeReply::Status(status)) => (status, true),
                    _ => (NodeStatus::default(), false),
                };
                NodeLag {
                    node,
                    active: router.is_active(node),
                    graph_lag: writer_epoch.graph.saturating_sub(status.epoch.graph),
                    calendar_lag: writer_epoch.calendar.saturating_sub(status.epoch.calendar),
                    seq_lag: writer_seq.saturating_sub(status.seq),
                    status,
                    reachable,
                    suspicion: detector.suspicion(node),
                }
            })
            .collect();
        ClusterMetrics {
            writer_epoch,
            writer_seq,
            nodes,
            full_syncs: replicator.full_syncs,
            delta_batches: replicator.delta_batches,
            failed_sends: replicator.failed_sends,
            heartbeats_missed: detector.heartbeats_missed,
            auto_drains: detector.auto_drains,
            auto_recoveries: detector.auto_recoveries,
            retries: replicator.retries + self.exec_retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            catch_up_deltas: replicator.catch_up_deltas,
        }
    }

    /// Scatter [`NodeMsg::Metrics`] to every node slot and gather the
    /// fleet's latency spectrum: per-node executor histograms, their
    /// fleet-wide merge (same-named histograms added element-wise — the
    /// log₂ bucket merge is exact, so the merged spectrum equals one
    /// histogram that had seen every node's samples), and the cluster's
    /// own per-class RPC round-trip histograms. Unreachable nodes are
    /// simply absent from `per_node` and the merge.
    pub fn observability(&self) -> ClusterObs {
        let slots = self.transport.node_count();
        let mut per_node = Vec::new();
        let mut merged: Vec<(String, HistogramSnapshot)> = Vec::new();
        for node in 0..slots {
            let reply = send_with_retry(
                &*self.transport,
                node,
                NodeMsg::Metrics,
                &self.retry,
                MsgClass::Status,
                &self.exec_retries,
                &self.rpc,
            );
            let Ok(NodeReply::Metrics(obs)) = reply else {
                continue;
            };
            for (name, snap) in &obs.histograms {
                match merged.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(snap),
                    None => merged.push((name.clone(), *snap)),
                }
            }
            per_node.push((node, obs));
        }
        ClusterObs {
            metrics: self.metrics(),
            per_node,
            merged,
            rpc: self.rpc.histograms(),
        }
    }
}
