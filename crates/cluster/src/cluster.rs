//! The cluster façade: one writer (a full [`Planner`] owning the
//! mutable world and the delta log) plus N serving nodes behind a
//! [`ShardRouter`], all talking through one [`Transport`].

use std::sync::Arc;

use parking_lot::Mutex;
use stgq_exec::{ExecConfig, ExecError, PlanOutcome};
use stgq_graph::NodeId;
use stgq_schedule::{Calendar, SlotRange};
use stgq_service::{BatchQuery, Planner, ServiceError};

use crate::message::{Epoch, NodeMsg, NodeReply, NodeStatus, WireRequest};
use crate::node::ClusterNode;
use crate::replication::{Replicator, SyncError};
use crate::router::{RouterError, ShardRouter};
use crate::transport::{InProcessTransport, Transport, TransportError, WireCodec};

/// Construction-time knobs for a [`Cluster`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Serving nodes.
    pub nodes: usize,
    /// Initiator-shard modulus the router distributes over (kept equal
    /// to the per-node executors' shard count so the routing partition
    /// and the nodes' internal cache partitions align).
    pub shards: usize,
    /// Executor sizing applied to every node.
    pub node_exec: ExecConfig,
    /// Stamp every routed request with the writer's current epoch as its
    /// minimum (read-your-writes: a lagging replica refuses rather than
    /// serves stale). Off, requests accept whatever epoch their node has.
    pub read_your_writes: bool,
    /// How the in-process transport moves messages (JSON proves
    /// wire-encodability in tests).
    pub codec: WireCodec,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            shards: 16,
            node_exec: ExecConfig::default(),
            read_your_writes: true,
            codec: WireCodec::Direct,
        }
    }
}

/// Why one routed entry failed (entries fail individually; a batch is
/// never poisoned by one node).
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The answering node's executor refused the entry.
    Exec(ExecError),
    /// The transport could not reach the assigned node.
    Transport(TransportError),
    /// The node answered outside the protocol.
    Protocol,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Exec(e) => write!(f, "{e}"),
            ClusterError::Transport(e) => write!(f, "{e}"),
            ClusterError::Protocol => write!(f, "unexpected reply to execute"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One node's replication/serving position relative to the writer.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeLag {
    /// The node's index.
    pub node: usize,
    /// Whether the router currently sends it traffic.
    pub active: bool,
    /// The node's own status report (zeroed when unreachable).
    pub status: NodeStatus,
    /// Writer graph version minus the node's (0 = caught up).
    pub graph_lag: u64,
    /// Writer calendar version minus the node's.
    pub calendar_lag: u64,
    /// Writer delta sequence minus the node's.
    pub seq_lag: u64,
    /// Whether the status probe reached the node.
    pub reachable: bool,
}

/// Point-in-time cluster observability: writer position, per-node lag,
/// replication counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterMetrics {
    /// The writer's current epoch.
    pub writer_epoch: Epoch,
    /// The writer's delta sequence.
    pub writer_seq: u64,
    /// Per node: status and lag.
    pub nodes: Vec<NodeLag>,
    /// Full syncs shipped (first attaches + gap/stale repairs).
    pub full_syncs: u64,
    /// Incremental delta batches shipped.
    pub delta_batches: u64,
    /// Replication sends the transport refused or dropped.
    pub failed_sends: u64,
}

/// A multi-node serving cluster. See the crate docs for the architecture
/// (router → transport → replication → node executors).
pub struct Cluster {
    planner: Planner,
    nodes: Vec<Arc<ClusterNode>>,
    transport: Arc<dyn Transport>,
    router: Mutex<ShardRouter>,
    replicator: Mutex<Replicator>,
    read_your_writes: bool,
}

impl Cluster {
    /// A cluster over `horizon` time slots with an in-process transport.
    pub fn new(horizon: usize, cfg: ClusterConfig) -> Self {
        let nodes: Vec<Arc<ClusterNode>> = (0..cfg.nodes.max(1))
            .map(|id| Arc::new(ClusterNode::new(id, cfg.node_exec)))
            .collect();
        let transport: Arc<dyn Transport> =
            Arc::new(InProcessTransport::with_codec(nodes.clone(), cfg.codec));
        Cluster::from_parts(horizon, cfg, nodes, transport)
    }

    /// Assemble a cluster from pre-built nodes and an arbitrary
    /// transport (how tests interpose a
    /// [`FaultInjector`](crate::FaultInjector)).
    pub fn from_parts(
        horizon: usize,
        cfg: ClusterConfig,
        nodes: Vec<Arc<ClusterNode>>,
        transport: Arc<dyn Transport>,
    ) -> Self {
        // The writer is control-plane only: queries are served by the
        // nodes, so its own executor stays minimal.
        let writer_exec = ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        };
        let node_count = nodes.len();
        Cluster {
            planner: Planner::with_exec_config(horizon, writer_exec),
            nodes,
            transport,
            router: Mutex::new(ShardRouter::new(cfg.shards, node_count)),
            replicator: Mutex::new(Replicator::new(node_count)),
            read_your_writes: cfg.read_your_writes,
        }
    }

    // -- writer (mutations) -------------------------------------------

    /// The writer planner (read access: network, calendars, delta feed).
    pub fn writer(&self) -> &Planner {
        &self.planner
    }

    /// The writer planner, mutably — the full mutation surface beyond
    /// the forwarding helpers below.
    pub fn writer_mut(&mut self) -> &mut Planner {
        &mut self.planner
    }

    /// Register a person (see [`Planner::add_person`]).
    pub fn add_person(&mut self, label: impl Into<String>) -> NodeId {
        self.planner.add_person(label)
    }

    /// Create or re-weight a friendship.
    pub fn connect(&mut self, a: NodeId, b: NodeId, distance: u64) -> Result<(), ServiceError> {
        self.planner.connect(a, b, distance)
    }

    /// Remove a friendship.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServiceError> {
        self.planner.disconnect(a, b)
    }

    /// Tombstone a person.
    pub fn remove_person(&mut self, person: NodeId) -> Result<(), ServiceError> {
        self.planner.remove_person(person)
    }

    /// Mark one slot (un)available.
    pub fn set_availability(
        &mut self,
        person: NodeId,
        slot: usize,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.planner.set_availability(person, slot, available)
    }

    /// Mark a slot range (un)available.
    pub fn set_availability_range(
        &mut self,
        person: NodeId,
        range: SlotRange,
        available: bool,
    ) -> Result<(), ServiceError> {
        self.planner
            .set_availability_range(person, range, available)
    }

    /// Replace a whole calendar.
    pub fn set_calendar(&mut self, person: NodeId, calendar: Calendar) -> Result<(), ServiceError> {
        self.planner.set_calendar(person, calendar)
    }

    /// The writer's current epoch — the read-your-writes floor.
    pub fn writer_epoch(&self) -> Epoch {
        Epoch::new(
            self.planner.network().version(),
            self.planner.calendars().version(),
        )
    }

    // -- replication ---------------------------------------------------

    /// Ship pending state to every **active** node (deltas where the log
    /// reaches, full sync otherwise). Per-node failures are returned,
    /// not raised: an unreachable node simply lags until a later round.
    pub fn replicate(&self) -> Vec<(usize, Result<Epoch, SyncError>)> {
        let active = self.router.lock().active_nodes();
        let mut replicator = self.replicator.lock();
        active
            .into_iter()
            .map(|node| {
                (
                    node,
                    replicator.sync_node(&self.planner, &*self.transport, node),
                )
            })
            .collect()
    }

    // -- serving -------------------------------------------------------

    /// Answer a batch: replicate, stamp (read-your-writes), scatter by
    /// initiator shard, gather in input order.
    pub fn plan_batch(&self, queries: &[BatchQuery]) -> Vec<Result<PlanOutcome, ClusterError>> {
        self.replicate();
        let min_epoch = self.read_your_writes.then(|| self.writer_epoch());
        let requests: Vec<WireRequest> = queries
            .iter()
            .map(|q| WireRequest {
                initiator: q.initiator,
                spec: q.spec,
                engine: q.engine,
                min_epoch,
            })
            .collect();
        self.execute(requests)
    }

    /// The scatter/gather data plane on explicit wire requests (no
    /// implicit replication, no stamping — what [`plan_batch`] builds
    /// on).
    ///
    /// [`plan_batch`]: Self::plan_batch
    pub fn execute(&self, requests: Vec<WireRequest>) -> Vec<Result<PlanOutcome, ClusterError>> {
        let initiators: Vec<NodeId> = requests.iter().map(|r| r.initiator).collect();
        let plan = self.router.lock().scatter_plan(&initiators);
        let mut slots: Vec<Option<Result<PlanOutcome, ClusterError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Scatter concurrently — one thread per addressed node, so node
        // executors genuinely run side by side (this is where multi-node
        // beats one node on a multi-core host).
        let replies: Vec<(usize, &Vec<usize>, Result<NodeReply, TransportError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .iter()
                    .map(|(node, positions)| {
                        let batch: Vec<WireRequest> =
                            positions.iter().map(|&p| requests[p]).collect();
                        let transport = Arc::clone(&self.transport);
                        let node = *node;
                        scope.spawn(move || (node, transport.send(node, NodeMsg::Execute(batch))))
                    })
                    .collect();
                handles
                    .into_iter()
                    .zip(plan.iter())
                    .map(|(h, (_, positions))| {
                        let (node, reply) = h.join().expect("scatter worker never panics");
                        (node, positions, reply)
                    })
                    .collect()
            });
        for (_, positions, reply) in replies {
            match reply {
                Ok(NodeReply::Outcomes(outcomes)) if outcomes.len() == positions.len() => {
                    for (&pos, outcome) in positions.iter().zip(outcomes) {
                        slots[pos] = Some(outcome.map_err(ClusterError::Exec));
                    }
                }
                Ok(_) => {
                    for &pos in positions {
                        slots[pos] = Some(Err(ClusterError::Protocol));
                    }
                }
                Err(e) => {
                    for &pos in positions {
                        slots[pos] = Some(Err(ClusterError::Transport(e.clone())));
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("scatter plan covers every position"))
            .collect()
    }

    // -- membership ----------------------------------------------------

    /// Stop routing to `node` and hand its shards to the remaining
    /// active nodes. The node keeps its state and can be
    /// [`undrained`](Self::undrain_node) later.
    pub fn drain_node(&self, node: usize) -> Result<(), RouterError> {
        self.router.lock().drain(node)
    }

    /// Return a drained node to the shard map (it catches up through the
    /// normal replication path on the next round).
    pub fn undrain_node(&self, node: usize) -> Result<(), RouterError> {
        self.router.lock().undrain(node)
    }

    /// Indices of the nodes currently taking traffic.
    pub fn active_nodes(&self) -> Vec<usize> {
        self.router.lock().active_nodes()
    }

    /// The node slots behind this cluster (for direct metric probes in
    /// benches and tests).
    pub fn nodes(&self) -> &[Arc<ClusterNode>] {
        &self.nodes
    }

    // -- observability -------------------------------------------------

    /// Writer position, per-node status and lag, replication counters.
    pub fn metrics(&self) -> ClusterMetrics {
        let writer_epoch = self.writer_epoch();
        let writer_seq = self.planner.delta_seq();
        let router = self.router.lock();
        let replicator = self.replicator.lock();
        let nodes = (0..router.node_slots())
            .map(|node| {
                let (status, reachable) = match self.transport.send(node, NodeMsg::Status) {
                    Ok(NodeReply::Status(status)) => (status, true),
                    _ => (NodeStatus::default(), false),
                };
                NodeLag {
                    node,
                    active: router.is_active(node),
                    graph_lag: writer_epoch.graph.saturating_sub(status.epoch.graph),
                    calendar_lag: writer_epoch.calendar.saturating_sub(status.epoch.calendar),
                    seq_lag: writer_seq.saturating_sub(status.seq),
                    status,
                    reachable,
                }
            })
            .collect();
        ClusterMetrics {
            writer_epoch,
            writer_seq,
            nodes,
            full_syncs: replicator.full_syncs,
            delta_batches: replicator.delta_batches,
            failed_sends: replicator.failed_sends,
        }
    }
}
