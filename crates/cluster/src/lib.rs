//! `stgq-cluster` — shard-routed multi-node serving over replicated
//! epoch snapshots: the horizontal scale-out layer above the
//! single-process `stgq-exec` executor.
//!
//! # Architecture: router → transport → replication → node executors
//!
//! ```text
//!                       mutations
//!                           │
//!                    ┌──────▼──────┐   deltas / full sync    ┌────────────┐
//!                    │   writer    ├────────────────────────▶│ ClusterNode│
//!                    │  (Planner + │                         │  mirror +  │
//!                    │  delta log) ├──────────┐              │  Executor  │
//!                    └──────┬──────┘          ▼              └─────▲──────┘
//!                           │ epoch     ┌────────────┐            │
//!   plan_batch ────────────▶│           │ Transport  │◀───────────┘
//!        │            ┌─────▼─────┐     │ (in-process│    Execute /
//!        └───────────▶│ShardRouter├────▶│  or wire)  │    Replicate /
//!          scatter by │ shard→node│     └────────────┘    Status
//!        initiator    └───────────┘
//! ```
//!
//! * **Shard routing** ([`ShardRouter`]). The executor already
//!   partitions all work by initiator shard (`initiator mod shards` —
//!   batch grouping, feasible-graph cache, result cache). The router
//!   lifts that same partition across machines: every shard is owned by
//!   one node, a batch is **scattered** into per-node sub-batches
//!   (submission order preserved within a node, which within-batch
//!   collapsing relies on) and **gathered** back in input order. Because
//!   the partition matches the nodes' internal cache partition,
//!   same-initiator traffic keeps hitting the same warm caches it did in
//!   one process. Node drain/removal reassigns shards round-robin over
//!   the survivors ([`Cluster::drain_node`]).
//! * **Pluggable transport** ([`Transport`]). Nodes exchange a small,
//!   fully wire-encodable protocol ([`NodeMsg`]/[`NodeReply`]): ship a
//!   replication payload, execute a shard batch, report status. The
//!   offline build has no network registry crates, so the shipped
//!   implementation is [`InProcessTransport`] — the whole cluster runs
//!   (and is deterministically tested) inside one process; its
//!   [`WireCodec::Json`] mode round-trips every message through JSON so
//!   nothing process-local leaks into the protocol. A real network
//!   transport is a drop-in impl of the same trait.
//! * **Snapshot replication** ([`Replicator`], service-side
//!   `WorldDelta`/`DeltaLog`/`WorldState`). The single **writer** owns
//!   the mutable world; every mutation is appended to a bounded delta
//!   log stamped with the resulting `(graph_version, calendar_version)`.
//!   Replicas replay deltas into a local mirror and **epoch-swap** their
//!   executor's immutable `WorldSnapshot` under the writer's stamps —
//!   rebuilding only the half (graph CSR / calendar vector) that moved.
//!   A node attaching fresh, or one whose acknowledged sequence has
//!   fallen out of the log (**gap detection**), gets a full
//!   `WorldState` sync and resumes deltas from there.
//! * **Read-your-writes** ([`Epoch`], `PlanRequest::min_epoch`). Routed
//!   requests carry the writer's epoch as a minimum; a lagging replica
//!   *refuses* (`ExecError::EpochTooOld`) rather than serving stale
//!   answers. Replica lag is observable per node and per axis
//!   ([`Cluster::metrics`] → [`NodeLag`]).
//!
//! Exactness is untouched by distribution: nodes run the same executor
//! over the same epochs, so a cluster of any size returns bit-identical
//! objectives and groups to a single `Executor` — the cluster
//! determinism suite pins that across 1/2/4 nodes.
//!
//! # Self-healing
//!
//! The cluster heals itself through four cooperating mechanisms, all
//! driven by the same failure model: **transient transport faults**
//! (dropped frames, refused connects, timeouts) and **fail-stop nodes**
//! (crash, partition). Byzantine behavior is out of scope — nodes are
//! trusted once they answer.
//!
//! * **Retry/backoff** ([`RetryPolicy`]): every send is retried within a
//!   per-message-class budget with bounded exponential backoff and
//!   deterministic jitter, so blips never surface as errors.
//! * **Failure detection** ([`HealthConfig`], [`Suspicion`]): each
//!   [`Cluster::heartbeat`] round probes every node; consecutive misses
//!   accrue suspicion, and a suspected node is **auto-drained** — its
//!   shards reassign to the survivors and any in-flight batch entries it
//!   failed are re-dispatched to the new owners.
//! * **Catch-up** ([`Replicator`]): a node answering again after an
//!   auto-drain is re-attached through the normal delta/full-sync path
//!   and undrained; the delta log's gap detection decides which.
//! * **Writer failover** ([`Cluster::fail_over`]): the reachable replica
//!   with the highest applied sequence exports its mirrored world
//!   ([`NodeMsg::Export`]) and is promoted to a fresh writer whose
//!   version stamps are bumped past every epoch any replica ever acked —
//!   epochs stay monotonic fleet-wide, so version-keyed caches and
//!   read-your-writes floors stay sound across the promotion.
//!
//! The whole loop is exercised by seeded chaos tests: an expanded
//! [`FaultInjector`] (drops, probabilistic loss, latency, one-way
//! partitions, crash/restart) with per-node deterministic RNG streams
//! makes every chaos run replay bit-identically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
mod health;
mod message;
mod node;
mod obs;
mod replication;
mod retry;
mod router;
mod tcp;
mod transport;

pub use cluster::{
    Cluster, ClusterConfig, ClusterError, ClusterMetrics, ClusterObs, FailoverError, NodeLag,
};
pub use health::{HealthConfig, Suspicion};
pub use message::{
    Epoch, NodeMsg, NodeObs, NodeReply, NodeStatus, ReplicationPayload, WireRequest,
};
pub use node::ClusterNode;
pub use obs::{RpcObs, CLUSTER_RPC_HISTOGRAMS};
pub use replication::{Replicator, SyncError};
pub use retry::{MsgClass, RetryPolicy};
pub use router::{RouterError, ShardRouter};
pub use tcp::{TcpNodeServer, TcpTimeouts, TcpTransport};
pub use transport::{
    FaultCounters, FaultInjector, InProcessTransport, Transport, TransportError, WireCodec,
};
