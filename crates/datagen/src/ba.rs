//! Barabási–Albert preferential attachment — a reference scale-free model
//! used in tests and ablations (the coauthor model should beat it on
//! clustering at matched density).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId, SocialGraph};

use crate::weights::{sample_distance, Tie};

/// Generate a BA graph: each arriving vertex attaches to `m` distinct
/// existing vertices chosen proportionally to degree. Deterministic in
/// `seed`. Requires `n > m ≥ 1`.
pub fn ba_graph(n: usize, m: usize, seed: u64) -> SocialGraph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Endpoint urn: each edge contributes both endpoints.
    let mut urn: Vec<u32> = Vec::new();

    // Seed clique on the first m+1 vertices.
    for i in 0..=(m as u32) {
        for j in i + 1..=(m as u32) {
            let tie = if rng.gen_bool(0.5) {
                Tie::Strong
            } else {
                Tie::Weak
            };
            b.add_edge(NodeId(i), NodeId(j), sample_distance(&mut rng, tie))
                .unwrap();
            urn.push(i);
            urn.push(j);
        }
    }

    for v in (m as u32 + 1)..n as u32 {
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m && guard < 100 * m {
            guard += 1;
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            let tie = if rng.gen_bool(0.5) {
                Tie::Strong
            } else {
                Tie::Weak
            };
            b.add_edge(NodeId(v), NodeId(t), sample_distance(&mut rng, tie))
                .unwrap();
            urn.push(v);
            urn.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::analysis;

    #[test]
    fn edge_count_is_deterministic_and_expected() {
        let g = ba_graph(100, 3, 1);
        let g2 = ba_graph(100, 3, 1);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        // clique C(4,2)=6 + 96 arrivals × 3.
        assert_eq!(g.edge_count(), 6 + 96 * 3);
    }

    #[test]
    fn produces_hubs() {
        let g = ba_graph(500, 2, 77);
        let s = analysis::degree_stats(&g).unwrap();
        assert!(s.max >= 5 * s.median, "max {} median {}", s.max, s.median);
        assert!(s.min >= 2);
    }

    #[test]
    fn single_component() {
        let g = ba_graph(200, 2, 5);
        assert_eq!(analysis::connected_components(&g).len(), 1);
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn rejects_degenerate_sizes() {
        let _ = ba_graph(3, 3, 0);
    }
}
