//! One-stop dataset assemblies for the harness, examples and tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{Dist, GraphBuilder, NodeId};
use stgq_schedule::TimeGrid;

use crate::coauthor::{coauthor_graph, CoauthorConfig};
use crate::community::{community_graph, CommunityConfig};
use crate::schedules::{archetype_population, pool_sampled_population};
use crate::weights::{sample_distance, Tie};
use crate::Dataset;

/// The 194-person "real dataset" analog (§5.1): community graph +
/// archetype calendars over `days` days of half-hour slots.
pub fn real_analog_194(days: usize, seed: u64) -> Dataset {
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let graph = community_graph(&CommunityConfig::paper_194(), seed);
    let calendars = archetype_population(&grid, graph.node_count(), seed ^ 0x5eed);
    let ds = Dataset {
        graph,
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

/// The synthetic coauthorship dataset of Figure 1(d): `n` people, per-day
/// schedules sampled from the 194-person pool, exactly as the paper
/// describes.
pub fn synthetic_coauthor(n: usize, days: usize, seed: u64) -> Dataset {
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let graph = coauthor_graph(&CoauthorConfig::with_n(n), seed);
    let pool = archetype_population(&grid, 194, seed ^ 0x9001);
    let calendars = pool_sampled_population(&grid, &pool, n, seed ^ 0xca1e);
    let ds = Dataset {
        graph,
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

/// The paper-shaped community dataset with **coarse-grained distances**:
/// every edge weight is quantized onto `levels` rungs (hop-count-like
/// values `1..=levels`), so equal-distance ties in the engines' access
/// order are the norm rather than the exception.
///
/// The continuous-ish weights of [`real_analog_194`] leave almost no
/// equal-distance ties after eligibility clipping, which makes the
/// `availability_ordering` tie-break unobservable on fig1f-style runs;
/// real deployments often *only* have a handful of distance values
/// (hop counts, coarse closeness buckets). This scenario makes the
/// tie-break (and any tie-sensitive ordering logic) actually fire in
/// benches and tests.
pub fn coarse_distance_analog(days: usize, seed: u64, levels: Dist) -> Dataset {
    let levels = levels.max(1);
    let base = real_analog_194(days, seed);
    let max_weight = base.graph.edges().map(|e| e.weight).max().unwrap_or(1);
    let mut b = GraphBuilder::new(base.graph.node_count());
    for e in base.graph.edges() {
        // Bucket the weight range onto 1..=levels, preserving order
        // coarsely: equal buckets become genuine ties.
        let rung = 1 + (e.weight - 1) * levels / max_weight;
        b.add_edge(e.a, e.b, rung.min(levels)).unwrap();
    }
    let ds = Dataset {
        graph: b.build(),
        calendars: base.calendars,
        grid: base.grid,
    };
    debug_assert!(ds.check());
    ds
}

/// `sparse_fringe`: a community core plus a **low-degree fringe** —
/// 194 people total, so results are comparable with
/// [`real_analog_194`], but roughly half of them are organised in
/// "fans": small groups whose members all hang off one core anchor
/// with *strong* (socially close) ties, connected to each other only
/// along a path rim. Fan rim ends have two acquaintances, rim
/// interiors three, so for queries with `p − 1 − k ≥ 3` the fixpoint
/// (p, k)-core peel cascades through entire fans (the ends fall first,
/// stranding the interiors) while a one-pass degree filter only ever
/// catches the ends — and the plain engines waste frames expanding rim
/// interiors that can never seat a group.
///
/// The dense community scenarios ([`real_analog_194`],
/// [`coarse_distance_analog`]) exercise none of this — everyone has
/// dozens of acquaintances and degree filters are vacuous — which is
/// exactly why the suite needs a fringe-shaped workload too.
pub fn sparse_fringe(days: usize, seed: u64) -> Dataset {
    const CORE_N: usize = 98;
    const FAN_COUNT: usize = 24;
    const FAN_SIZE: usize = 4;
    let n = CORE_N + FAN_COUNT * FAN_SIZE; // 194, like the paper analog
    let grid = TimeGrid::half_hour(days).expect("days >= 1");

    // The core keeps the paper analog's tiered structure at ~half size.
    let core_cfg = CommunityConfig {
        n: CORE_N,
        communities: 4,
        circle_size: 12,
        circle_p: 0.90,
        intra_p: 0.10,
        inter_p: 0.012,
    };
    let core = community_graph(&core_cfg, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00F2_146E);
    let mut b = GraphBuilder::new(n);
    for e in core.edges() {
        b.add_edge(e.a, e.b, e.weight)
            .expect("core pairs are valid");
    }
    for fan in 0..FAN_COUNT {
        let base = CORE_N + fan * FAN_SIZE;
        let anchor = NodeId(rng.gen_range(0..CORE_N) as u32);
        for i in 0..FAN_SIZE {
            let v = NodeId((base + i) as u32);
            // Every fan member hangs off the same core anchor with a
            // strong tie: the whole fan sits one hop past the anchor
            // (inside radius-2 feasible graphs of the anchor's friends)
            // and its members are socially *close* — early in access
            // order — despite being structurally sparse.
            b.add_edge(anchor, v, sample_distance(&mut rng, Tie::Strong))
                .expect("distinct pair");
            if i > 0 {
                b.add_edge(
                    NodeId((base + i - 1) as u32),
                    v,
                    sample_distance(&mut rng, Tie::Strong),
                )
                .expect("distinct pair");
            }
        }
    }
    let calendars = archetype_population(&grid, n, seed ^ 0x5fe5);
    let ds = Dataset {
        graph: b.build(),
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

/// `calendar_churn`: the paper-shaped community graph with **dense,
/// long-run calendars under per-person jitter** — the adversarial
/// workload for pivot preparation itself.
///
/// Every person is available for most of every day in one long block
/// whose start/end are jittered per person per day, punched through by
/// a few per-person busy "churn" holes. The result: per-pivot maximal
/// runs are *long* (tens of slots), they overlap heavily across the
/// population, and neighbouring pivots almost always land inside the
/// same run — so an engine that recomputes each person's run from the
/// calendar words at every pivot (`stgq_core`'s `incremental_prep`
/// knob off) pays the
/// full word scan `pivots × people` times, while the incremental run
/// cache answers covered pivots by interval arithmetic and only
/// recomputes at hole boundaries. The archetype calendars of
/// [`real_analog_194`] fragment availability into short blocks, which
/// caps how much prep there is to amortize; this scenario is the
/// regime where the prep loop dominates the solve.
pub fn calendar_churn(days: usize, seed: u64) -> Dataset {
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let graph = community_graph(&CommunityConfig::paper_194(), seed);
    let n = graph.node_count();
    let spd = grid.slots_per_day();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00C4_A1C4);
    let mut calendars = Vec::with_capacity(n);
    for _ in 0..n {
        let mut cal = stgq_schedule::Calendar::new(grid.horizon());
        // Per-person jitter bias: some people start late, some leave
        // early, every day — boundaries disagree across the population.
        let bias_lo = rng.gen_range(0..4usize);
        let bias_hi = rng.gen_range(0..4usize);
        for day in 0..days {
            let base = day * spd;
            let lo = base + bias_lo + rng.gen_range(0..3usize);
            let hi = base + spd - 1 - bias_hi - rng.gen_range(0..3usize);
            if lo >= hi {
                continue;
            }
            cal.set_range(stgq_schedule::SlotRange::new(lo, hi), true);
            // Churn holes: 1–3 short busy interruptions split the long
            // block into a handful of still-long overlapping runs.
            for _ in 0..rng.gen_range(1..=3usize) {
                let at = rng.gen_range(lo..=hi);
                cal.set_available(at, false);
            }
        }
        calendars.push(cal);
    }
    let ds = Dataset {
        graph,
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

/// `plaza`: one very-high-degree initiator in front of a large, flat,
/// densely-connected eligible set — the **extraction-bound** workload.
///
/// A "plaza" is the regime where the per-query candidate space is huge
/// but the search itself is shallow: think of the organiser of a street
/// festival who is acquainted with everyone on the square. The hub
/// (vertex 0) is directly tied to all other `1200` people, so a radius-1
/// query's eligible set is the whole world; every person additionally
/// carries ~40 random acquaintances, so the CSR rows the extractor must
/// traverse are *heavy*. Descent stays shallow by construction: the
/// hub's 16-person inner circle is a distance-1 clique with the same
/// wide-open calendars as everyone else, so exact engines seat an
/// optimal group within the first few frames and the incumbent bound
/// retires the remaining ~1180 candidates wholesale.
///
/// The result: solve time is dominated by what extraction *costs*, not
/// by search — the scenario that separates the zero-copy
/// `FeasibleView` (one masked word matrix) from materializing a
/// `FeasibleGraph` (per-row neighbor/weight vectors, per-row bitsets,
/// a sort per row) and the reason both serving benches carry plaza
/// entries. The community scenarios above never enter this regime:
/// their eligible sets are a few dozen people, so extraction is noise.
pub fn plaza(days: usize, seed: u64) -> Dataset {
    const N: usize = 1200;
    const INNER: u32 = 16;
    const EXTRA_DEGREE: usize = 40;
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0071_A2A0);

    // Per-pair deterministic crowd weight: random draws may propose the
    // same pair twice, and `GraphBuilder` rejects *conflicting* repeats
    // but accepts identical ones.
    let crowd_weight = |u: u32, v: u32| -> Dist {
        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
        4 + (a.wrapping_mul(31).wrapping_add(b)) % 6
    };

    let mut b = GraphBuilder::new(N);
    let hub = NodeId(0);
    // The star: everyone on the square knows the organiser. The inner
    // circle is socially close (distance 1), the crowd further out —
    // candidate order therefore leads with the clique.
    for v in 1..N as u32 {
        let w = if v <= INNER { 1 } else { crowd_weight(0, v) };
        b.add_edge(hub, NodeId(v), w).expect("distinct pair");
    }
    // The inner circle: a strong clique, so a p-group seats immediately.
    for i in 1..=INNER {
        for j in (i + 1)..=INNER {
            b.add_edge(NodeId(i), NodeId(j), 1).expect("distinct pair");
        }
    }
    // The crowd: ~EXTRA_DEGREE acquaintances each, so every CSR row the
    // extractor walks is long.
    for v in 1..N as u32 {
        for _ in 0..EXTRA_DEGREE / 2 {
            let u = rng.gen_range(1..N as u32);
            // Skip inner-circle pairs: those already carry the clique's
            // distance-1 ties.
            if u != v && (u > INNER || v > INNER) {
                b.add_edge(NodeId(u.min(v)), NodeId(u.max(v)), crowd_weight(u, v))
                    .expect("crowd weights are per-pair deterministic");
            }
        }
    }

    // Wide-open calendars (one jittered busy slot per day per person):
    // temporal feasibility never deepens the search.
    let mut calendars = Vec::with_capacity(N);
    for _ in 0..N {
        let mut cal = stgq_schedule::Calendar::new(grid.horizon());
        cal.set_range(stgq_schedule::SlotRange::new(0, grid.horizon() - 1), true);
        for day in 0..days {
            let at = day * grid.slots_per_day() + rng.gen_range(0..grid.slots_per_day());
            cal.set_available(at, false);
        }
        calendars.push(cal);
    }
    let ds = Dataset {
        graph: b.build(),
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_analog_shape() {
        let ds = real_analog_194(7, 1);
        assert!(ds.check());
        assert_eq!(ds.graph.node_count(), 194);
        assert_eq!(ds.grid.horizon(), 336);
        assert_eq!(ds.calendars.len(), 194);
    }

    #[test]
    fn synthetic_sizes_match_figure_1d() {
        for n in [194usize, 800] {
            let ds = synthetic_coauthor(n, 1, 2);
            assert!(ds.check());
            assert_eq!(ds.graph.node_count(), n);
        }
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = real_analog_194(2, 77);
        let b = real_analog_194(2, 77);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.calendars, b.calendars);
    }

    #[test]
    fn coarse_distances_have_few_levels_and_many_ties() {
        use std::collections::BTreeMap;
        let fine = real_analog_194(2, 9);
        let ds = coarse_distance_analog(2, 9, 3);
        assert_eq!(ds.graph.node_count(), fine.graph.node_count());
        assert_eq!(ds.graph.edges().count(), fine.graph.edges().count());
        assert_eq!(ds.calendars, fine.calendars, "schedules are untouched");

        let mut histogram: BTreeMap<u64, usize> = BTreeMap::new();
        for e in ds.graph.edges() {
            assert!((1..=3).contains(&e.weight));
            *histogram.entry(e.weight).or_default() += 1;
        }
        assert!(
            histogram.len() >= 2,
            "quantization must keep at least two rungs, got {histogram:?}"
        );
        let edges = ds.graph.edges().count();
        assert!(
            histogram.values().max().unwrap() * 2 > edges / 2,
            "coarse rungs must create massive tie groups"
        );
    }

    #[test]
    fn coarse_distances_are_reproducible() {
        let a = coarse_distance_analog(1, 5, 4);
        let b = coarse_distance_analog(1, 5, 4);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sparse_fringe_shape_and_degrees() {
        let ds = sparse_fringe(2, 11);
        assert!(ds.check());
        assert_eq!(ds.graph.node_count(), 194);
        // Fringe members (ids 98..194) have degree 2 (rim ends) or 3
        // (rim interiors) — the structure the fixpoint peel cascades
        // through.
        for v in 98..194u32 {
            let d = ds.graph.degree(stgq_graph::NodeId(v));
            assert!(
                (2..=3).contains(&d),
                "fringe member {v} has degree {d}, expected 2..=3"
            );
        }
        // The core stays community-dense: mean degree well above the
        // fringe's.
        let core_degrees: usize = (0..98u32)
            .map(|v| ds.graph.degree(stgq_graph::NodeId(v)))
            .sum();
        assert!(core_degrees / 98 >= 8, "core must stay dense");
    }

    #[test]
    fn calendar_churn_is_dense_with_long_runs() {
        let ds = calendar_churn(3, 7);
        assert!(ds.check());
        assert_eq!(ds.graph.node_count(), 194);
        let spd = ds.grid.slots_per_day();
        let all = stgq_schedule::SlotRange::new(0, ds.grid.horizon() - 1);
        let mut dense = 0usize;
        let mut long_runs = 0usize;
        for cal in &ds.calendars {
            // Dense: most of each day available despite jitter + holes.
            if cal.count_available() * 10 >= ds.grid.horizon() * 6 {
                dense += 1;
            }
            // Long runs: the churn holes split days into runs still far
            // longer than any fig1f pivot interval (m = 16 ⇒ 31 slots).
            if cal.max_run_in(all) >= spd / 4 {
                long_runs += 1;
            }
        }
        assert!(dense >= 150, "only {dense}/194 calendars are dense");
        assert!(long_runs >= 150, "only {long_runs}/194 have long runs");
    }

    #[test]
    fn calendar_churn_is_reproducible() {
        let a = calendar_churn(2, 5);
        let b = calendar_churn(2, 5);
        assert_eq!(a.calendars, b.calendars);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sparse_fringe_is_reproducible() {
        let a = sparse_fringe(1, 3);
        let b = sparse_fringe(1, 3);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.calendars, b.calendars);
    }

    #[test]
    fn plaza_hub_sees_the_whole_square() {
        let ds = plaza(2, 13);
        assert!(ds.check());
        let n = ds.graph.node_count();
        assert_eq!(n, 1200);
        // The hub knows everyone: a radius-1 feasible set is the world.
        assert_eq!(ds.graph.degree(stgq_graph::NodeId(0)), n - 1);
        // Crowd rows are heavy — that's what makes extraction the cost.
        let mean_degree: usize = (1..n as u32)
            .map(|v| ds.graph.degree(stgq_graph::NodeId(v)))
            .sum::<usize>()
            / (n - 1);
        assert!(
            mean_degree >= 20,
            "crowd mean degree {mean_degree} too light"
        );
        // Calendars are near-full: descent stays shallow.
        for cal in &ds.calendars {
            assert!(cal.count_available() * 10 >= ds.grid.horizon() * 9);
        }
    }

    #[test]
    fn plaza_is_reproducible() {
        let a = plaza(1, 4);
        let b = plaza(1, 4);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.calendars, b.calendars);
    }

    #[test]
    fn different_seeds_differ() {
        let a = real_analog_194(1, 1);
        let b = real_analog_194(1, 2);
        assert_ne!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }
}
