//! One-stop dataset assemblies for the harness, examples and tests.

use stgq_schedule::TimeGrid;

use crate::coauthor::{coauthor_graph, CoauthorConfig};
use crate::community::{community_graph, CommunityConfig};
use crate::schedules::{archetype_population, pool_sampled_population};
use crate::Dataset;

/// The 194-person "real dataset" analog (§5.1): community graph +
/// archetype calendars over `days` days of half-hour slots.
pub fn real_analog_194(days: usize, seed: u64) -> Dataset {
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let graph = community_graph(&CommunityConfig::paper_194(), seed);
    let calendars = archetype_population(&grid, graph.node_count(), seed ^ 0x5eed);
    let ds = Dataset {
        graph,
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

/// The synthetic coauthorship dataset of Figure 1(d): `n` people, per-day
/// schedules sampled from the 194-person pool, exactly as the paper
/// describes.
pub fn synthetic_coauthor(n: usize, days: usize, seed: u64) -> Dataset {
    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let graph = coauthor_graph(&CoauthorConfig::with_n(n), seed);
    let pool = archetype_population(&grid, 194, seed ^ 0x9001);
    let calendars = pool_sampled_population(&grid, &pool, n, seed ^ 0xca1e);
    let ds = Dataset {
        graph,
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_analog_shape() {
        let ds = real_analog_194(7, 1);
        assert!(ds.check());
        assert_eq!(ds.graph.node_count(), 194);
        assert_eq!(ds.grid.horizon(), 336);
        assert_eq!(ds.calendars.len(), 194);
    }

    #[test]
    fn synthetic_sizes_match_figure_1d() {
        for n in [194usize, 800] {
            let ds = synthetic_coauthor(n, 1, 2);
            assert!(ds.check());
            assert_eq!(ds.graph.node_count(), n);
        }
    }

    #[test]
    fn datasets_are_reproducible() {
        let a = real_analog_194(2, 77);
        let b = real_analog_194(2, 77);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.calendars, b.calendars);
    }

    #[test]
    fn different_seeds_differ() {
        let a = real_analog_194(1, 1);
        let b = real_analog_194(1, 2);
        assert_ne!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }
}
