//! Community-structured social graphs — the analog of the paper's
//! 194-person dataset "from various communities, e.g., schools,
//! government, business, and industry" (§5.1).
//!
//! Three tiers of ties mirror real acquaintance structure:
//!
//! 1. **circles** — small friend circles (~10 people) inside each
//!    community, near-clique density. These make the paper's tight queries
//!    (k = 2 at p = 11) feasible, as they are on real friendship data;
//! 2. **communities** — moderate density between circles of the same
//!    community;
//! 3. **global** — sparse weak ties across communities.
//!
//! Distances come from simulated interaction frequencies ([`crate::weights`]):
//! circle ties are closest, cross-community ties farthest.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId, SocialGraph};

use crate::weights::{sample_distance, Tie};

/// Parameters of the tiered community model.
#[derive(Clone, Debug)]
pub struct CommunityConfig {
    /// Total people.
    pub n: usize,
    /// Number of communities (people are split round-robin-uniformly).
    pub communities: usize,
    /// Target friend-circle size within a community.
    pub circle_size: usize,
    /// Edge probability inside a circle (near-clique).
    pub circle_p: f64,
    /// Edge probability within a community, across circles.
    pub intra_p: f64,
    /// Edge probability across communities.
    pub inter_p: f64,
}

impl CommunityConfig {
    /// The 194-person real-data analog: 6 communities of ~32, friend
    /// circles of ~12 at 90% density (real friendship data is locally
    /// near-clique — the paper finds k=2-feasible groups up to p=11).
    pub fn paper_194() -> Self {
        CommunityConfig {
            n: 194,
            communities: 6,
            circle_size: 12,
            circle_p: 0.90,
            intra_p: 0.10,
            inter_p: 0.012,
        }
    }
}

/// Generate a tiered community graph; deterministic in `seed`.
pub fn community_graph(cfg: &CommunityConfig, seed: u64) -> SocialGraph {
    assert!(cfg.n > 1, "need at least two people");
    assert!(cfg.communities >= 1 && cfg.circle_size >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);

    // communities round-robin; circles are contiguous chunks of each
    // community's member list.
    let community: Vec<usize> = (0..cfg.n).map(|i| i % cfg.communities).collect();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.communities];
    for (i, &c) in community.iter().enumerate() {
        members[c].push(i as u32);
    }
    let mut circle = vec![0usize; cfg.n];
    let mut next_circle = 0usize;
    for comm in &members {
        for chunk in comm.chunks(cfg.circle_size) {
            for &v in chunk {
                circle[v as usize] = next_circle;
            }
            next_circle += 1;
        }
    }

    let mut b = GraphBuilder::new(cfg.n);
    for i in 0..cfg.n as u32 {
        for j in i + 1..cfg.n as u32 {
            let (iu, ju) = (i as usize, j as usize);
            let (p, tie) = if circle[iu] == circle[ju] {
                (cfg.circle_p, Tie::Strong)
            } else if community[iu] == community[ju] {
                (cfg.intra_p, Tie::Strong)
            } else {
                (cfg.inter_p, Tie::Weak)
            };
            if p > 0.0 && rng.gen_bool(p) {
                let w = sample_distance(&mut rng, tie);
                b.add_edge(NodeId(i), NodeId(j), w)
                    .expect("validated pairs");
            }
        }
    }
    // Connectivity floor: nobody is isolated.
    for i in 0..cfg.n as u32 {
        let comm = &members[community[i as usize]];
        if comm.len() > 1 {
            let has_edge = comm
                .iter()
                .any(|&j| j != i && b.has_edge(NodeId(i), NodeId(j)))
                || (0..cfg.n as u32).any(|j| j != i && b.has_edge(NodeId(i), NodeId(j)));
            if !has_edge {
                let mut j = comm[rng.gen_range(0..comm.len())];
                while j == i {
                    j = comm[rng.gen_range(0..comm.len())];
                }
                let w = sample_distance(&mut rng, Tie::Strong);
                b.add_edge(NodeId(i), NodeId(j), w).expect("distinct pair");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::analysis;

    #[test]
    fn deterministic_in_seed() {
        let cfg = CommunityConfig {
            circle_size: 8,
            ..CommunityConfig::paper_194()
        };
        let a = community_graph(&cfg, 42);
        let b = community_graph(&cfg, 42);
        let c = community_graph(&cfg, 43);
        let edges = |g: &SocialGraph| g.edges().map(|e| (e.a, e.b, e.weight)).collect::<Vec<_>>();
        assert_eq!(edges(&a), edges(&b));
        assert_ne!(edges(&a), edges(&c), "different seed, different graph");
    }

    #[test]
    fn paper_config_has_realistic_shape() {
        let g = community_graph(&CommunityConfig::paper_194(), 7);
        assert_eq!(g.node_count(), 194);
        let stats = analysis::degree_stats(&g).unwrap();
        assert!(stats.min >= 1, "no isolated people");
        assert!(
            stats.mean > 8.0 && stats.mean < 30.0,
            "egocentric neighborhoods of realistic size, got mean {}",
            stats.mean
        );
        // One dominant component covering nearly everyone.
        let comps = analysis::connected_components(&g);
        assert!(comps[0].len() as f64 > 0.95 * 194.0);
        // Friend circles make it strongly clustered.
        assert!(analysis::global_clustering(&g) > 0.3);
    }

    #[test]
    fn circles_support_tight_acquaintance_groups() {
        // The first circle (v0, v6, v12, … — round-robin community 0) at
        // 85% density must contain a large low-unfamiliarity subgroup;
        // check a weaker, robust property: some member of circle 0 has ≥ 8
        // circle-mates as neighbors.
        let cfg = CommunityConfig::paper_194();
        let g = community_graph(&cfg, 7);
        let circle0: Vec<NodeId> = (0..cfg.n as u32)
            .map(NodeId)
            .filter(|v| v.index() % cfg.communities == 0)
            .take(cfg.circle_size)
            .collect();
        let best = circle0
            .iter()
            .map(|&v| {
                circle0
                    .iter()
                    .filter(|&&u| u != v && g.has_edge(u, v))
                    .count()
            })
            .max()
            .unwrap();
        assert!(best >= 7, "densest circle member has {best} circle friends");
    }

    #[test]
    fn intra_community_edges_dominate() {
        let cfg = CommunityConfig {
            n: 120,
            communities: 4,
            ..CommunityConfig::paper_194()
        };
        let g = community_graph(&cfg, 11);
        let same = |v: NodeId| v.index() % 4;
        let (mut intra, mut inter) = (0usize, 0usize);
        for e in g.edges() {
            if same(e.a) == same(e.b) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 3 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn cross_community_ties_are_socially_farther_on_average() {
        let g = community_graph(&CommunityConfig::paper_194(), 3);
        let (mut intra, mut nintra, mut inter, mut ninter) = (0u64, 0u64, 0u64, 0u64);
        for e in g.edges() {
            if e.a.index() % 6 == e.b.index() % 6 {
                intra += e.weight;
                nintra += 1;
            } else {
                inter += e.weight;
                ninter += 1;
            }
        }
        let intra_avg = intra as f64 / nintra as f64;
        let inter_avg = inter as f64 / ninter as f64;
        assert!(
            intra_avg < inter_avg,
            "intra {intra_avg:.1} vs inter {inter_avg:.1}"
        );
    }

    #[test]
    fn single_community_degenerate_case() {
        let cfg = CommunityConfig {
            n: 10,
            communities: 1,
            circle_size: 5,
            circle_p: 0.9,
            intra_p: 0.2,
            inter_p: 0.0,
        };
        let g = community_graph(&cfg, 5);
        assert_eq!(g.node_count(), 10);
        assert!(analysis::degree_stats(&g).unwrap().min >= 1);
    }
}
