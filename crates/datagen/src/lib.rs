//! Synthetic datasets reproducing the paper's experimental inputs.
//!
//! The paper evaluates on (a) a **194-person real dataset** gathered from
//! several communities with Google-Calendar schedules and interaction-
//! derived social distances, and (b) a **synthetic 12,800-person network**
//! generated from a coauthorship network, with per-day schedules sampled
//! from the real 194-person pool. Neither dataset is published, so this
//! crate builds the closest synthetic equivalents (see DESIGN.md for the
//! substitution argument):
//!
//! * [`community`] — a seeded community-structured graph (the 194-person
//!   analog): dense within communities, sparse across, with distances
//!   derived from simulated interaction frequencies ([`weights`]);
//! * [`coauthor`] — an affiliation (overlapping collaboration groups)
//!   model with the heavy-tailed degrees and high clustering of
//!   coauthorship networks, scalable to 12,800 and beyond;
//! * [`ba`] / [`ws`] / [`er`] — Barabási–Albert, Watts–Strogatz and
//!   Erdős–Rényi reference models (used in tests to check the coauthor
//!   model is *more* clustered than a degree-matched random network);
//! * [`schedules`] — behavioural calendar archetypes (office / student /
//!   shift / flexible) at half-hour granularity, plus the paper's
//!   pool-sampling scheme for scaling schedules to synthetic populations;
//! * [`scenario`] — one-stop dataset assemblies used by the benchmark
//!   harness and the examples.
//!
//! Everything is deterministic in the seed (rand `SmallRng`), so every
//! figure in EXPERIMENTS.md is exactly reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ba;
pub mod coauthor;
pub mod community;
pub mod er;
pub mod io;
pub mod metropolis;
pub mod scenario;
pub mod schedules;
pub mod weights;
pub mod ws;

use stgq_graph::SocialGraph;
use stgq_schedule::{Calendar, TimeGrid};

/// A complete experimental dataset: social graph plus per-person calendars
/// on a common grid.
pub struct Dataset {
    /// The social network (distances on edges).
    pub graph: SocialGraph,
    /// One calendar per vertex, indexed by vertex id.
    pub calendars: Vec<Calendar>,
    /// The slot coordinate system the calendars live on.
    pub grid: TimeGrid,
}

impl Dataset {
    /// Sanity invariant: one calendar per vertex, all on the grid horizon.
    pub fn check(&self) -> bool {
        self.calendars.len() == self.graph.node_count()
            && self
                .calendars
                .iter()
                .all(|c| c.horizon() == self.grid.horizon())
    }
}

/// Pick a deterministic initiator whose degree is closest to `target`
/// (ties to the smaller id). The benchmark harness uses this so the
/// exhaustive baseline's `C(deg, p−1)` work is controlled and comparable
/// across datasets.
pub fn pick_initiator(graph: &SocialGraph, target_degree: usize) -> stgq_graph::NodeId {
    graph
        .nodes()
        .min_by_key(|&v| {
            let d = graph.degree(v);
            (d.abs_diff(target_degree), v.0)
        })
        .expect("graph must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_initiator_prefers_exact_degree() {
        let mut b = stgq_graph::GraphBuilder::new(4);
        // degrees: v0=3, v1=1, v2=2, v3=2
        b.add_edge(stgq_graph::NodeId(0), stgq_graph::NodeId(1), 1)
            .unwrap();
        b.add_edge(stgq_graph::NodeId(0), stgq_graph::NodeId(2), 1)
            .unwrap();
        b.add_edge(stgq_graph::NodeId(0), stgq_graph::NodeId(3), 1)
            .unwrap();
        b.add_edge(stgq_graph::NodeId(2), stgq_graph::NodeId(3), 1)
            .unwrap();
        let g = b.build();
        assert_eq!(pick_initiator(&g, 3), stgq_graph::NodeId(0));
        assert_eq!(
            pick_initiator(&g, 2),
            stgq_graph::NodeId(2),
            "tie → smaller id"
        );
        assert_eq!(pick_initiator(&g, 100), stgq_graph::NodeId(0));
    }
}
