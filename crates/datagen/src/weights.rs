//! Interaction-derived social distances.
//!
//! The paper derives each edge's social distance from "the interaction
//! between the two corresponding people, such as the frequency of meeting,
//! phone calls, and mails" (§5.1, citing [10, 12, 13]). We model the
//! interaction count per relationship and convert it to a distance with a
//! decreasing map: frequent contact ⇒ small distance. The constants were
//! picked so generated distances fall in the 1–60 range of the paper's
//! worked examples (8–30 for typical friendships).

use rand::Rng;
use stgq_graph::Dist;

/// Convert an interaction frequency (contacts per observation window) to a
/// social distance: `max(1, ⌈60 / (1 + freq)⌉)`.
pub fn distance_from_interactions(freq: u32) -> Dist {
    let d = 60 / (1 + u64::from(freq));
    d.max(1)
}

/// Tie strength classes used by the generators; they only differ in the
/// interaction-count distribution they draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tie {
    /// Same community / frequent collaborators.
    Strong,
    /// Cross-community acquaintances.
    Weak,
}

/// Sample an interaction count for a tie class.
pub fn sample_interactions(rng: &mut impl Rng, tie: Tie) -> u32 {
    match tie {
        // Frequent: 2..40 contacts, skewed low via min of two draws being
        // avoided (uniform is fine for distance diversity).
        Tie::Strong => rng.gen_range(2..40),
        // Rare: 0..6 contacts.
        Tie::Weak => rng.gen_range(0..6),
    }
}

/// Sample a distance directly for a tie class.
pub fn sample_distance(rng: &mut impl Rng, tie: Tie) -> Dist {
    distance_from_interactions(sample_interactions(rng, tie))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_decreasing_in_frequency() {
        let mut prev = Dist::MAX;
        for f in 0..100 {
            let d = distance_from_interactions(f);
            assert!(d <= prev, "f={f}");
            assert!(d >= 1);
            prev = d;
        }
        assert_eq!(distance_from_interactions(0), 60);
        assert_eq!(distance_from_interactions(59), 1);
    }

    #[test]
    fn strong_ties_are_closer_on_average() {
        let mut rng = SmallRng::seed_from_u64(7);
        let avg = |tie, rng: &mut SmallRng| -> f64 {
            (0..2000)
                .map(|_| sample_distance(rng, tie) as f64)
                .sum::<f64>()
                / 2000.0
        };
        let strong = avg(Tie::Strong, &mut rng);
        let weak = avg(Tie::Weak, &mut rng);
        assert!(
            strong < weak,
            "strong ties must be closer: strong={strong:.1} weak={weak:.1}"
        );
    }

    #[test]
    fn distances_are_always_positive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sample_distance(&mut rng, Tie::Strong) >= 1);
            assert!(sample_distance(&mut rng, Tie::Weak) >= 1);
        }
    }
}
