//! Dataset snapshots: save a generated [`Dataset`] to JSON and load it
//! back bit-for-bit. This is what makes every experiment exactly
//! re-runnable (and lets external tools inspect the inputs): the harness
//! seeds are deterministic, but a snapshot decouples results from the
//! generator version too.

use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use stgq_graph::{GraphData, GraphError};
use stgq_schedule::{Calendar, ScheduleError, TimeGrid};

use crate::Dataset;

/// Serializable form of a [`Dataset`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetData {
    /// Edge-list form of the social graph.
    pub graph: GraphData,
    /// Availability bitmaps, one per vertex.
    pub calendars: Vec<Calendar>,
    /// The slot coordinate system.
    pub grid: TimeGrid,
}

/// Errors from snapshot round-trips.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem or stream failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The graph inside the snapshot fails validation.
    Graph(GraphError),
    /// The calendars do not match the grid or the graph.
    Inconsistent(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Json(e) => write!(f, "snapshot JSON error: {e}"),
            SnapshotError::Graph(e) => write!(f, "snapshot graph invalid: {e}"),
            SnapshotError::Inconsistent(why) => write!(f, "snapshot inconsistent: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Json(e)
    }
}
impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}
impl From<ScheduleError> for SnapshotError {
    fn from(e: ScheduleError) -> Self {
        SnapshotError::Inconsistent(e.to_string())
    }
}

impl DatasetData {
    /// Snapshot a dataset.
    pub fn from_dataset(ds: &Dataset) -> Self {
        DatasetData {
            graph: GraphData::from_graph(&ds.graph),
            calendars: ds.calendars.clone(),
            grid: ds.grid,
        }
    }

    /// Rebuild the dataset, re-validating the graph and the calendar/grid
    /// consistency.
    pub fn into_dataset(self) -> Result<Dataset, SnapshotError> {
        let graph = self.graph.into_graph()?;
        if self.calendars.len() != graph.node_count() {
            return Err(SnapshotError::Inconsistent(format!(
                "{} calendars for {} vertices",
                self.calendars.len(),
                graph.node_count()
            )));
        }
        for (i, c) in self.calendars.iter().enumerate() {
            if c.horizon() != self.grid.horizon() {
                return Err(SnapshotError::Inconsistent(format!(
                    "calendar {i} horizon {} != grid horizon {}",
                    c.horizon(),
                    self.grid.horizon()
                )));
            }
        }
        Ok(Dataset {
            graph,
            calendars: self.calendars,
            grid: self.grid,
        })
    }
}

/// Write a dataset snapshot as pretty JSON.
pub fn save_dataset(ds: &Dataset, path: &Path) -> Result<(), SnapshotError> {
    let data = DatasetData::from_dataset(ds);
    let json = serde_json::to_string(&data)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Load a dataset snapshot.
pub fn load_dataset(path: &Path) -> Result<Dataset, SnapshotError> {
    let mut json = String::new();
    std::fs::File::open(path)?.read_to_string(&mut json)?;
    let data: DatasetData = serde_json::from_str(&json)?;
    data.into_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::real_analog_194;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = real_analog_194(1, 5);
        let data = DatasetData::from_dataset(&ds);
        let back = data.clone().into_dataset().unwrap();
        assert_eq!(
            back.graph.edges().collect::<Vec<_>>(),
            ds.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(back.calendars, ds.calendars);
        assert_eq!(back.grid, ds.grid);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join("stgq_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let ds = real_analog_194(1, 6);
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert!(back.check());
        assert_eq!(back.graph.edge_count(), ds.graph.edge_count());
    }

    #[test]
    fn inconsistent_snapshots_are_rejected() {
        let ds = real_analog_194(1, 7);
        let mut data = DatasetData::from_dataset(&ds);
        data.calendars.pop();
        assert!(matches!(
            data.clone().into_dataset(),
            Err(SnapshotError::Inconsistent(_))
        ));
        let mut bad_grid = DatasetData::from_dataset(&ds);
        bad_grid.grid = TimeGrid::half_hour(2).unwrap();
        assert!(matches!(
            bad_grid.into_dataset(),
            Err(SnapshotError::Inconsistent(_))
        ));
    }

    #[test]
    fn corrupt_json_is_an_error() {
        let dir = std::env::temp_dir().join("stgq_snapshot_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(load_dataset(&path), Err(SnapshotError::Json(_))));
    }
}
