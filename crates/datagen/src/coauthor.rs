//! Affiliation-model coauthorship networks — the analog of the paper's
//! synthetic dataset "generated from a coauthorship network" \[7\], scaled
//! from 194 to 12,800 people (Figure 1(d)).
//!
//! People join collaborations (papers); each collaboration is a clique.
//! Authors are drawn from a Pólya urn (once per person initially, plus one
//! entry per prior collaboration), which yields the heavy-tailed degree
//! distribution of real coauthorship data, while the clique structure
//! yields its high clustering. Edge distances decrease with the number of
//! joint collaborations.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId, SocialGraph};

use crate::weights::{distance_from_interactions, sample_distance, Tie};

/// Parameters of the affiliation model.
#[derive(Clone, Debug)]
pub struct CoauthorConfig {
    /// Number of people.
    pub n: usize,
    /// Collaborations per person (the model generates `⌈n·rate⌉` groups).
    pub collaborations_per_person: f64,
    /// Smallest collaboration size.
    pub min_size: usize,
    /// Largest collaboration size.
    pub max_size: usize,
}

impl CoauthorConfig {
    /// Defaults shaped after coauthorship statistics: ~1.3 papers/person,
    /// 2–6 authors per paper.
    pub fn with_n(n: usize) -> Self {
        CoauthorConfig {
            n,
            collaborations_per_person: 1.3,
            min_size: 2,
            max_size: 6,
        }
    }
}

/// Generate a coauthorship graph; deterministic in `seed`.
pub fn coauthor_graph(cfg: &CoauthorConfig, seed: u64) -> SocialGraph {
    assert!(cfg.n > 1);
    assert!(cfg.min_size >= 2 && cfg.max_size >= cfg.min_size);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Pólya urn: start with one ticket per person.
    let mut urn: Vec<u32> = (0..cfg.n as u32).collect();
    let groups = ((cfg.n as f64) * cfg.collaborations_per_person).ceil() as usize;
    let mut joint: HashMap<(u32, u32), u32> = HashMap::new();
    let mut in_any = vec![false; cfg.n];

    let mut members: Vec<u32> = Vec::with_capacity(cfg.max_size);
    for _ in 0..groups {
        let size = rng.gen_range(cfg.min_size..=cfg.max_size).min(cfg.n);
        members.clear();
        let mut guard = 0;
        while members.len() < size && guard < 50 * size {
            guard += 1;
            let pick = urn[rng.gen_range(0..urn.len())];
            if !members.contains(&pick) {
                members.push(pick);
            }
        }
        for &m in &members {
            urn.push(m);
            in_any[m as usize] = true;
        }
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                let key = (members[i].min(members[j]), members[i].max(members[j]));
                *joint.entry(key).or_insert(0) += 1;
            }
        }
    }

    let mut b = GraphBuilder::new(cfg.n);
    // Deterministic edge order: sort the pair map.
    let mut pairs: Vec<((u32, u32), u32)> = joint.into_iter().collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    for ((a, v), count) in pairs {
        // 4 interactions per joint collaboration plus noise.
        let freq = 4 * count + rng.gen_range(0..4);
        b.add_edge(NodeId(a), NodeId(v), distance_from_interactions(freq))
            .expect("pairs are distinct and in range");
    }
    // Attach anyone the urn never produced (rare for small n).
    for v in 0..cfg.n as u32 {
        if !in_any[v as usize] {
            let mut w = rng.gen_range(0..cfg.n as u32);
            while w == v {
                w = rng.gen_range(0..cfg.n as u32);
            }
            if !b.has_edge(NodeId(v), NodeId(w)) {
                b.add_edge(NodeId(v), NodeId(w), sample_distance(&mut rng, Tie::Weak))
                    .expect("distinct pair");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::analysis;

    #[test]
    fn deterministic_in_seed() {
        let cfg = CoauthorConfig::with_n(150);
        let a = coauthor_graph(&cfg, 9);
        let b = coauthor_graph(&cfg, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn no_isolated_people() {
        let g = coauthor_graph(&CoauthorConfig::with_n(200), 3);
        let stats = analysis::degree_stats(&g).unwrap();
        assert!(stats.min >= 1);
    }

    #[test]
    fn heavy_tail_and_clustering() {
        let g = coauthor_graph(&CoauthorConfig::with_n(800), 21);
        let stats = analysis::degree_stats(&g).unwrap();
        // Preferential attachment: the max degree dwarfs the median.
        assert!(
            stats.max >= 4 * stats.median.max(1),
            "expected hubs: max {} median {}",
            stats.max,
            stats.median
        );
        // Clique-based growth: clustering far above a random graph's.
        let c = analysis::global_clustering(&g);
        let dens = analysis::density(&g);
        assert!(
            c > 5.0 * dens,
            "coauthorship clustering {c:.3} should far exceed density {dens:.4}"
        );
        assert!(c > 0.15, "absolute clustering too low: {c:.3}");
    }

    #[test]
    fn scales_to_figure_1d_sizes() {
        // 12,800 is the paper's largest size; just check it builds fast and
        // has sane shape (full scale is exercised by the harness).
        let g = coauthor_graph(&CoauthorConfig::with_n(3200), 5);
        assert_eq!(g.node_count(), 3200);
        let mean = analysis::degree_stats(&g).unwrap().mean;
        assert!(mean > 2.0 && mean < 30.0, "mean degree {mean}");
    }
}
