//! Calendar generation.
//!
//! The paper collected real Google-Calendar schedules from 194 people; the
//! synthetic population's "schedule of each person in each day is randomly
//! assigned from the above 194-people real dataset". We generate the base
//! pool from behavioural **archetypes** at half-hour granularity, then
//! scale exactly the way the paper does: per-person-per-day sampling from
//! that pool ([`pool_sampled_population`]).
//!
//! Crucially, calendars are built the way real ones are: a contiguous
//! *awake-and-free* background with busy **events** punched out — not
//! per-slot coin flips. Real free time is contiguous, which is what makes
//! long activity windows (the paper benchmarks m up to 24 half-hour slots)
//! occasionally feasible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_schedule::{Calendar, SlotRange, TimeGrid};

/// Behavioural schedule archetypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    /// 9-to-17:30 work busy on weekdays; evenings and weekends mostly free.
    Office,
    /// Scattered class blocks on weekdays; generous free time otherwise.
    Student,
    /// Night shifts (20:00–08:00 busy); free mid-day.
    Shift,
    /// No fixed structure; a few random events per day.
    Flexible,
}

/// All archetypes, for round-robin population mixes.
pub const ARCHETYPES: [Archetype; 4] = [
    Archetype::Office,
    Archetype::Student,
    Archetype::Shift,
    Archetype::Flexible,
];

/// Convert fractional hours to a slot-of-day index, clamped to the day.
fn hour_slot(grid: &TimeGrid, hour: f64) -> usize {
    let spd = grid.slots_per_day() as f64;
    (((hour / 24.0) * spd).round() as usize).min(grid.slots_per_day())
}

/// Mark `[from_hour, to_hour)` of `day` with the given availability.
fn paint(cal: &mut Calendar, grid: &TimeGrid, day: usize, from: f64, to: f64, available: bool) {
    let lo = hour_slot(grid, from);
    let hi = hour_slot(grid, to);
    if lo < hi {
        let base = day * grid.slots_per_day();
        cal.set_range(SlotRange::new(base + lo, base + hi - 1), available);
    }
}

/// Generate one person's calendar for an archetype. Days are weekly:
/// `day % 7 ∈ {5, 6}` are weekend days.
pub fn archetype_calendar(rng: &mut SmallRng, archetype: Archetype, grid: &TimeGrid) -> Calendar {
    let mut cal = Calendar::new(grid.horizon());
    for day in 0..grid.days() {
        let weekend = day % 7 >= 5;
        // Awake-and-free background, then punch busy events out.
        match archetype {
            Archetype::Office => {
                if weekend {
                    paint(&mut cal, grid, day, 9.0, 23.0, true);
                    punch_events(&mut cal, rng, grid, day, 9.0, 23.0, 1..=3);
                } else {
                    paint(&mut cal, grid, day, 7.0, 23.0, true);
                    paint(&mut cal, grid, day, 8.5, 17.5, false); // work + commute
                    punch_events(&mut cal, rng, grid, day, 18.0, 23.0, 0..=2);
                }
            }
            Archetype::Student => {
                if weekend {
                    paint(&mut cal, grid, day, 10.0, 24.0, true);
                    punch_events(&mut cal, rng, grid, day, 10.0, 24.0, 1..=2);
                } else {
                    paint(&mut cal, grid, day, 8.0, 23.5, true);
                    for _ in 0..rng.gen_range(2..=4) {
                        let start = 8.0 + 0.5 * rng.gen_range(0..=18) as f64;
                        paint(&mut cal, grid, day, start, start + 1.5, false);
                    }
                }
            }
            Archetype::Shift => {
                paint(&mut cal, grid, day, 9.0, 19.0, true);
                punch_events(&mut cal, rng, grid, day, 9.0, 19.0, 0..=1);
            }
            Archetype::Flexible => {
                paint(&mut cal, grid, day, 8.0, 23.5, true);
                punch_events(&mut cal, rng, grid, day, 8.0, 23.5, 2..=4);
            }
        }
    }
    cal
}

/// Punch `count ∈ range` busy events of 1–3 hours into `[from, to)`.
fn punch_events(
    cal: &mut Calendar,
    rng: &mut SmallRng,
    grid: &TimeGrid,
    day: usize,
    from: f64,
    to: f64,
    count: std::ops::RangeInclusive<usize>,
) {
    let events = rng.gen_range(count);
    for _ in 0..events {
        let len = 0.5 * rng.gen_range(2..=6) as f64; // 1–3 hours
        if to - from > len {
            let latest = to - len;
            let start = from + 0.5 * rng.gen_range(0..=((latest - from) / 0.5) as u32) as f64;
            paint(cal, grid, day, start, start + len, false);
        }
    }
}

/// A population of `n` calendars with a round-robin archetype mix,
/// deterministic in `seed`.
pub fn archetype_population(grid: &TimeGrid, n: usize, seed: u64) -> Vec<Calendar> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| archetype_calendar(&mut rng, ARCHETYPES[i % ARCHETYPES.len()], grid))
        .collect()
}

/// Scale schedules the paper's way: each person's **each day** is copied
/// from a uniformly random (person, day) of the `pool`.
///
/// # Panics
/// Panics if the pool is empty or pool calendars do not align to whole
/// days of `grid.slots_per_day()` slots.
pub fn pool_sampled_population(
    grid: &TimeGrid,
    pool: &[Calendar],
    n: usize,
    seed: u64,
) -> Vec<Calendar> {
    assert!(!pool.is_empty(), "pool must be non-empty");
    let spd = grid.slots_per_day();
    let pool_days: Vec<usize> = pool
        .iter()
        .map(|c| {
            assert_eq!(
                c.horizon() % spd,
                0,
                "pool calendars must align to whole days"
            );
            c.horizon() / spd
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut cal = Calendar::new(grid.horizon());
            for day in 0..grid.days() {
                let who = rng.gen_range(0..pool.len());
                let src_day = rng.gen_range(0..pool_days[who]);
                for sod in 0..spd {
                    if pool[who].is_available(src_day * spd + sod) {
                        cal.set_available(day * spd + sod, true);
                    }
                }
            }
            cal
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TimeGrid {
        TimeGrid::half_hour(7).unwrap()
    }

    #[test]
    fn office_workers_are_busy_at_work_free_in_the_evening() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut evening_free = 0u32;
        for _ in 0..50 {
            let c = archetype_calendar(&mut rng, Archetype::Office, &g);
            // Tuesday 10:00 (slot 20 of day 1): at work, never free.
            assert!(!c.is_available(48 + 20));
            // Tuesday 19:00 (slot 38): usually free.
            if c.is_available(48 + 38) {
                evening_free += 1;
            }
        }
        assert!(
            evening_free > 25,
            "evenings are mostly free: {evening_free}/50"
        );
    }

    #[test]
    fn free_time_is_contiguous_enough_for_long_windows() {
        // Real calendars have long free runs; check weekends regularly
        // offer 8+ hour (16-slot) runs across a small population.
        let g = grid();
        let pop = archetype_population(&g, 40, 9);
        let weekend = SlotRange::new(5 * 48, 7 * 48 - 1);
        let long_runs = pop.iter().filter(|c| c.max_run_in(weekend) >= 16).count();
        assert!(
            long_runs >= 20,
            "only {long_runs}/40 have an 8h weekend run"
        );
    }

    #[test]
    fn shift_workers_complement_office_workers() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(4);
        let c = archetype_calendar(&mut rng, Archetype::Shift, &g);
        // Never available at 23:00 (slot 46) or 03:00 (slot 6).
        for day in 0..7 {
            assert!(!c.is_available(day * 48 + 46));
            assert!(!c.is_available(day * 48 + 6));
        }
        // Frequently available mid-day across the week.
        let midday: usize = (0..7).filter(|d| c.is_available(d * 48 + 28)).count();
        assert!(midday >= 3);
    }

    #[test]
    fn population_is_deterministic_and_mixed() {
        let g = grid();
        let a = archetype_population(&g, 20, 9);
        let b = archetype_population(&g, 20, 9);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different people differ");
        for c in &a {
            assert_eq!(c.horizon(), g.horizon());
            assert!(c.count_available() > 0, "nobody is 100% busy");
        }
    }

    #[test]
    fn pool_sampling_copies_whole_days() {
        let spd = 4;
        let pool_grid = TimeGrid::new(2, spd).unwrap();
        // One pool person, day0 = all free, day1 = all busy.
        let mut p = Calendar::new(pool_grid.horizon());
        p.set_range(SlotRange::new(0, spd - 1), true);
        let pool = vec![p];

        let out_grid = TimeGrid::new(5, spd).unwrap();
        let pop = pool_sampled_population(&out_grid, &pool, 3, 11);
        for cal in &pop {
            for day in 0..5 {
                let avail: Vec<bool> = (0..spd).map(|s| cal.is_available(day * spd + s)).collect();
                assert!(
                    avail.iter().all(|&x| x) || avail.iter().all(|&x| !x),
                    "day {day} mixes pool days: {avail:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_panics() {
        let g = grid();
        let _ = pool_sampled_population(&g, &[], 3, 0);
    }
}
