//! `metropolis`: million-member worlds with **shard-aligned
//! communities** — the scale workload for sharded snapshot publication
//! and delta-scoped cache invalidation.
//!
//! Real metropolitan acquaintance networks are a heavy-tailed mixture of
//! communities (workplaces, schools, congregations): most are small, a
//! few are huge, and almost all ties live inside one community. This
//! generator reproduces that shape at 10^5–10^6 members with build cost
//! `O(members · intra_degree)` — no quadratic pair scan — so the scale
//! bench can stand up a world in seconds.
//!
//! **Shard alignment.** Every community lives entirely inside one
//! residue class `v % shards` — the same modulus the executor's caches
//! and sub-snapshots are partitioned by. A write confined to one
//! community therefore dirties exactly one shard, which is what makes
//! the per-shard rebuild/invalidation counters assertable: the
//! `metropolis` world is the regime the tentpole is *for*, not just a
//! big random graph. (Set `shards: 1` for an unaligned control.)

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId};
use stgq_schedule::TimeGrid;

use crate::schedules::archetype_population;
use crate::weights::{sample_distance, Tie};
use crate::Dataset;

/// Parameters of the metropolis model.
#[derive(Clone, Debug)]
pub struct MetropolisConfig {
    /// Total people (the scale axis: 10^5–10^6).
    pub members: usize,
    /// Community-to-shard alignment modulus — match the serving
    /// executor's `ExecConfig::shards` so one community maps to one
    /// sub-snapshot.
    pub shards: usize,
    /// Smallest community (Pareto location parameter).
    pub min_community: usize,
    /// Largest community (truncation cap — keeps one giant workplace
    /// from swallowing a whole shard).
    pub max_community: usize,
    /// Pareto tail exponent for community sizes (heavier tail as it
    /// approaches 1; 2–3 is realistic).
    pub alpha: f64,
    /// Random strong ties added per member inside their community, on
    /// top of the connectivity chain.
    pub intra_degree: usize,
    /// Fraction of members carrying one weak tie out of their
    /// community (commuter bridges).
    pub bridge_fraction: f64,
}

impl MetropolisConfig {
    /// The default metropolis at `members` people: 16-way shard
    /// alignment, communities of 12–512 with a realistic tail, ~6
    /// strong ties per member plus 5% commuter bridges.
    pub fn with_members(members: usize) -> Self {
        MetropolisConfig {
            members,
            shards: 16,
            min_community: 12,
            max_community: 512,
            alpha: 2.2,
            intra_degree: 6,
            bridge_fraction: 0.05,
        }
    }
}

/// Draw one community size from the truncated Pareto tail.
fn sample_size(cfg: &MetropolisConfig, rng: &mut SmallRng) -> usize {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let raw = cfg.min_community as f64 * u.powf(-1.0 / cfg.alpha);
    (raw as usize).clamp(cfg.min_community, cfg.max_community)
}

/// Generate the metropolis dataset together with its community member
/// lists (each list wholly inside one residue class `v % shards`).
/// Deterministic in `seed`.
pub fn metropolis_with_communities(
    cfg: &MetropolisConfig,
    days: usize,
    seed: u64,
) -> (Dataset, Vec<Vec<u32>>) {
    assert!(cfg.members >= 2, "need at least two people");
    assert!(cfg.shards >= 1 && cfg.min_community >= 1);
    assert!(cfg.max_community >= cfg.min_community);
    assert!(cfg.alpha > 1.0, "the size distribution needs a finite mean");
    let n = cfg.members;
    let shards = cfg.shards.min(n);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Carve each residue class into communities: shard s owns ids
    // s, s + S, s + 2S, …; community sizes come off the Pareto tail and
    // the last community of a shard absorbs the remainder, so the
    // communities partition 0..n exactly.
    let mut communities: Vec<Vec<u32>> = Vec::new();
    for s in 0..shards {
        let rows = n.saturating_sub(s).div_ceil(shards);
        let mut used = 0usize;
        while used < rows {
            let size = sample_size(cfg, &mut rng).min(rows - used);
            communities.push(
                (used..used + size)
                    .map(|r| (s + r * shards) as u32)
                    .collect(),
            );
            used += size;
        }
    }

    let mut b = GraphBuilder::new(n);
    for members in &communities {
        // Connectivity chain: consecutive members are acquainted, so no
        // community member is ever isolated.
        for w in members.windows(2) {
            let d = sample_distance(&mut rng, Tie::Strong);
            b.add_edge(NodeId(w[0]), NodeId(w[1]), d)
                .expect("distinct pair");
        }
        // Random strong ties inside the community.
        if members.len() > 2 {
            for &v in members {
                for _ in 0..cfg.intra_degree / 2 {
                    let u = members[rng.gen_range(0..members.len())];
                    if u != v && !b.has_edge(NodeId(v), NodeId(u)) {
                        let d = sample_distance(&mut rng, Tie::Strong);
                        b.add_edge(NodeId(v), NodeId(u), d).expect("distinct pair");
                    }
                }
            }
        }
        // Commuter bridges: weak ties out of the community (singleton
        // communities always get one, or they would be isolated).
        let bridges = ((members.len() as f64 * cfg.bridge_fraction) as usize)
            .max(usize::from(members.len() == 1));
        for _ in 0..bridges {
            let v = members[rng.gen_range(0..members.len())];
            let u = rng.gen_range(0..n as u32);
            if u != v && !b.has_edge(NodeId(v), NodeId(u)) {
                let d = sample_distance(&mut rng, Tie::Weak);
                b.add_edge(NodeId(v), NodeId(u), d).expect("distinct pair");
            }
        }
    }

    let grid = TimeGrid::half_hour(days).expect("days >= 1");
    let calendars = archetype_population(&grid, n, seed ^ 0x000E_7205);
    let ds = Dataset {
        graph: b.build(),
        calendars,
        grid,
    };
    debug_assert!(ds.check());
    (ds, communities)
}

/// [`metropolis_with_communities`] without the member lists.
pub fn metropolis(cfg: &MetropolisConfig, days: usize, seed: u64) -> Dataset {
    metropolis_with_communities(cfg, days, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MetropolisConfig {
        MetropolisConfig {
            members: 2_000,
            shards: 8,
            ..MetropolisConfig::with_members(2_000)
        }
    }

    #[test]
    fn communities_partition_the_population_shard_aligned() {
        let cfg = small();
        let (ds, communities) = metropolis_with_communities(&cfg, 1, 5);
        assert_eq!(ds.graph.node_count(), cfg.members);
        assert_eq!(ds.calendars.len(), cfg.members);
        let mut seen = vec![false; cfg.members];
        for members in &communities {
            assert!(!members.is_empty());
            let shard = members[0] as usize % cfg.shards;
            for &v in members {
                assert_eq!(
                    v as usize % cfg.shards,
                    shard,
                    "a community must live inside one residue class"
                );
                assert!(!seen[v as usize], "communities must not overlap");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every person is in a community");
    }

    #[test]
    fn nobody_is_isolated_and_ties_stay_communal() {
        let cfg = small();
        let (ds, communities) = metropolis_with_communities(&cfg, 1, 9);
        let mut community_of = vec![0usize; cfg.members];
        for (c, members) in communities.iter().enumerate() {
            for &v in members {
                community_of[v as usize] = c;
            }
        }
        let (mut intra, mut inter) = (0usize, 0usize);
        for e in ds.graph.edges() {
            if community_of[e.a.index()] == community_of[e.b.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 4 * inter, "intra={intra} inter={inter}");
        for v in 0..cfg.members as u32 {
            assert!(ds.graph.degree(NodeId(v)) >= 1, "{v} is isolated");
        }
    }

    #[test]
    fn community_sizes_are_heavy_tailed() {
        let cfg = MetropolisConfig {
            members: 20_000,
            ..MetropolisConfig::with_members(20_000)
        };
        let (_, communities) = metropolis_with_communities(&cfg, 1, 3);
        let sizes: Vec<usize> = communities.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() / sizes.len();
        assert!(
            max >= 3 * mean,
            "tail missing: max {max} vs mean {mean} over {} communities",
            sizes.len()
        );
        assert!(max <= cfg.max_community, "truncation cap holds");
    }

    #[test]
    fn deterministic_in_seed_and_divergent_across_seeds() {
        let cfg = small();
        let (a, ca) = metropolis_with_communities(&cfg, 1, 42);
        let (b, cb) = metropolis_with_communities(&cfg, 1, 42);
        let (c, _) = metropolis_with_communities(&cfg, 1, 43);
        assert_eq!(ca, cb);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.calendars, b.calendars);
        assert_ne!(
            a.graph.edges().collect::<Vec<_>>(),
            c.graph.edges().collect::<Vec<_>>()
        );
    }
}
