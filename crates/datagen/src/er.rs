//! Erdős–Rényi `G(n, p)` reference model.
//!
//! The unstructured null model: every pair is a friendship independently
//! with probability `p`, weights drawn from the weak-tie interaction
//! distribution (ER has no community structure to justify strong ties).
//! Used by tests and the ablation benches as the "no clustering" extreme
//! against the community and coauthorship generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId, SocialGraph};

use crate::weights::{sample_distance, Tie};

/// Generate `G(n, p)` with interaction-derived weights, deterministic in
/// `seed`.
///
/// # Panics
/// Panics if `edge_prob` is not within `[0, 1]`.
pub fn er_graph(n: usize, edge_prob: f64, seed: u64) -> SocialGraph {
    assert!(
        (0.0..=1.0).contains(&edge_prob),
        "edge probability must lie in [0, 1], got {edge_prob}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(edge_prob) {
                let w = sample_distance(&mut rng, Tie::Weak);
                b.add_edge(NodeId(u as u32), NodeId(v as u32), w)
                    .expect("generated pairs are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::analysis::global_clustering;

    #[test]
    fn deterministic_in_seed() {
        let a = er_graph(40, 0.2, 9);
        let b = er_graph(40, 0.2, 9);
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<_> = a.edges().map(|e| (e.a, e.b, e.weight)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.a, e.b, e.weight)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn edge_count_tracks_probability() {
        let n = 60;
        let pairs = (n * (n - 1) / 2) as f64;
        let g = er_graph(n, 0.25, 3);
        let observed = g.edge_count() as f64 / pairs;
        assert!(
            (observed - 0.25).abs() < 0.05,
            "observed density {observed:.3}"
        );
    }

    #[test]
    fn extremes() {
        assert_eq!(er_graph(20, 0.0, 1).edge_count(), 0);
        assert_eq!(er_graph(20, 1.0, 1).edge_count(), 190);
        assert_eq!(er_graph(0, 0.5, 1).node_count(), 0);
    }

    #[test]
    fn clustering_is_near_edge_probability() {
        // In G(n, p) the expected clustering coefficient is p itself —
        // the property that makes ER the "no structure" reference.
        let g = er_graph(120, 0.15, 5);
        let c = global_clustering(&g);
        assert!((c - 0.15).abs() < 0.08, "clustering {c:.3} far from 0.15");
    }

    #[test]
    #[should_panic(expected = "edge probability")]
    fn rejects_invalid_probability() {
        let _ = er_graph(5, 1.5, 0);
    }
}
