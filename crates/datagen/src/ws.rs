//! Watts–Strogatz small-world graphs — a reference model with tunable
//! clustering, used in tests and the scaling example.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_graph::{GraphBuilder, NodeId, SocialGraph};

use crate::weights::{sample_distance, Tie};

/// Generate a WS graph: ring lattice where each vertex connects to its `k`
/// nearest neighbors on each side, each edge rewired with probability
/// `beta`. Deterministic in `seed`. Requires `n > 2k` and `k ≥ 1`.
pub fn ws_graph(n: usize, k: usize, beta: f64, seed: u64) -> SocialGraph {
    assert!(k >= 1 && n > 2 * k, "need n > 2k >= 2");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    for i in 0..n as u32 {
        for d in 1..=k as u32 {
            let j = (i + d) % n as u32;
            let (mut a, mut c) = (i, j);
            if beta > 0.0 && rng.gen_bool(beta) {
                // Rewire the far endpoint to a uniform non-duplicate target.
                let mut guard = 0;
                loop {
                    guard += 1;
                    let t = rng.gen_range(0..n as u32);
                    if t != i && !b.has_edge(NodeId(i), NodeId(t)) {
                        c = t;
                        a = i;
                        break;
                    }
                    if guard > 100 {
                        break; // keep the lattice edge
                    }
                }
            }
            if !b.has_edge(NodeId(a), NodeId(c)) {
                let tie = if rng.gen_bool(0.7) {
                    Tie::Strong
                } else {
                    Tie::Weak
                };
                b.add_edge(NodeId(a), NodeId(c), sample_distance(&mut rng, tie))
                    .unwrap();
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::analysis;

    #[test]
    fn zero_beta_is_a_lattice() {
        let g = ws_graph(30, 2, 0.0, 1);
        assert_eq!(g.edge_count(), 60);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        // Ring lattices with k=2 are highly clustered.
        assert!(analysis::global_clustering(&g) > 0.4);
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let lattice = analysis::global_clustering(&ws_graph(200, 3, 0.0, 2));
        let random = analysis::global_clustering(&ws_graph(200, 3, 1.0, 2));
        assert!(
            random < lattice * 0.5,
            "rewired {random:.3} should be well below lattice {lattice:.3}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ws_graph(80, 2, 0.3, 9);
        let b = ws_graph(80, 2, 0.3, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_degenerate_sizes() {
        let _ = ws_graph(4, 2, 0.1, 0);
    }
}
