//! Exec-layer equivalence suite for the zero-copy query path.
//!
//! The executor can extract per-query candidate spaces two ways — the
//! materialized `FeasibleGraph` (the original reference path) and the
//! borrowed `FeasibleView` over the snapshot's CSR segments (the
//! default). These tests pin the properties the swap must preserve:
//!
//! 1. **Bit-identity**: for every engine and every search-reduction
//!    knob combination, the view path returns the same members, the
//!    same objectives *and the same `SearchStats`* as the materialized
//!    path — the view changes what extraction costs, never what the
//!    search does.
//! 2. **Determinism across worker counts**: a batch of exact queries
//!    yields identical outcomes (stats included) on 1, 2 and 4 workers.
//! 3. **Stamped-cache equivalence**: under arbitrary interleavings of
//!    writes (republished epochs) and queries, the long-lived executor
//!    with all caches warm agrees with a cacheless fresh-executor
//!    oracle solving the same world from scratch.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stgq_core::{SelectConfig, SgqQuery, SolveOutcome, StgqQuery};
use stgq_exec::{Engine, ExecConfig, Executor, ExtractionMode, PlanRequest, QuerySpec};
use stgq_graph::{Dist, GraphBuilder, NodeId, SocialGraph};
use stgq_schedule::Calendar;

const HORIZON: usize = 16;

/// An outcome with cache-*effect* counters zeroed. A warm arena
/// legitimately reports cross-solve run-cache hits (and avoided prep
/// words) that a fresh oracle cannot; those counters describe where the
/// work came from, not what the search did. Everything else — members,
/// objectives, and every search counter — must still match exactly.
fn sans_cache_effects(mut o: SolveOutcome) -> SolveOutcome {
    let stats = match &mut o {
        SolveOutcome::Sgq(x) => &mut x.stats,
        SolveOutcome::Stgq(x) => &mut x.stats,
    };
    stats.run_cache_cross_solve_hits = 0;
    stats.prep_words_delta = 0;
    stats.prep_words_rebuilt = 0;
    o
}

/// A random world: `n` people, ~`edge_pct` of pairs connected with
/// small weights, each person free on ~70% of slots.
fn random_world(seed: u64, n: usize, edge_pct: f64) -> (SocialGraph, Vec<Calendar>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0EC0_11EC);
    let mut b = GraphBuilder::new(n);
    for a in 0..n as u32 {
        for c in (a + 1)..n as u32 {
            if rng.gen_bool(edge_pct) {
                b.add_edge(NodeId(a), NodeId(c), rng.gen_range(1..10) as Dist)
                    .unwrap();
            }
        }
    }
    let calendars = (0..n)
        .map(|_| {
            let mut cal = Calendar::new(HORIZON);
            for slot in 0..HORIZON {
                if rng.gen_bool(0.7) {
                    cal.set_available(slot, true);
                }
            }
            cal
        })
        .collect();
    (b.build(), calendars)
}

fn executor_on(
    mode: ExtractionMode,
    workers: usize,
    select: SelectConfig,
    graph: &SocialGraph,
    calendars: &[Calendar],
) -> Executor {
    let exec = Executor::new(ExecConfig {
        workers,
        shards: 4,
        select,
        extraction: mode,
        // Replays would mask a divergence after the first solve; the
        // equivalence tests want every query to hit the engine.
        result_cache_capacity: 0,
        ..ExecConfig::default()
    });
    exec.publish(graph, calendars, 1, 1);
    exec
}

/// Representative corners of the search-reduction knob grid: everything
/// on (default), everything off, and each family toggled individually.
fn config_grid() -> Vec<SelectConfig> {
    vec![
        SelectConfig::default(),
        SelectConfig::NO_SEARCH_REDUCTION,
        SelectConfig::default().with_materialize_on_touch(false),
        SelectConfig::default().with_incremental_prep(false),
        SelectConfig::default().with_shared_pivot_prep(false),
        SelectConfig::default()
            .with_core_peel_fixpoint(false)
            .with_kplex_match_bound(false),
        SelectConfig::default()
            .with_sharp_pivot_floor(false)
            .with_acq_pivot_floor(false),
        SelectConfig::default()
            .with_parent_completion_bound(false)
            .with_pivot_promise_order(false),
        SelectConfig::default()
            .with_seed_restarts(0)
            .with_availability_ordering(false),
        SelectConfig::default().with_pool_pivot_buffers(false),
    ]
}

/// A small mixed SGQ/STGQ workload across engines that report stats
/// (plus one heuristic for objective-level agreement).
fn workload(rng: &mut SmallRng, n: usize) -> Vec<PlanRequest> {
    let mut reqs = Vec::new();
    for _ in 0..4 {
        let initiator = NodeId(rng.gen_range(0..n as u32));
        let p = rng.gen_range(2..5usize);
        let s = rng.gen_range(1..4usize);
        let k = rng.gen_range(0..p.min(3));
        let m = rng.gen_range(1..4usize);
        let spec = if rng.gen_bool(0.5) {
            QuerySpec::Sgq(SgqQuery::new(p, s, k).unwrap())
        } else {
            QuerySpec::Stgq(StgqQuery::new(p, s, k, m).unwrap())
        };
        let engine = match rng.gen_range(0..4u8) {
            0 => Engine::Exact,
            1 => Engine::Anytime { frame_budget: 8 },
            2 => Engine::Greedy { restarts: 2 },
            _ => Engine::Exact,
        };
        reqs.push(PlanRequest::new(initiator, spec, engine));
    }
    reqs
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// The tentpole invariant: across random worlds, queries, engines
    /// and the whole knob grid, the zero-copy view path is
    /// **bit-identical** to the materialized path — same solutions,
    /// same objectives, same `SearchStats` (the `outcome` comparison
    /// covers all three), same exactness claims.
    #[test]
    fn view_path_is_bit_identical_to_materialized(seed in 0u64..1 << 48) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB17_1DE7);
        let n = rng.gen_range(6..14usize);
        let (graph, calendars) = random_world(seed, n, 0.35);
        for cfg in config_grid() {
            let view = executor_on(ExtractionMode::View, 1, cfg, &graph, &calendars);
            let mat = executor_on(ExtractionMode::Materialized, 1, cfg, &graph, &calendars);
            for req in workload(&mut rng, n) {
                let a = view.execute_one(req.clone());
                let b = mat.execute_one(req.clone());
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.outcome, b.outcome,
                            "solution/stats divergence on {req:?}"
                        );
                        assert_eq!(a.exact, b.exact);
                        assert_eq!(a.evaluations, b.evaluations);
                    }
                    (a, b) => assert_eq!(a, b, "error divergence"),
                }
            }
            // The word counters must land on the carrier that paid.
            let (vm, mm) = (view.metrics(), mat.metrics());
            assert!(vm.extract_words_borrowed > 0);
            assert_eq!(vm.extract_words_copied, 0);
            assert!(mm.extract_words_copied > 0);
            assert_eq!(mm.extract_words_borrowed, 0);
            // Same worlds, same misses — the traffic *amounts* agree,
            // only the path differs.
            assert_eq!(vm.extract_words_borrowed, mm.extract_words_copied);
        }
    }
}

#[test]
fn executor_is_deterministic_across_worker_counts() {
    let mut rng = SmallRng::seed_from_u64(0x00D1_7EC7);
    let n = 14;
    let (graph, calendars) = random_world(0xD1CE, n, 0.3);
    // Exact engines only: determinism must hold stats-for-stats.
    let mut reqs = Vec::new();
    for i in 0..12u32 {
        let initiator = NodeId(i % n as u32);
        let p = rng.gen_range(2..5usize);
        let s = rng.gen_range(1..4usize);
        let spec = if i % 2 == 0 {
            QuerySpec::Sgq(SgqQuery::new(p, s, 1.min(p - 1)).unwrap())
        } else {
            QuerySpec::Stgq(StgqQuery::new(p, s, 1.min(p - 1), 2).unwrap())
        };
        reqs.push(PlanRequest::new(initiator, spec, Engine::Exact));
    }
    let mut baseline = None;
    for workers in [1usize, 2, 4] {
        let exec = executor_on(
            ExtractionMode::View,
            workers,
            SelectConfig::default(),
            &graph,
            &calendars,
        );
        let outcomes: Vec<_> = exec
            .execute_batch(reqs.clone())
            .into_iter()
            .map(|r| r.expect("valid initiators").outcome)
            .collect();
        match &baseline {
            None => baseline = Some(outcomes),
            Some(b) => assert_eq!(&outcomes, b, "divergence at {workers} workers"),
        }
    }
}

#[test]
fn stamped_caches_agree_with_fresh_solves_across_interleavings() {
    let mut rng = SmallRng::seed_from_u64(0x5_7A3B);
    let n = 10usize;
    // Mutable world the "writer" side evolves.
    let mut edges: Vec<(u32, u32, Dist)> = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            if rng.gen_bool(0.3) {
                edges.push((a, b, rng.gen_range(1..8) as Dist));
            }
        }
    }
    let mut calendars: Vec<Calendar> = (0..n)
        .map(|_| {
            let mut cal = Calendar::new(HORIZON);
            for slot in 0..HORIZON {
                if rng.gen_bool(0.6) {
                    cal.set_available(slot, true);
                }
            }
            cal
        })
        .collect();
    let build = |edges: &[(u32, u32, Dist)]| {
        let mut b = GraphBuilder::new(n);
        for &(x, y, d) in edges {
            b.add_edge(NodeId(x), NodeId(y), d).unwrap();
        }
        b.build()
    };
    let (mut gv, mut cv) = (1u64, 1u64);
    // Long-lived executor with every cache enabled.
    let long = Executor::new(ExecConfig {
        workers: 1,
        shards: 4,
        ..ExecConfig::default()
    });
    long.publish(&build(&edges), &calendars, gv, cv);

    for step in 0..40 {
        match rng.gen_range(0..3u8) {
            // Graph write: re-weight or add an edge, bump the epoch.
            0 => {
                let a = rng.gen_range(0..n as u32 - 1);
                let b = rng.gen_range(a + 1..n as u32);
                let d = rng.gen_range(1..8) as Dist;
                if let Some(e) = edges.iter_mut().find(|e| e.0 == a && e.1 == b) {
                    e.2 = d;
                } else {
                    edges.push((a, b, d));
                }
                gv += 1;
                long.publish(&build(&edges), &calendars, gv, cv);
            }
            // Calendar write: flip one slot, bump the epoch.
            1 => {
                let person = rng.gen_range(0..n);
                let slot = rng.gen_range(0..HORIZON);
                let now = calendars[person].is_available(slot);
                calendars[person].set_available(slot, !now);
                cv += 1;
                long.publish(&build(&edges), &calendars, gv, cv);
            }
            // Query: the warm stamped caches must agree with a fresh
            // executor solving the current world from scratch.
            _ => {
                let initiator = NodeId(rng.gen_range(0..n as u32));
                let p = rng.gen_range(2..4usize);
                let s = rng.gen_range(1..3usize);
                let spec = if rng.gen_bool(0.5) {
                    QuerySpec::Sgq(SgqQuery::new(p, s, 1).unwrap())
                } else {
                    QuerySpec::Stgq(StgqQuery::new(p, s, 1, 2).unwrap())
                };
                let req = PlanRequest::new(initiator, spec, Engine::Exact);
                let cached = long.execute_one(req.clone()).unwrap();
                let oracle = executor_on(
                    ExtractionMode::View,
                    1,
                    SelectConfig::default(),
                    &build(&edges),
                    &calendars,
                )
                .execute_one(req)
                .unwrap();
                assert_eq!(
                    sans_cache_effects(cached.outcome),
                    sans_cache_effects(oracle.outcome),
                    "step {step}: stamped caches served a stale answer"
                );
            }
        }
    }
    // The interleaving must have actually exercised the fast paths.
    let m = long.metrics();
    assert!(
        m.feasible_cache_hits + m.result_cache_hits > 0,
        "interleaving never hit a cache — the test lost its point"
    );
}

#[test]
fn cross_solve_run_cache_hits_surface_in_exec_metrics() {
    let (graph, calendars) = random_world(0xCA1, 8, 0.5);
    // Result cache off: the repeat must re-solve, and its pivot prep
    // should then be fed by the arena's cross-solve run cache under the
    // snapshot handshake.
    let exec = executor_on(
        ExtractionMode::View,
        1,
        SelectConfig::default(),
        &graph,
        &calendars,
    );
    let req = PlanRequest::new(
        NodeId(0),
        QuerySpec::Stgq(StgqQuery::new(3, 2, 1, 2).unwrap()),
        Engine::Exact,
    );
    let first = exec.execute_one(req.clone()).unwrap();
    let after_first = exec.metrics().run_cache_cross_solve_hits;
    let second = exec.execute_one(req).unwrap();
    let after_second = exec.metrics().run_cache_cross_solve_hits;
    // Same epoch, same arena: every Definition-4 run the second solve
    // needs was remembered from the first.
    assert!(
        after_second > after_first,
        "repeat solve on an unchanged epoch must hit the cross-solve cache \
         (first={after_first}, second={after_second})"
    );
    assert_eq!(
        sans_cache_effects(first.outcome),
        sans_cache_effects(second.outcome),
        "hits must not change answers"
    );
}
