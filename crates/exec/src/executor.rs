//! The executor front end: admission, shard-batched draining, snapshot
//! publication, metrics.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;
use stgq_core::{PivotArena, SelectConfig};
use stgq_graph::SocialGraph;
use stgq_schedule::Calendar;

use crate::cache::{ExtractionMode, ShardedFeasibleCache};
use crate::metrics::{ExecCounters, ExecMetrics};
use crate::obs::ExecObs;
use crate::queue::{JobQueue, Ticket, TicketSlot};
use crate::request::{ExecError, PlanOutcome, PlanRequest};
use crate::snapshot::{SnapshotCell, WorldSnapshot};
use crate::worker::{run_entry, run_job, ExecShared, Job, Pending, WorkerPool};

/// Construction-time knobs for an [`Executor`].
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Fixed worker-pool size; `0` means all available parallelism.
    pub workers: usize,
    /// Initiator-shard count: the modulus partitioning both the
    /// feasible-graph cache and the batch scheduler's job grouping.
    pub shards: usize,
    /// Auto-flush threshold: the admission queue drains itself once this
    /// many entries are waiting (an explicit [`Executor::flush`] drains
    /// earlier). There is no timer — draining is deterministic.
    pub max_batch: usize,
    /// Total feasible-graph cache capacity, split across shards.
    pub cache_capacity: usize,
    /// Total version-stamped result-cache capacity, split across shards
    /// (`0` disables cross-batch result caching; within-batch request
    /// collapsing is unaffected).
    pub result_cache_capacity: usize,
    /// Engine configuration queries run with (replaceable at runtime via
    /// [`Executor::set_select_config`]).
    pub select: SelectConfig,
    /// Flight-recorder ring capacity — how many recent
    /// [`QueryTrace`](stgq_obs::QueryTrace)s are kept (`0` disables the
    /// ring; the slow-query log still runs).
    pub trace_ring: usize,
    /// Slow-query log size: the `N` slowest solves at or over
    /// [`slow_query_threshold`](Self::slow_query_threshold) are kept
    /// (`0` disables the log).
    pub slow_log: usize,
    /// End-to-end latency at or above which a solve enters the
    /// slow-query log.
    pub slow_query_threshold: std::time::Duration,
    /// How feasible-cache misses turn `(initiator, s)` into a candidate
    /// topology: [`ExtractionMode::View`] (zero-copy, the default) or
    /// [`ExtractionMode::Materialized`] (per-query `FeasibleGraph`, the
    /// A/B reference path). Answers and search statistics are
    /// bit-identical either way.
    pub extraction: ExtractionMode,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 0,
            shards: 16,
            max_batch: 64,
            cache_capacity: 256,
            result_cache_capacity: 512,
            select: SelectConfig::default(),
            trace_ring: 256,
            slow_log: 16,
            slow_query_threshold: std::time::Duration::from_millis(10),
            extraction: ExtractionMode::View,
        }
    }
}

/// The sharded, batched query-execution subsystem. See the crate docs
/// for the architecture (admission → shard batching → worker pool →
/// snapshot read path).
pub struct Executor {
    shared: Arc<ExecShared>,
    snapshot: SnapshotCell,
    select: Mutex<SelectConfig>,
    admission: Mutex<Vec<Pending>>,
    /// Donation slot for inline ([`execute_one`](Self::execute_one))
    /// solves: taken under a short lock, never held across a solve, so
    /// concurrent inline queries at worst run with a fresh arena.
    inline_arena: Mutex<PivotArena>,
    pool: Mutex<WorkerPool>,
    workers: usize,
    shards: usize,
    max_batch: usize,
}

impl Executor {
    /// Spawn an executor (and its worker pool) with the given knobs.
    pub fn new(cfg: ExecConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let shards = cfg.shards.max(1);
        let shared = Arc::new(ExecShared {
            cache: ShardedFeasibleCache::new(shards, cfg.cache_capacity),
            results: crate::cache::ResultCache::new(shards, cfg.result_cache_capacity),
            counters: ExecCounters::default(),
            obs: ExecObs::new(cfg.trace_ring, cfg.slow_log, cfg.slow_query_threshold),
            jobs: JobQueue::new(),
            extraction: cfg.extraction,
        });
        let pool = WorkerPool::spawn(&shared, workers);
        Executor {
            shared,
            snapshot: SnapshotCell::default(),
            select: Mutex::new(cfg.select),
            admission: Mutex::new(Vec::new()),
            inline_arena: Mutex::new(PivotArena::new()),
            pool: Mutex::new(pool),
            workers,
            shards,
            max_batch: cfg.max_batch.max(1),
        }
    }

    // -- snapshots ----------------------------------------------------

    /// Swap in a new world epoch. In-flight solves keep (and finish on)
    /// the epoch they started with; there is nothing to wait for.
    ///
    /// Publication cost is tracked per shard: each of the new epoch's
    /// graph segments and calendar slices counts as *reused* when it is
    /// the same `Arc` the previous epoch carried and *rebuilt* otherwise
    /// ([`ExecMetrics::snapshot_shards_reused`] /
    /// [`ExecMetrics::snapshot_shards_rebuilt`]).
    pub fn publish_snapshot(&self, snapshot: Arc<WorldSnapshot>) {
        let publish_t0 = std::time::Instant::now();
        let previous = self.snapshot.current();
        let mut rebuilt = 0u64;
        let mut reused = 0u64;
        match &previous {
            Some(prev) if prev.shard_count() == snapshot.shard_count() => {
                for s in 0..snapshot.shard_count() {
                    if Arc::ptr_eq(prev.graph_segment(s), snapshot.graph_segment(s)) {
                        reused += 1;
                    } else {
                        rebuilt += 1;
                    }
                    if Arc::ptr_eq(prev.calendar_shard(s), snapshot.calendar_shard(s)) {
                        reused += 1;
                    } else {
                        rebuilt += 1;
                    }
                }
            }
            _ => rebuilt = 2 * snapshot.shard_count() as u64,
        }
        self.snapshot.publish(snapshot);
        let c = &self.shared.counters;
        c.snapshot_publishes.fetch_add(1, Ordering::Relaxed);
        c.snapshot_shards_rebuilt
            .fetch_add(rebuilt, Ordering::Relaxed);
        c.snapshot_shards_reused
            .fetch_add(reused, Ordering::Relaxed);
        self.shared
            .obs
            .snapshot_publish
            .record(publish_t0.elapsed());
    }

    /// Convenience [`publish_snapshot`](Self::publish_snapshot) from a
    /// flat world: partitions by this executor's shard modulus and
    /// stamps every shard with the global versions (no dirty tracking —
    /// each publish rebuilds all shards; incremental writers assemble
    /// [`WorldSnapshot::from_parts`] themselves).
    pub fn publish(
        &self,
        graph: &SocialGraph,
        calendars: &[Calendar],
        graph_version: u64,
        calendar_version: u64,
    ) {
        self.publish_snapshot(Arc::new(WorldSnapshot::from_flat(
            graph,
            calendars,
            self.shards,
            graph_version,
            calendar_version,
        )));
    }

    /// Withdraw the published epoch: subsequent solves refuse with
    /// [`ExecError::NoSnapshot`](crate::ExecError::NoSnapshot) until a
    /// new epoch is published (in-flight solves finish on the epoch they
    /// started with). This is how a crashed-and-restarted cluster node
    /// models its lost memory — it must not serve pre-crash state while
    /// it re-syncs.
    pub fn clear_snapshot(&self) {
        self.snapshot.clear();
    }

    /// The current epoch, if one has been published.
    pub fn snapshot(&self) -> Option<Arc<WorldSnapshot>> {
        self.snapshot.current()
    }

    /// The `(graph_version, calendar_version)` stamp of the current
    /// epoch — what a façade compares against its mutable state to decide
    /// whether to publish.
    pub fn snapshot_versions(&self) -> Option<(u64, u64)> {
        self.snapshot.versions()
    }

    // -- configuration ------------------------------------------------

    /// The engine configuration queries run with.
    pub fn select_config(&self) -> SelectConfig {
        *self.select.lock()
    }

    /// Replace the engine configuration for subsequently drained batches
    /// and inline queries. Exactness is config-independent; only search
    /// effort changes.
    pub fn set_select_config(&self, cfg: SelectConfig) {
        *self.select.lock() = cfg;
    }

    /// Fixed worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Initiator-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    // -- execution ----------------------------------------------------

    /// Admit one request; returns a [`Ticket`] for its eventual outcome.
    /// The request executes when the admission queue drains — at
    /// `max_batch` entries, on [`flush`](Self::flush), or inside
    /// [`execute_batch`](Self::execute_batch).
    pub fn submit(&self, request: PlanRequest) -> Ticket {
        let slot = Arc::new(TicketSlot::new());
        let pending = Pending {
            request,
            ticket: Arc::clone(&slot),
            admitted_at: std::time::Instant::now(),
        };
        let drained = {
            let mut admission = self.admission.lock();
            admission.push(pending);
            (admission.len() >= self.max_batch).then(|| std::mem::take(&mut *admission))
        };
        if let Some(batch) = drained {
            self.dispatch(batch);
        }
        Ticket { slot }
    }

    /// Drain the admission queue now: group waiting entries by initiator
    /// shard and hand the per-shard jobs to the worker pool.
    pub fn flush(&self) {
        let batch = std::mem::take(&mut *self.admission.lock());
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    /// Group a drained batch by initiator shard (stable within a shard:
    /// submission order is preserved, which request collapsing and the
    /// determinism tests rely on) and enqueue the jobs.
    fn dispatch(&self, batch: Vec<Pending>) {
        let Some(snapshot) = self.snapshot.current() else {
            for entry in batch {
                entry.ticket.fulfill(Err(ExecError::NoSnapshot));
            }
            return;
        };
        let select = *self.select.lock();
        let mut by_shard: Vec<Vec<Pending>> = Vec::new();
        by_shard.resize_with(self.shards, Vec::new);
        for entry in batch {
            let shard = entry.request.initiator.0 as usize % self.shards;
            by_shard[shard].push(entry);
        }
        for entries in by_shard.into_iter().filter(|e| !e.is_empty()) {
            let job = Job {
                snapshot: Arc::clone(&snapshot),
                select,
                entries,
            };
            // The queue only closes in `Drop`, which holds `&mut self` —
            // no `&self` dispatch can race it.
            let accepted = self.shared.jobs.push(job);
            debug_assert!(accepted, "dispatch cannot race shutdown");
        }
    }

    /// Answer one request inline on the calling thread, against the
    /// current epoch. This is the low-latency single-query path (no
    /// admission, no handoff); it still shares the feasible-graph cache,
    /// counters and configuration with the batched path.
    pub fn execute_one(&self, request: PlanRequest) -> Result<PlanOutcome, ExecError> {
        let snapshot = self.snapshot.current().ok_or(ExecError::NoSnapshot)?;
        let select = *self.select.lock();
        let mut arena = std::mem::take(&mut *self.inline_arena.lock());
        let result = run_entry(&self.shared, &mut arena, &snapshot, &select, &request, 0);
        *self.inline_arena.lock() = arena;
        result
    }

    /// Submit a whole batch, drain it, help the worker pool execute it,
    /// and wait for every outcome (in input order).
    ///
    /// The calling thread does not idle while the pool works: it pops
    /// shard jobs from the same queue the workers block on, so a
    /// single-core host (or a pool busy with another batch) never
    /// serialises behind a sleeping caller.
    pub fn execute_batch(&self, requests: Vec<PlanRequest>) -> Vec<Result<PlanOutcome, ExecError>> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        self.flush();
        // Help drain: steal whole shard jobs onto this thread.
        let mut arena = std::mem::take(&mut *self.inline_arena.lock());
        while let Some(job) = self.shared.jobs.try_pop() {
            run_job(&self.shared, &mut arena, job);
        }
        *self.inline_arena.lock() = arena;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    // -- observability ------------------------------------------------

    /// Latency histograms and the per-query flight recorder.
    pub fn obs(&self) -> &ExecObs {
        &self.shared.obs
    }

    /// Point-in-time counters.
    pub fn metrics(&self) -> ExecMetrics {
        let c = &self.shared.counters;
        let (hits, misses, cached) = self.shared.cache.stats();
        let r = self.shared.results.stats();
        ExecMetrics {
            queries: c.queries.load(Ordering::Relaxed),
            shard_jobs: c.shard_jobs.load(Ordering::Relaxed),
            batched_entries: c.batched_entries.load(Ordering::Relaxed),
            collapsed_entries: c.collapsed_entries.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            feasible_cache_hits: hits,
            feasible_cache_misses: misses,
            cached_feasible_graphs: cached,
            result_cache_hits: r.hits,
            result_cache_misses: r.misses,
            cached_results: r.len,
            result_cache_evicted_stale_shard: r.evicted_stale_shard,
            result_cache_evicted_capacity: r.evicted_capacity,
            snapshot_publishes: c.snapshot_publishes.load(Ordering::Relaxed),
            snapshot_shards_rebuilt: c.snapshot_shards_rebuilt.load(Ordering::Relaxed),
            snapshot_shards_reused: c.snapshot_shards_reused.load(Ordering::Relaxed),
            frames_examined: c.frames_examined.load(Ordering::Relaxed),
            frames_pruned_by_bound: c.frames_pruned_by_bound.load(Ordering::Relaxed),
            pivots_skipped: c.pivots_skipped.load(Ordering::Relaxed),
            peeled_candidates: c.peeled_candidates.load(Ordering::Relaxed),
            pivots_refused_by_core: c.pivots_refused_by_core.load(Ordering::Relaxed),
            frames_pruned_by_match: c.frames_pruned_by_match.load(Ordering::Relaxed),
            children_pruned_by_parent_bound: c
                .children_pruned_by_parent_bound
                .load(Ordering::Relaxed),
            prep_words_delta: c.prep_words_delta.load(Ordering::Relaxed),
            prep_words_rebuilt: c.prep_words_rebuilt.load(Ordering::Relaxed),
            run_cache_cross_solve_hits: c.run_cache_cross_solve_hits.load(Ordering::Relaxed),
            extract_words_copied: c.extract_words_copied.load(Ordering::Relaxed),
            extract_words_borrowed: c.extract_words_borrowed.load(Ordering::Relaxed),
            workers: self.workers,
            shards: self.shards,
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Resolve anything still admitted but never drained, then release
        // the workers.
        let batch = std::mem::take(&mut *self.admission.lock());
        for entry in batch {
            entry.ticket.fulfill(Err(ExecError::ShuttingDown));
        }
        self.pool.lock().shutdown(&self.shared);
    }
}

// The service wraps a `Planner` holding an `Executor` in
// `Arc<RwLock<…>>`; keep the handles thread-mobile by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executor>();
    assert_send_sync::<PlanOutcome>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::{CancelToken, SgqQuery, StgqQuery};
    use stgq_graph::{GraphBuilder, NodeId};
    use stgq_schedule::SlotRange;

    use crate::request::QuerySpec;
    use crate::Engine;

    /// A 6-person world: triangle 0-1-2 close together, 3-4 further out,
    /// 5 isolated; everyone free on slots 2..=9 of a 12-slot horizon.
    fn demo_graph() -> SocialGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 8).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 2).unwrap();
        b.build()
    }

    fn demo_cals() -> Vec<Calendar> {
        let mut cal = Calendar::new(12);
        cal.set_range(SlotRange::new(2, 9), true);
        vec![cal; 6]
    }

    fn world() -> Arc<WorldSnapshot> {
        Arc::new(WorldSnapshot::from_flat(
            &demo_graph(),
            &demo_cals(),
            4,
            1,
            1,
        ))
    }

    fn executor(workers: usize) -> Executor {
        let exec = Executor::new(ExecConfig {
            workers,
            shards: 4,
            max_batch: 64,
            cache_capacity: 32,
            result_cache_capacity: 64,
            ..ExecConfig::default()
        });
        exec.publish_snapshot(world());
        exec
    }

    #[test]
    fn no_snapshot_is_an_error_not_a_hang() {
        let exec = Executor::new(ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        });
        let req = PlanRequest::new(
            NodeId(0),
            QuerySpec::Sgq(SgqQuery::new(3, 1, 0).unwrap()),
            Engine::Exact,
        );
        assert_eq!(exec.execute_one(req.clone()), Err(ExecError::NoSnapshot));
        let results = exec.execute_batch(vec![req]);
        assert_eq!(results, vec![Err(ExecError::NoSnapshot)]);
    }

    #[test]
    fn inline_and_batched_agree() {
        let exec = executor(2);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let stgq = StgqQuery::new(3, 1, 0, 3).unwrap();
        let reqs: Vec<PlanRequest> = vec![
            PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact),
            PlanRequest::new(NodeId(0), QuerySpec::Stgq(stgq), Engine::Exact),
            PlanRequest::new(
                NodeId(1),
                QuerySpec::Sgq(sgq),
                Engine::Greedy { restarts: 2 },
            ),
        ];
        let inline: Vec<_> = reqs
            .iter()
            .map(|r| exec.execute_one(r.clone()).unwrap())
            .collect();
        let batched = exec.execute_batch(reqs);
        for (a, b) in inline.iter().zip(&batched) {
            let b = b.as_ref().unwrap();
            assert_eq!(a.outcome.objective(), b.outcome.objective());
            assert_eq!(a.exact, b.exact);
        }
        assert_eq!(inline[0].outcome.objective(), Some(5));
        assert!(inline[0].exact);
        assert!(!batched[2].as_ref().unwrap().exact, "greedy is never exact");
    }

    #[test]
    fn batch_collapses_identical_entries() {
        let exec = executor(1);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let req = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);
        let results = exec.execute_batch(vec![req.clone(), req.clone(), req]);
        let outcomes: Vec<_> = results.into_iter().map(Result::unwrap).collect();
        assert!(outcomes.iter().all(|o| o.outcome.objective() == Some(5)));
        assert_eq!(outcomes.iter().filter(|o| o.collapsed).count(), 2);
        assert_eq!(exec.metrics().collapsed_entries, 2);
        assert_eq!(exec.metrics().queries, 3, "collapsed entries still count");
    }

    #[test]
    fn entries_with_controls_are_never_collapsed() {
        let exec = executor(1);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let plain = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);
        let tokened = plain.clone().with_cancel(CancelToken::new());
        let results = exec.execute_batch(vec![plain, tokened]);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(exec.metrics().collapsed_entries, 0);
    }

    #[test]
    fn publish_does_not_disturb_running_epochs() {
        let exec = executor(1);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let before = exec
            .execute_one(PlanRequest::new(
                NodeId(0),
                QuerySpec::Sgq(sgq),
                Engine::Exact,
            ))
            .unwrap();
        // New epoch: vertex 0 gets a cheaper friend.
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(4), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(4), 1).unwrap();
        exec.publish(&b.build(), &demo_cals(), 2, 1);
        let after = exec
            .execute_one(PlanRequest::new(
                NodeId(0),
                QuerySpec::Sgq(sgq),
                Engine::Exact,
            ))
            .unwrap();
        assert_eq!(before.outcome.objective(), Some(5));
        // New epoch: {0, 1, 4} is fully acquainted at distance 2 + 1.
        assert_eq!(after.outcome.objective(), Some(3), "new epoch, new answer");
        assert_eq!(exec.metrics().snapshot_publishes, 2);
    }

    #[test]
    fn min_epoch_rejects_stale_snapshots() {
        let exec = executor(1); // publishes the (1, 1) epoch
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let ok =
            PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact).with_min_epoch(1, 1);
        assert!(exec.execute_one(ok).is_ok(), "met requirement is served");

        let stale =
            PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact).with_min_epoch(2, 1);
        assert_eq!(
            exec.execute_one(stale.clone()),
            Err(ExecError::EpochTooOld {
                required: (2, 1),
                available: (1, 1),
            })
        );
        // The batched path refuses per entry, without poisoning others.
        let plain = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);
        let results = exec.execute_batch(vec![plain, stale]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ExecError::EpochTooOld { .. })));

        // Catching up satisfies the requirement.
        exec.publish(&demo_graph(), &demo_cals(), 2, 1);
        let caught_up =
            PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact).with_min_epoch(2, 1);
        assert!(exec.execute_one(caught_up).is_ok());
    }

    #[test]
    fn result_cache_replays_repeats_across_batches_and_inline() {
        let exec = executor(1);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let req = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);

        let first = exec.execute_one(req.clone()).unwrap();
        assert!(!first.result_cache_hit, "first solve is fresh");
        let second = exec.execute_one(req.clone()).unwrap();
        assert!(second.result_cache_hit, "inline repeat is replayed");
        assert_eq!(second.outcome, first.outcome, "replay is bit-identical");

        // Across the batched path: the first entry replays the earlier
        // inline solve, the second collapses within the batch.
        let results = exec.execute_batch(vec![req.clone(), req.clone()]);
        let outcomes: Vec<_> = results.into_iter().map(Result::unwrap).collect();
        assert!(outcomes[0].result_cache_hit && !outcomes[0].collapsed);
        assert!(outcomes[1].collapsed && !outcomes[1].result_cache_hit);
        let m = exec.metrics();
        assert_eq!(m.result_cache_hits, 2);
        assert_eq!(m.collapsed_entries, 1);
        assert!(m.cached_results >= 1);

        // Delta-scoped stamps: an SGQ entry carries no calendar stamps,
        // so a calendar-only epoch bump cannot invalidate it…
        exec.publish(&demo_graph(), &demo_cals(), 1, 2);
        let survived = exec.execute_one(req.clone()).unwrap();
        assert!(
            survived.result_cache_hit,
            "SGQ reads no calendars — a calendar-only bump must not evict it"
        );
        // …while an STGQ entry does read calendars, and misses.
        let stgq = StgqQuery::new(3, 1, 0, 3).unwrap();
        let treq = PlanRequest::new(NodeId(0), QuerySpec::Stgq(stgq), Engine::Exact);
        assert!(!exec.execute_one(treq.clone()).unwrap().result_cache_hit);
        assert!(exec.execute_one(treq.clone()).unwrap().result_cache_hit);
        exec.publish(&demo_graph(), &demo_cals(), 1, 3);
        assert!(
            !exec.execute_one(treq).unwrap().result_cache_hit,
            "an STGQ entry is stamped with calendar shards and must miss"
        );
        // A graph bump moves every stamped graph shard (flat publishes
        // flood the stamps) and invalidates the SGQ replay too.
        exec.publish(&demo_graph(), &demo_cals(), 2, 3);
        let fresh = exec.execute_one(req).unwrap();
        assert!(
            !fresh.result_cache_hit,
            "a graph-version bump must miss the stamp"
        );
        assert!(exec.metrics().result_cache_evicted_stale_shard >= 2);
    }

    #[test]
    fn publish_counts_rebuilt_versus_reused_shards() {
        let exec = executor(1); // first publish: no previous epoch
        let m = exec.metrics();
        assert_eq!(
            (m.snapshot_shards_rebuilt, m.snapshot_shards_reused),
            (8, 0)
        );

        // Next epoch shares every sub-snapshot Arc except graph shard 2,
        // which is rebuilt (content-identical, but a fresh allocation).
        let prev = exec.snapshot().unwrap();
        let segments: Vec<_> = (0..4)
            .map(|s| {
                if s == 2 {
                    let old = prev.graph_segment(2);
                    Arc::new(stgq_graph::GraphSegment::build((0..old.rows()).map(|r| {
                        let (nbrs, dists) = old.row(r);
                        nbrs.iter()
                            .copied()
                            .zip(dists.iter().copied())
                            .collect::<Vec<_>>()
                    })))
                } else {
                    Arc::clone(prev.graph_segment(s))
                }
            })
            .collect();
        let cal_shards: Vec<_> = (0..4).map(|s| Arc::clone(prev.calendar_shard(s))).collect();
        exec.publish_snapshot(Arc::new(WorldSnapshot::from_parts(
            segments,
            vec![1, 1, 2, 1],
            cal_shards,
            vec![1; 4],
            2,
            1,
        )));
        let m = exec.metrics();
        assert_eq!(
            (m.snapshot_shards_rebuilt, m.snapshot_shards_reused),
            (9, 7)
        );
    }

    #[test]
    fn zero_capacity_disables_the_result_cache() {
        let exec = Executor::new(ExecConfig {
            workers: 1,
            result_cache_capacity: 0,
            ..ExecConfig::default()
        });
        exec.publish_snapshot(world());
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let req = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);
        assert!(!exec.execute_one(req.clone()).unwrap().result_cache_hit);
        assert!(!exec.execute_one(req).unwrap().result_cache_hit);
        let m = exec.metrics();
        assert_eq!((m.result_cache_hits, m.result_cache_misses), (0, 0));
        assert_eq!(m.cached_results, 0);
    }

    #[test]
    fn out_of_range_initiator_is_rejected_per_entry() {
        let exec = executor(1);
        let sgq = SgqQuery::new(2, 1, 1).unwrap();
        let good = PlanRequest::new(NodeId(0), QuerySpec::Sgq(sgq), Engine::Exact);
        let bad = PlanRequest::new(NodeId(77), QuerySpec::Sgq(sgq), Engine::Exact);
        let results = exec.execute_batch(vec![good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ExecError::InitiatorOutOfRange { .. })
        ));
    }

    #[test]
    fn cancelled_parallel_engine_reports_cancelled_not_truncated() {
        // Regression (ROADMAP follow-up): `Engine::ExactParallel` must
        // honour per-request cancellation under the executor — the
        // workers poll `SolveControl`, and the stop cause is
        // `Cancelled`, never conflated with budget truncation.
        use stgq_core::StopCause;
        let exec = executor(1);
        let stgq = StgqQuery::new(3, 1, 1, 3).unwrap();
        let token = CancelToken::new();
        token.cancel();
        for spec in [
            QuerySpec::Stgq(stgq),
            QuerySpec::Sgq(SgqQuery::new(3, 1, 1).unwrap()),
        ] {
            let req = PlanRequest::new(NodeId(0), spec, Engine::ExactParallel { threads: 2 })
                .with_cancel(token.clone());
            let outcome = exec.execute_one(req).unwrap();
            assert_eq!(outcome.stop, StopCause::Cancelled, "{spec:?}");
            assert!(!outcome.exact, "a cancelled answer is not proven optimal");
            assert!(outcome.outcome.stats().cancelled);
            assert!(
                !outcome.outcome.stats().truncated,
                "cancellation must not masquerade as budget truncation"
            );
        }
        assert_eq!(exec.metrics().cancelled, 2);
    }

    #[test]
    fn auto_flush_fires_at_max_batch() {
        let exec = Executor::new(ExecConfig {
            workers: 1,
            shards: 2,
            max_batch: 2,
            cache_capacity: 8,
            result_cache_capacity: 8,
            ..ExecConfig::default()
        });
        exec.publish_snapshot(world());
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let t1 = exec.submit(PlanRequest::new(
            NodeId(0),
            QuerySpec::Sgq(sgq),
            Engine::Exact,
        ));
        let t2 = exec.submit(PlanRequest::new(
            NodeId(1),
            QuerySpec::Sgq(sgq),
            Engine::Exact,
        ));
        // No explicit flush: max_batch = 2 drained the queue on the
        // second submit, so both tickets resolve.
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert!(exec.metrics().shard_jobs >= 1);
    }

    #[test]
    fn dropping_the_executor_resolves_admitted_tickets() {
        let exec = executor(1);
        let sgq = SgqQuery::new(3, 1, 0).unwrap();
        let ticket = exec.submit(PlanRequest::new(
            NodeId(0),
            QuerySpec::Sgq(sgq),
            Engine::Exact,
        ));
        drop(exec);
        assert_eq!(ticket.wait(), Err(ExecError::ShuttingDown));
    }
}
