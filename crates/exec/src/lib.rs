//! `stgq-exec` — the query-execution subsystem behind the planning
//! service: a server-side engine that answers *many* SGQ/STGQ queries
//! over one shared social graph, extracted from the monolithic
//! `stgq-service` planner so execution policy (batching, sharding,
//! worker placement, snapshot lifetimes) lives in one crate.
//!
//! # Architecture: admission → shard batching → worker pool → snapshots
//!
//! A query's life through the executor:
//!
//! 1. **Admission.** [`Executor::submit`] appends a [`PlanRequest`] to
//!    the admission queue and hands back a [`Ticket`]. Nothing executes
//!    yet — admission is where batches form. The queue drains when it
//!    reaches [`ExecConfig::max_batch`] entries or on an explicit
//!    [`Executor::flush`] (no timers: draining is deterministic, which
//!    the batch-equivalence tests rely on).
//! 2. **Shard batching.** The drain groups queued entries by
//!    **initiator shard** (`initiator mod shards`) into per-shard jobs,
//!    preserving submission order within a shard. Everything keyed by
//!    initiator — above all the feasible-graph cache — is sharded the
//!    same way, so one job touches one cache shard and same-initiator
//!    queries run back to back against a warm cache entry. Within a
//!    job, *identical* entries (same initiator, query, engine, no
//!    per-entry deadline/cancel) are **collapsed**: solved once, the
//!    outcome cloned to every ticket. On a serving workload with hot
//!    queries this is where batching beats a per-query loop even on a
//!    single core. Across batches (and the inline path) the same sharing
//!    continues through the **version-stamped result cache**: finished
//!    outcomes keyed by `(initiator, spec, engine)` and stamped with the
//!    `(graph_version, calendar_version)` epoch they were solved on —
//!    a repeat of a deterministic query on an unchanged world is
//!    replayed, not re-solved
//!    ([`ExecMetrics::result_cache_hits`]/[`ExecMetrics::result_cache_misses`]).
//! 3. **Worker pool.** A fixed set of threads (spawned at construction,
//!    joined on drop) blocks on the job queue. Each worker owns one
//!    [`PivotArena`](stgq_core::PivotArena) reused across every STGQ it
//!    solves — the zero-per-query-allocation property the sequential
//!    planner had, preserved per worker. Batch callers *help drain* the
//!    job queue instead of idling, so a one-core host pays no handoff
//!    tax.
//! 4. **Snapshot read path.** Workers never touch mutable state: they
//!    solve against an immutable [`WorldSnapshot`] (`Arc`-shared CSR
//!    graph + calendars, stamped with the graph/calendar versions it
//!    was built from). Writers publish a fresh snapshot into the
//!    executor's epoch cell ([`Executor::publish_snapshot`]) — an
//!    `Arc` swap, so **mutations never block in-flight solves**:
//!    running queries finish on the epoch they started with and drop
//!    their reference when done.
//!
//! Cancellation and deadlines ride the engines' frame-counter path
//! ([`stgq_core::SolveControl`]): a [`PlanRequest`] may carry a
//! [`CancelToken`](stgq_core::CancelToken) and/or a deadline, and a
//! stopped solve reports [`StopCause::Cancelled`](stgq_core::StopCause)
//! — never conflated with an anytime budget running out
//! ([`StopCause::FrameBudget`](stgq_core::StopCause)).
//!
//! The service crate's `Planner` is now a thin façade over this crate:
//! it owns the *mutable* world (network + calendars), publishes
//! snapshots on drift, and forwards queries one at a time
//! ([`Executor::execute_one`], inline on the caller thread) or in
//! batches ([`Executor::execute_batch`], through the pool).
//!
//! Exactness is engine-scoped, not executor-scoped: the executor never
//! reorders a query's search, so a batch of exact queries yields
//! bit-identical objectives to solving them sequentially — the
//! executor-determinism tests pin that across worker counts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod engine;
mod executor;
mod metrics;
mod obs;
mod queue;
mod request;
#[cfg(feature = "serde")]
mod serde_impls;
mod snapshot;
mod worker;

pub use cache::ExtractionMode;
pub use engine::Engine;
pub use executor::{ExecConfig, Executor};
pub use metrics::ExecMetrics;
pub use obs::{ExecObs, EXEC_HISTOGRAMS};
pub use queue::Ticket;
pub use request::{ExecError, PlanOutcome, PlanRequest, QuerySpec};
pub use snapshot::WorldSnapshot;
