//! Blocking queues and completion tickets (std `Mutex` + `Condvar`; the
//! workspace's `parking_lot` shim deliberately has no condition
//! variables).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::request::{ExecError, PlanOutcome};

/// A closeable MPMC queue: the worker pool blocks on it, batch callers
/// drain it opportunistically, and `Drop` closes it to release every
/// worker.
pub(crate) struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    pub(crate) fn new() -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue; returns `false` (dropping the item) after `close`.
    pub(crate) fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.cv.notify_one();
        true
    }

    /// Block until an item is available or the queue is closed (`None`).
    pub(crate) fn pop_blocking(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Take an item without blocking (used by batch callers helping to
    /// drain their own batch).
    pub(crate) fn try_pop(&self) -> Option<T> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .pop_front()
    }

    /// Close the queue: wakes every blocked `pop_blocking` with `None`.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cv.notify_all();
    }
}

/// The write side of one submitted request's completion slot.
pub(crate) struct TicketSlot {
    state: Mutex<Option<Result<PlanOutcome, ExecError>>>,
    cv: Condvar,
}

impl TicketSlot {
    pub(crate) fn new() -> Self {
        TicketSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Deliver the result (exactly once) and wake the waiter.
    pub(crate) fn fulfill(&self, result: Result<PlanOutcome, ExecError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(state.is_none(), "a ticket is fulfilled exactly once");
        *state = Some(result);
        drop(state);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<PlanOutcome, ExecError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A claim on one submitted request's eventual [`PlanOutcome`]. Returned
/// by [`Executor::submit`](crate::Executor::submit); redeem it with
/// [`wait`](Self::wait) after the batch has been flushed.
pub struct Ticket {
    pub(crate) slot: std::sync::Arc<TicketSlot>,
}

impl Ticket {
    /// Block until the executor answers this request. Call
    /// [`Executor::flush`](crate::Executor::flush) first (or rely on the
    /// `max_batch` auto-flush) — an admitted-but-undrained request has no
    /// one working on it.
    pub fn wait(self) -> Result<PlanOutcome, ExecError> {
        self.slot.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo_and_closeable() {
        let q: JobQueue<u32> = JobQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        q.close();
        assert!(!q.push(3), "closed queue refuses work");
        assert_eq!(q.pop_blocking(), None);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn closed_queue_releases_blocked_workers() {
        let q: std::sync::Arc<JobQueue<u32>> = std::sync::Arc::new(JobQueue::new());
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
