//! Engine selection and per-entry dispatch (moved here from the service
//! planner — execution policy lives in `stgq-exec`).

use stgq_core::heuristics::{
    greedy_sgq_on, greedy_stgq_on, local_search_sgq_on, local_search_stgq_on,
};
use stgq_core::{
    solve_sgq_controlled_on, solve_sgq_parallel_controlled_on, solve_stgq_controlled,
    solve_stgq_parallel_controlled_on, PivotArena, SelectConfig, SolveControl, SolveOutcome,
};
use stgq_graph::CandidateTopology;
use stgq_schedule::Cals;

use crate::request::QuerySpec;

/// Which solver answers a planning query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Sequential SGSelect / STGSelect — proven optimal.
    Exact,
    /// Parallel SGSelect / STGSelect — proven optimal, `threads` workers
    /// (`0` = all cores). Per-request cancellation/deadlines are polled
    /// by every worker (between claimed subtree/pivot tasks and on the
    /// frame path), so intra-query parallelism honours `SolveControl`
    /// exactly like `Exact` does.
    ExactParallel {
        /// Worker count; `0` means all available parallelism.
        threads: usize,
    },
    /// Budgeted SGSelect / STGSelect: returns the incumbent after at most
    /// `frame_budget` search frames. The report's `exact` flag tells
    /// whether the search actually finished.
    Anytime {
        /// Maximum search frames before returning the incumbent.
        frame_budget: u64,
    },
    /// Greedy construction with restarts — fast, feasible, no optimality
    /// guarantee.
    Greedy {
        /// Forced-first-pick restarts (1 = plain greedy).
        restarts: usize,
    },
    /// Greedy plus first-improvement swap descent.
    LocalSearch {
        /// Forced-first-pick restarts.
        restarts: usize,
        /// Improvement sweeps.
        passes: usize,
    },
}

impl Engine {
    /// Whether this engine produces [`stgq_core::SearchStats`] (the exact
    /// family does; the heuristics report feasibility evaluations
    /// instead).
    pub fn reports_search_stats(&self) -> bool {
        matches!(
            self,
            Engine::Exact | Engine::ExactParallel { .. } | Engine::Anytime { .. }
        )
    }

    /// Whether an uninterrupted run of this engine proves its answer
    /// optimal (or proves infeasibility).
    pub fn proves_optimality(&self) -> bool {
        matches!(self, Engine::Exact | Engine::ExactParallel { .. })
    }
}

/// Run one query spec with the chosen engine on a pre-extracted
/// candidate topology (materialized `FeasibleGraph` or zero-copy
/// `FeasibleView` — the engines are generic over both). Returns the
/// uniform [`SolveOutcome`] plus, for heuristic engines, the
/// feasibility-evaluation count.
pub(crate) fn run_spec<G: CandidateTopology>(
    fg: &G,
    calendars: Cals<'_>,
    spec: &QuerySpec,
    engine: Engine,
    cfg: &SelectConfig,
    control: Option<&SolveControl>,
    arena: &mut PivotArena,
) -> (SolveOutcome, Option<u64>) {
    match spec {
        QuerySpec::Sgq(query) => match engine {
            Engine::Exact => (
                SolveOutcome::Sgq(solve_sgq_controlled_on(fg, query, cfg, None, control)),
                None,
            ),
            Engine::ExactParallel { threads } => (
                SolveOutcome::Sgq(solve_sgq_parallel_controlled_on(
                    fg, query, cfg, None, threads, control,
                )),
                None,
            ),
            Engine::Anytime { frame_budget } => {
                let cfg = cfg.with_frame_budget(frame_budget);
                (
                    SolveOutcome::Sgq(solve_sgq_controlled_on(fg, query, &cfg, None, control)),
                    None,
                )
            }
            Engine::Greedy { restarts } => {
                let out = greedy_sgq_on(fg, query, None, restarts);
                (
                    SolveOutcome::Sgq(stgq_core::SgqOutcome {
                        solution: out.solution,
                        stats: Default::default(),
                    }),
                    Some(out.evaluations),
                )
            }
            Engine::LocalSearch { restarts, passes } => {
                let out = local_search_sgq_on(fg, query, None, restarts, passes);
                (
                    SolveOutcome::Sgq(stgq_core::SgqOutcome {
                        solution: out.solution,
                        stats: Default::default(),
                    }),
                    Some(out.evaluations),
                )
            }
        },
        QuerySpec::Stgq(query) => match engine {
            Engine::Exact => (
                SolveOutcome::Stgq(solve_stgq_controlled(
                    fg, calendars, query, cfg, arena, control,
                )),
                None,
            ),
            Engine::ExactParallel { threads } => (
                SolveOutcome::Stgq(solve_stgq_parallel_controlled_on(
                    fg, calendars, query, cfg, threads, control,
                )),
                None,
            ),
            Engine::Anytime { frame_budget } => {
                let cfg = cfg.with_frame_budget(frame_budget);
                (
                    SolveOutcome::Stgq(solve_stgq_controlled(
                        fg, calendars, query, &cfg, arena, control,
                    )),
                    None,
                )
            }
            Engine::Greedy { restarts } => {
                let out = greedy_stgq_on(fg, calendars, query, restarts);
                (
                    SolveOutcome::Stgq(stgq_core::StgqOutcome {
                        solution: out.solution,
                        stats: Default::default(),
                    }),
                    Some(out.evaluations),
                )
            }
            Engine::LocalSearch { restarts, passes } => {
                let out = local_search_stgq_on(fg, calendars, query, restarts, passes);
                (
                    SolveOutcome::Stgq(stgq_core::StgqOutcome {
                        solution: out.solution,
                        stats: Default::default(),
                    }),
                    Some(out.evaluations),
                )
            }
        },
    }
}
