//! The shard-partitioned feasible-graph cache.
//!
//! Radius-graph extraction (§3.2.1) is the per-query fixed cost every
//! engine pays; for a service handling repeated queries from the same
//! initiators it is also the most cacheable: the feasible graph depends
//! only on the social graph, never on calendars, `p`, `k` or `m`.
//! (Moved here from `stgq-service` — the cache is execution policy.)
//!
//! The cache is partitioned by **initiator shard** — the same partition
//! the batch scheduler groups jobs by — so concurrent workers touching
//! different shards never contend on one lock, and a shard job's
//! back-to-back same-initiator queries hit a warm shard.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use stgq_graph::{FeasibleGraph, NodeId, SocialGraph};

use crate::engine::Engine;
use crate::request::{PlanOutcome, QuerySpec};

/// A bounded FIFO cache of feasible graphs keyed by `(initiator, s)`,
/// each entry stamped with the graph version it was built from.
#[derive(Debug)]
pub(crate) struct FeasibleCache {
    entries: HashMap<(u32, usize), Entry>,
    insertion_order: VecDeque<(u32, usize)>,
    capacity: usize,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    fg: Arc<FeasibleGraph>,
}

impl FeasibleCache {
    pub(crate) fn new(capacity: usize) -> Self {
        FeasibleCache {
            entries: HashMap::new(),
            insertion_order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `(initiator, s)` at `version`; stale entries miss (and are
    /// evicted on replacement).
    pub(crate) fn get(
        &mut self,
        initiator: u32,
        s: usize,
        version: u64,
    ) -> Option<Arc<FeasibleGraph>> {
        match self.entries.get(&(initiator, s)) {
            Some(e) if e.version == version => {
                self.hits += 1;
                Some(Arc::clone(&e.fg))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly-built graph, evicting the oldest entry at capacity.
    pub(crate) fn put(&mut self, initiator: u32, s: usize, version: u64, fg: Arc<FeasibleGraph>) {
        let key = (initiator, s);
        if self.entries.insert(key, Entry { version, fg }).is_none() {
            self.insertion_order.push_back(key);
            if self.insertion_order.len() > self.capacity {
                if let Some(oldest) = self.insertion_order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// [`FeasibleCache`] partitioned by initiator shard.
pub(crate) struct ShardedFeasibleCache {
    shards: Vec<Mutex<FeasibleCache>>,
}

impl ShardedFeasibleCache {
    /// `shards` caches splitting `capacity` entries between them.
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedFeasibleCache {
            shards: (0..shards)
                .map(|_| Mutex::new(FeasibleCache::new(per_shard)))
                .collect(),
        }
    }

    /// The shard owning `initiator` (the batch scheduler must use the
    /// same mapping).
    pub(crate) fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.shards.len()
    }

    /// The feasible graph for `(initiator, s)` on `graph` at `version`,
    /// extracting (and caching) on miss. Returns the graph and whether it
    /// was a hit. Extraction happens outside the shard lock.
    pub(crate) fn get_or_extract(
        &self,
        graph: &SocialGraph,
        initiator: NodeId,
        s: usize,
        version: u64,
    ) -> (Arc<FeasibleGraph>, bool) {
        let shard = &self.shards[self.shard_of(initiator)];
        if let Some(fg) = shard.lock().get(initiator.0, s, version) {
            return (fg, true);
        }
        let fg = Arc::new(FeasibleGraph::extract(graph, initiator, s));
        shard.lock().put(initiator.0, s, version, Arc::clone(&fg));
        (fg, false)
    }

    /// Aggregate `(hits, misses, cached_graphs)` over every shard.
    pub(crate) fn stats(&self) -> (u64, u64, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut len = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            hits += guard.hits;
            misses += guard.misses;
            len += guard.len();
        }
        (hits, misses, len)
    }
}

/// The version-stamped, cross-batch **result cache**: finished
/// [`PlanOutcome`]s keyed by `(initiator, spec, engine)` and stamped with
/// the `(graph_version, calendar_version)` epoch they were solved on.
///
/// Within-batch request collapsing only shares work between identical
/// entries of *one* shard job; on a serving workload the same hot query
/// recurs across batches (and through the inline
/// [`execute_one`](crate::Executor::execute_one) path), re-solving
/// against an unchanged world every time. Deterministic requests — no
/// per-entry deadline or cancellation token — are safe to answer from a
/// finished outcome as long as **both** world versions still match:
/// graph edits and calendar edits each invalidate independently, which
/// the full stamp captures.
///
/// Partitioned by initiator shard exactly like the feasible-graph cache,
/// for the same two reasons: no cross-shard lock contention, and a shard
/// job's repeated initiators stay within one warm shard.
pub(crate) struct ResultCache {
    shards: Vec<Mutex<ResultShard>>,
    /// Zero capacity disables the cache entirely (every lookup misses
    /// without counting, every insert is dropped).
    per_shard: usize,
}

type ResultKey = (u32, QuerySpec, Engine);

#[derive(Default)]
struct ResultShard {
    entries: HashMap<ResultKey, StampedOutcome>,
    insertion_order: VecDeque<ResultKey>,
    hits: u64,
    misses: u64,
}

struct StampedOutcome {
    graph_version: u64,
    calendar_version: u64,
    outcome: PlanOutcome,
}

impl ResultCache {
    /// `shards` shards splitting `capacity` entries between them
    /// (`capacity == 0` disables the cache).
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ResultShard::default()))
                .collect(),
            per_shard: capacity.div_ceil(shards),
        }
    }

    fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.shards.len()
    }

    /// A finished outcome for `key` at exactly this epoch, if one is
    /// cached. Stale stamps miss (and are overwritten on the next
    /// insert). The returned clone has `result_cache_hit` set and zero
    /// elapsed time.
    pub(crate) fn get(
        &self,
        initiator: NodeId,
        spec: QuerySpec,
        engine: Engine,
        graph_version: u64,
        calendar_version: u64,
    ) -> Option<PlanOutcome> {
        if self.per_shard == 0 {
            return None;
        }
        let mut shard = self.shards[self.shard_of(initiator)].lock();
        let found = match shard.entries.get(&(initiator.0, spec, engine)) {
            Some(e)
                if e.graph_version == graph_version && e.calendar_version == calendar_version =>
            {
                let mut outcome = e.outcome.clone();
                outcome.result_cache_hit = true;
                outcome.elapsed = std::time::Duration::ZERO;
                Some(outcome)
            }
            _ => None,
        };
        if found.is_some() {
            shard.hits += 1;
        } else {
            shard.misses += 1;
        }
        found
    }

    /// Remember a finished outcome, evicting the oldest key at capacity.
    pub(crate) fn put(
        &self,
        initiator: NodeId,
        spec: QuerySpec,
        engine: Engine,
        graph_version: u64,
        calendar_version: u64,
        outcome: PlanOutcome,
    ) {
        if self.per_shard == 0 {
            return;
        }
        let key = (initiator.0, spec, engine);
        let stamped = StampedOutcome {
            graph_version,
            calendar_version,
            outcome,
        };
        let mut shard = self.shards[self.shard_of(initiator)].lock();
        if shard.entries.insert(key, stamped).is_none() {
            shard.insertion_order.push_back(key);
            if shard.insertion_order.len() > self.per_shard {
                if let Some(oldest) = shard.insertion_order.pop_front() {
                    shard.entries.remove(&oldest);
                }
            }
        }
    }

    /// Aggregate `(hits, misses, cached_results)` over every shard.
    pub(crate) fn stats(&self) -> (u64, u64, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut len = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            hits += guard.hits;
            misses += guard.misses;
            len += guard.entries.len();
        }
        (hits, misses, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::GraphBuilder;

    fn fg() -> Arc<FeasibleGraph> {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        Arc::new(FeasibleGraph::extract(&b.build(), NodeId(0), 1))
    }

    #[test]
    fn hit_requires_matching_version() {
        let mut c = FeasibleCache::new(4);
        c.put(0, 1, 7, fg());
        assert!(c.get(0, 1, 7).is_some());
        assert!(c.get(0, 1, 8).is_none(), "stale version must miss");
        assert!(c.get(1, 1, 7).is_none(), "different initiator must miss");
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn capacity_evicts_oldest_key() {
        let mut c = FeasibleCache::new(2);
        c.put(0, 1, 1, fg());
        c.put(1, 1, 1, fg());
        c.put(2, 1, 1, fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, 1).is_none(), "oldest key evicted");
        assert!(c.get(2, 1, 1).is_some());
    }

    #[test]
    fn replacing_a_key_does_not_grow_the_order_queue() {
        let mut c = FeasibleCache::new(2);
        for version in 0..10 {
            c.put(0, 1, version, fg());
        }
        c.put(1, 1, 0, fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, 9).is_some());
    }

    #[test]
    fn sharded_cache_partitions_by_initiator() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6u32 {
            b.add_edge(NodeId(0), NodeId(v), v.into()).unwrap();
        }
        b.add_edge(NodeId(1), NodeId(3), 2).unwrap();
        let g = b.build();
        let cache = ShardedFeasibleCache::new(4, 8);
        assert_ne!(cache.shard_of(NodeId(0)), cache.shard_of(NodeId(1)));

        let (_, hit) = cache.get_or_extract(&g, NodeId(0), 1, 3);
        assert!(!hit);
        let (_, hit) = cache.get_or_extract(&g, NodeId(0), 1, 3);
        assert!(hit);
        let (_, hit) = cache.get_or_extract(&g, NodeId(0), 1, 4);
        assert!(!hit, "new version misses");
        let (hits, misses, len) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(len, 1, "same key replaced in place");
    }
}
