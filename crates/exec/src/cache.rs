//! The shard-partitioned, **delta-scoped** caches: feasible graphs and
//! finished results, both stamped with the shard-local versions the
//! solve actually read.
//!
//! Radius-graph extraction (§3.2.1) is the per-query fixed cost every
//! engine pays; for a service handling repeated queries from the same
//! initiators it is also the most cacheable: the feasible graph depends
//! only on the social graph, never on calendars, `p`, `k` or `m`.
//! (Moved here from `stgq-service` — the cache is execution policy.)
//!
//! # Stamp → lookup lifecycle
//!
//! Entries are never flushed when the world moves. Instead, each entry
//! records the **read set** of the solve that produced it — the
//! `(shard, shard_version)` pairs of every shard its feasible graph's
//! vertices live in (see `WorldSnapshot::graph_stamps_for`) — and every
//! lookup re-validates those stamps against the *current* snapshot's
//! per-shard version vector:
//!
//! ```text
//!   put:    entry.stamps = { (s, v[s]) | s ∈ shards(fg) }
//!   lookup: fresh  ⇔ shard_count matches ∧ ∀(s, v) ∈ stamps: v == v'[s]
//!           stale  ⇒ evict now (counted), miss
//! ```
//!
//! A mutation confined to one community therefore invalidates only the
//! entries whose solves read that community's shards — everyone else's
//! cached work survives the write. The `from_flat` publication path
//! floods every shard stamp with the global version, which makes this
//! degrade to exactly the old whole-world behaviour.
//!
//! Both caches are partitioned by **initiator shard** — the same
//! partition the batch scheduler groups jobs by — so concurrent workers
//! touching different shards never contend on one lock, and a shard
//! job's back-to-back same-initiator queries hit a warm shard.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use stgq_graph::{CandidateTopology, FeasibleGraph, FeasibleView, NodeId};

use crate::engine::Engine;
use crate::request::{PlanOutcome, QuerySpec};
use crate::snapshot::WorldSnapshot;

/// How the executor turns a cache miss into a candidate topology.
///
/// Both carriers implement
/// [`CandidateTopology`](stgq_graph::CandidateTopology) and the engines
/// are generic over it, so the two modes produce **bit-identical**
/// answers and search statistics — the difference is purely what the
/// extraction pays for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExtractionMode {
    /// Zero-copy: build a [`FeasibleView`] — a compact candidate index
    /// whose adjacency words are generated shard-segment-wise from the
    /// snapshot's borrowed CSR segments and masked against the
    /// candidate bitmap. No per-query adjacency matrix is copied; the
    /// per-query cost is the index build
    /// ([`ExecMetrics::extract_words_borrowed`](crate::ExecMetrics::extract_words_borrowed)).
    #[default]
    View,
    /// Materialize a per-query [`FeasibleGraph`] (the pre-view
    /// reference path, kept as the bit-identity oracle and for A/B
    /// benchmarking —
    /// [`ExecMetrics::extract_words_copied`](crate::ExecMetrics::extract_words_copied)).
    Materialized,
}

/// A cached extraction — one of the two [`ExtractionMode`] carriers.
#[derive(Clone, Debug)]
pub(crate) enum Extracted {
    /// Materialized per-query graph (owned adjacency matrix).
    Graph(Arc<FeasibleGraph>),
    /// Zero-copy view over the snapshot's CSR segments.
    View(Arc<FeasibleView>),
}

impl Extracted {
    /// Adjacency words this extraction generated: copied into the owned
    /// matrix (graph) or masked in place over borrowed segments (view).
    /// Identical for the same `(initiator, s)` on the same world — the
    /// counters separate the two paths, not the amounts.
    pub(crate) fn words(&self) -> u64 {
        match self {
            Extracted::Graph(fg) => (fg.len() * fg.word_stride()) as u64,
            Extracted::View(view) => view.words_generated(),
        }
    }

    /// Graph-axis read-set stamps for this extraction on `snapshot`.
    pub(crate) fn graph_stamps(&self, snapshot: &WorldSnapshot) -> Vec<(u32, u64)> {
        match self {
            Extracted::Graph(fg) => snapshot.graph_stamps_for(fg.as_ref()),
            Extracted::View(view) => snapshot.graph_stamps_for(view.as_ref()),
        }
    }

    /// Calendar-axis read-set stamps over the same shards.
    pub(crate) fn calendar_stamps(&self, snapshot: &WorldSnapshot) -> Vec<(u32, u64)> {
        match self {
            Extracted::Graph(fg) => snapshot.calendar_stamps_for(fg.as_ref()),
            Extracted::View(view) => snapshot.calendar_stamps_for(view.as_ref()),
        }
    }
}

/// Whether an entry's recorded read set is still current: the shard
/// modulus must match (stamps are meaningless across different
/// partitions) and every stamped shard must still be at the stamped
/// version.
fn stamps_fresh(entry_shards: usize, stamps: &[(u32, u64)], current: &[u64]) -> bool {
    entry_shards == current.len() && stamps.iter().all(|&(s, v)| current[s as usize] == v)
}

/// A bounded FIFO cache of feasible graphs keyed by `(initiator, s)`,
/// each entry stamped with the graph-axis shard versions its extraction
/// read.
#[derive(Debug)]
pub(crate) struct FeasibleCache {
    entries: HashMap<(u32, usize), Entry>,
    insertion_order: VecDeque<(u32, usize)>,
    capacity: usize,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

#[derive(Debug)]
struct Entry {
    /// The shard modulus the stamps were taken under.
    shards: usize,
    /// `(shard, graph_shard_version)` for every shard the extraction read.
    stamps: Vec<(u32, u64)>,
    fg: Extracted,
}

impl FeasibleCache {
    pub(crate) fn new(capacity: usize) -> Self {
        FeasibleCache {
            entries: HashMap::new(),
            insertion_order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `(initiator, s)` against the current graph-axis shard
    /// versions; an entry with a moved stamp is evicted on the spot and
    /// the lookup misses.
    pub(crate) fn get(&mut self, initiator: u32, s: usize, current: &[u64]) -> Option<Extracted> {
        let key = (initiator, s);
        match self.entries.get(&key) {
            Some(e) if stamps_fresh(e.shards, &e.stamps, current) => {
                self.hits += 1;
                Some(e.fg.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.insertion_order.retain(|k| *k != key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a fresh extraction with its read-set stamps, evicting
    /// the oldest entry at capacity.
    pub(crate) fn put(
        &mut self,
        initiator: u32,
        s: usize,
        shards: usize,
        stamps: Vec<(u32, u64)>,
        fg: Extracted,
    ) {
        let key = (initiator, s);
        let entry = Entry { shards, stamps, fg };
        if self.entries.insert(key, entry).is_none() {
            self.insertion_order.push_back(key);
            if self.insertion_order.len() > self.capacity {
                if let Some(oldest) = self.insertion_order.pop_front() {
                    self.entries.remove(&oldest);
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// [`FeasibleCache`] partitioned by initiator shard.
pub(crate) struct ShardedFeasibleCache {
    shards: Vec<Mutex<FeasibleCache>>,
}

impl ShardedFeasibleCache {
    /// `shards` caches splitting `capacity` entries between them.
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedFeasibleCache {
            shards: (0..shards)
                .map(|_| Mutex::new(FeasibleCache::new(per_shard)))
                .collect(),
        }
    }

    /// The shard owning `initiator` (the batch scheduler must use the
    /// same mapping).
    pub(crate) fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.shards.len()
    }

    /// The candidate topology for `(initiator, s)` on `snapshot`,
    /// extracting per `mode` (and caching, stamped with the shards the
    /// extraction read) on miss. Returns the extraction and whether it
    /// was a hit. Extraction happens outside the shard lock.
    pub(crate) fn get_or_extract(
        &self,
        snapshot: &WorldSnapshot,
        initiator: NodeId,
        s: usize,
        mode: ExtractionMode,
    ) -> (Extracted, bool) {
        let shard = &self.shards[self.shard_of(initiator)];
        if let Some(fg) = shard
            .lock()
            .get(initiator.0, s, snapshot.graph_shard_versions())
        {
            return (fg, true);
        }
        let fg = match mode {
            ExtractionMode::View => Extracted::View(Arc::new(FeasibleView::extract(
                snapshot.graph(),
                initiator,
                s,
            ))),
            ExtractionMode::Materialized => Extracted::Graph(Arc::new(
                FeasibleGraph::extract_from(snapshot.graph(), initiator, s),
            )),
        };
        let stamps = fg.graph_stamps(snapshot);
        shard
            .lock()
            .put(initiator.0, s, snapshot.shard_count(), stamps, fg.clone());
        (fg, false)
    }

    /// Aggregate `(hits, misses, cached_graphs)` over every shard.
    pub(crate) fn stats(&self) -> (u64, u64, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut len = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            hits += guard.hits;
            misses += guard.misses;
            len += guard.len();
        }
        (hits, misses, len)
    }
}

/// The shard-stamped, cross-batch **result cache**: finished
/// [`PlanOutcome`]s keyed by `(initiator, spec, engine)` and stamped with
/// the shard-local versions the solve read on each axis.
///
/// Within-batch request collapsing only shares work between identical
/// entries of *one* shard job; on a serving workload the same hot query
/// recurs across batches (and through the inline
/// [`execute_one`](crate::Executor::execute_one) path), re-solving
/// against an unchanged world every time. Deterministic requests — no
/// per-entry deadline or cancellation token — are safe to answer from a
/// finished outcome as long as every stamped shard is unmoved on **both**
/// axes. The graph stamps cover the feasible graph's shards; the
/// calendar stamps cover the same shards for STGQ and are **empty for
/// SGQ** — a purely social query is immune to calendar edits, so those
/// entries survive every availability change.
///
/// Partitioned by initiator shard exactly like the feasible-graph cache,
/// for the same two reasons: no cross-shard lock contention, and a shard
/// job's repeated initiators stay within one warm shard.
pub(crate) struct ResultCache {
    shards: Vec<Mutex<ResultShard>>,
    /// Zero capacity disables the cache entirely (every lookup misses
    /// without counting, every insert is dropped).
    per_shard: usize,
}

type ResultKey = (u32, QuerySpec, Engine);

#[derive(Default)]
struct ResultShard {
    entries: HashMap<ResultKey, StampedOutcome>,
    insertion_order: VecDeque<ResultKey>,
    hits: u64,
    misses: u64,
    evicted_stale_shard: u64,
    evicted_capacity: u64,
}

struct StampedOutcome {
    /// The shard modulus the stamps were taken under.
    shards: usize,
    /// `(shard, graph_shard_version)` over the feasible graph's shards.
    graph_stamps: Vec<(u32, u64)>,
    /// `(shard, calendar_shard_version)` over the same shards for STGQ;
    /// empty for SGQ (calendars cannot change a purely social answer).
    calendar_stamps: Vec<(u32, u64)>,
    outcome: PlanOutcome,
}

/// Aggregated [`ResultCache`] counters.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ResultCacheStats {
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) len: usize,
    pub(crate) evicted_stale_shard: u64,
    pub(crate) evicted_capacity: u64,
}

impl ResultCache {
    /// `shards` shards splitting `capacity` entries between them
    /// (`capacity == 0` disables the cache).
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(ResultShard::default()))
                .collect(),
            per_shard: capacity.div_ceil(shards),
        }
    }

    fn shard_of(&self, initiator: NodeId) -> usize {
        initiator.0 as usize % self.shards.len()
    }

    /// A finished outcome for `key` whose stamped shards are all unmoved
    /// in `snapshot`, if one is cached. A stale entry is evicted on the
    /// spot (counted as `evicted_stale_shard`) and the lookup misses.
    /// The returned clone has `result_cache_hit` set and zero elapsed
    /// time.
    pub(crate) fn get(
        &self,
        initiator: NodeId,
        spec: QuerySpec,
        engine: Engine,
        snapshot: &WorldSnapshot,
    ) -> Option<PlanOutcome> {
        if self.per_shard == 0 {
            return None;
        }
        let key = (initiator.0, spec, engine);
        let mut shard = self.shards[self.shard_of(initiator)].lock();
        match shard.entries.get(&key) {
            Some(e)
                if stamps_fresh(e.shards, &e.graph_stamps, snapshot.graph_shard_versions())
                    && stamps_fresh(
                        e.shards,
                        &e.calendar_stamps,
                        snapshot.calendar_shard_versions(),
                    ) =>
            {
                let mut outcome = e.outcome.clone();
                outcome.result_cache_hit = true;
                outcome.elapsed = std::time::Duration::ZERO;
                shard.hits += 1;
                Some(outcome)
            }
            Some(_) => {
                shard.entries.remove(&key);
                shard.insertion_order.retain(|k| *k != key);
                shard.evicted_stale_shard += 1;
                shard.misses += 1;
                None
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Remember a finished outcome with the read-set stamps of the solve
    /// that produced it, evicting the oldest key at capacity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn put(
        &self,
        initiator: NodeId,
        spec: QuerySpec,
        engine: Engine,
        shards: usize,
        graph_stamps: Vec<(u32, u64)>,
        calendar_stamps: Vec<(u32, u64)>,
        outcome: PlanOutcome,
    ) {
        if self.per_shard == 0 {
            return;
        }
        let key = (initiator.0, spec, engine);
        let stamped = StampedOutcome {
            shards,
            graph_stamps,
            calendar_stamps,
            outcome,
        };
        let mut shard = self.shards[self.shard_of(initiator)].lock();
        if shard.entries.insert(key, stamped).is_none() {
            shard.insertion_order.push_back(key);
            if shard.insertion_order.len() > self.per_shard {
                if let Some(oldest) = shard.insertion_order.pop_front() {
                    shard.entries.remove(&oldest);
                    shard.evicted_capacity += 1;
                }
            }
        }
    }

    /// Aggregate counters over every shard.
    pub(crate) fn stats(&self) -> ResultCacheStats {
        let mut total = ResultCacheStats::default();
        for shard in &self.shards {
            let guard = shard.lock();
            total.hits += guard.hits;
            total.misses += guard.misses;
            total.len += guard.entries.len();
            total.evicted_stale_shard += guard.evicted_stale_shard;
            total.evicted_capacity += guard.evicted_capacity;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::GraphBuilder;

    fn fg() -> Extracted {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        Extracted::Graph(Arc::new(FeasibleGraph::extract(&b.build(), NodeId(0), 1)))
    }

    /// An entry stamped as having read shard 0 of 2 at version `v`.
    fn stamp0(v: u64) -> Vec<(u32, u64)> {
        vec![(0, v)]
    }

    #[test]
    fn hit_requires_every_stamped_shard_unmoved() {
        let mut c = FeasibleCache::new(4);
        c.put(0, 1, 2, stamp0(7), fg());
        assert!(
            c.get(0, 1, &[7, 3]).is_some(),
            "unstamped shard 1 is free to move"
        );
        assert!(c.get(0, 1, &[7, 99]).is_some());
        assert!(c.get(0, 1, &[8, 3]).is_none(), "stamped shard moved: stale");
        assert!(
            c.get(0, 1, &[7, 3]).is_none(),
            "stale entry was evicted, not resurrected"
        );
        assert_eq!((c.hits, c.misses), (2, 2));
    }

    #[test]
    fn shard_count_change_is_stale() {
        let mut c = FeasibleCache::new(4);
        c.put(0, 1, 2, stamp0(7), fg());
        assert!(
            c.get(0, 1, &[7, 7, 7]).is_none(),
            "stamps under a different modulus never validate"
        );
    }

    #[test]
    fn capacity_evicts_oldest_key() {
        let mut c = FeasibleCache::new(2);
        c.put(0, 1, 2, stamp0(1), fg());
        c.put(1, 1, 2, stamp0(1), fg());
        c.put(2, 1, 2, stamp0(1), fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, &[1, 1]).is_none(), "oldest key evicted");
        assert!(c.get(2, 1, &[1, 1]).is_some());
    }

    #[test]
    fn replacing_a_key_does_not_grow_the_order_queue() {
        let mut c = FeasibleCache::new(2);
        for version in 0..10 {
            c.put(0, 1, 2, stamp0(version), fg());
        }
        c.put(1, 1, 2, stamp0(0), fg());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1, &[9, 0]).is_some());
    }

    #[test]
    fn stale_eviction_then_reinsert_keeps_the_queue_consistent() {
        let mut c = FeasibleCache::new(2);
        c.put(0, 1, 2, stamp0(1), fg());
        c.put(1, 1, 2, stamp0(1), fg());
        // Shard 0 moves: the first entry goes stale and is evicted.
        assert!(c.get(0, 1, &[2, 1]).is_none());
        assert_eq!(c.len(), 1);
        // Re-inserting it must occupy a real queue slot again.
        c.put(0, 1, 2, stamp0(2), fg());
        c.put(2, 1, 2, stamp0(2), fg());
        assert_eq!(c.len(), 2, "capacity still enforced");
        assert!(c.get(1, 1, &[2, 1]).is_none(), "oldest (key 1) evicted");
        assert!(c.get(0, 1, &[2, 1]).is_some());
        assert!(c.get(2, 1, &[2, 1]).is_some());
    }

    #[test]
    fn sharded_cache_partitions_by_initiator() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6u32 {
            b.add_edge(NodeId(0), NodeId(v), v.into()).unwrap();
        }
        b.add_edge(NodeId(1), NodeId(3), 2).unwrap();
        let g = b.build();
        let snap = |gv| WorldSnapshot::from_flat(&g, &[], 4, gv, 0);
        let cache = ShardedFeasibleCache::new(4, 8);
        assert_ne!(cache.shard_of(NodeId(0)), cache.shard_of(NodeId(1)));

        let s3 = snap(3);
        let (_, hit) = cache.get_or_extract(&s3, NodeId(0), 1, ExtractionMode::View);
        assert!(!hit);
        let (_, hit) = cache.get_or_extract(&s3, NodeId(0), 1, ExtractionMode::View);
        assert!(hit);
        let (_, hit) = cache.get_or_extract(&snap(4), NodeId(0), 1, ExtractionMode::View);
        assert!(!hit, "a flooded version bump misses");
        let (hits, misses, len) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(len, 1, "same key replaced in place");
    }
}
