//! Wire encodings (`serde` feature) for the executor's request/outcome
//! envelopes — what a cluster transport ships between nodes. Enum shapes
//! are hand-written (the offline derive shim covers structs only);
//! `Duration` crosses as whole nanoseconds.

use std::time::Duration;

use serde::value::{get, Value};
use serde::{DeError, Deserialize, Serialize};
use stgq_core::{SgqQuery, SolveOutcome, StgqQuery, StopCause};

use crate::request::{ExecError, PlanOutcome, QuerySpec};
use crate::Engine;
use stgq_graph::NodeId;

impl Serialize for QuerySpec {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            QuerySpec::Sgq(q) => ("sgq", q.to_value()),
            QuerySpec::Stgq(q) => ("stgq", q.to_value()),
        };
        Value::Object(vec![(tag.to_string(), inner)])
    }
}

impl Deserialize for QuerySpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for QuerySpec"))?;
        if let Some(inner) = get(entries, "sgq") {
            return Ok(QuerySpec::Sgq(SgqQuery::from_value(inner)?));
        }
        if let Some(inner) = get(entries, "stgq") {
            return Ok(QuerySpec::Stgq(StgqQuery::from_value(inner)?));
        }
        Err(DeError::new("QuerySpec needs an `sgq` or `stgq` key"))
    }
}

impl Serialize for Engine {
    fn to_value(&self) -> Value {
        let entry = |tag: &str, fields: Vec<(String, Value)>| {
            Value::Object(vec![(tag.to_string(), Value::Object(fields))])
        };
        match self {
            Engine::Exact => Value::Str("exact".to_string()),
            Engine::ExactParallel { threads } => entry(
                "exact_parallel",
                vec![("threads".to_string(), threads.to_value())],
            ),
            Engine::Anytime { frame_budget } => entry(
                "anytime",
                vec![("frame_budget".to_string(), frame_budget.to_value())],
            ),
            Engine::Greedy { restarts } => entry(
                "greedy",
                vec![("restarts".to_string(), restarts.to_value())],
            ),
            Engine::LocalSearch { restarts, passes } => entry(
                "local_search",
                vec![
                    ("restarts".to_string(), restarts.to_value()),
                    ("passes".to_string(), passes.to_value()),
                ],
            ),
        }
    }
}

impl Deserialize for Engine {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Value::Str(s) = v {
            return match s.as_str() {
                "exact" => Ok(Engine::Exact),
                other => Err(DeError::new(format!("unknown engine `{other}`"))),
            };
        }
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected string or object for Engine"))?;
        let [(tag, inner)] = entries else {
            return Err(DeError::new("Engine object must have exactly one key"));
        };
        let fields = inner
            .as_object()
            .ok_or_else(|| DeError::new("expected object for Engine payload"))?;
        let field =
            |name: &str| -> Result<usize, DeError> {
                usize::from_value(get(fields, name).ok_or_else(|| {
                    DeError::new(format!("missing field `{name}` in Engine::{tag}"))
                })?)
            };
        match tag.as_str() {
            "exact_parallel" => Ok(Engine::ExactParallel {
                threads: field("threads")?,
            }),
            "anytime" => Ok(Engine::Anytime {
                frame_budget: field("frame_budget")? as u64,
            }),
            "greedy" => Ok(Engine::Greedy {
                restarts: field("restarts")?,
            }),
            "local_search" => Ok(Engine::LocalSearch {
                restarts: field("restarts")?,
                passes: field("passes")?,
            }),
            other => Err(DeError::new(format!("unknown engine `{other}`"))),
        }
    }
}

impl Serialize for PlanOutcome {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("outcome".to_string(), self.outcome.to_value()),
            ("evaluations".to_string(), self.evaluations.to_value()),
            ("exact".to_string(), self.exact.to_value()),
            ("stop".to_string(), self.stop.to_value()),
            ("engine".to_string(), self.engine.to_value()),
            (
                "elapsed_ns".to_string(),
                (self.elapsed.as_nanos() as u64).to_value(),
            ),
            (
                "feasible_cache_hit".to_string(),
                self.feasible_cache_hit.to_value(),
            ),
            ("collapsed".to_string(), self.collapsed.to_value()),
            (
                "result_cache_hit".to_string(),
                self.result_cache_hit.to_value(),
            ),
        ])
    }
}

impl Deserialize for PlanOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected object for PlanOutcome"))?;
        let need = |name: &str| -> Result<&Value, DeError> {
            get(entries, name)
                .ok_or_else(|| DeError::new(format!("missing field `{name}` in PlanOutcome")))
        };
        Ok(PlanOutcome {
            outcome: SolveOutcome::from_value(need("outcome")?)?,
            evaluations: Option::<u64>::from_value(need("evaluations")?)?,
            exact: bool::from_value(need("exact")?)?,
            stop: StopCause::from_value(need("stop")?)?,
            engine: Engine::from_value(need("engine")?)?,
            elapsed: Duration::from_nanos(u64::from_value(need("elapsed_ns")?)?),
            feasible_cache_hit: bool::from_value(need("feasible_cache_hit")?)?,
            collapsed: bool::from_value(need("collapsed")?)?,
            result_cache_hit: bool::from_value(need("result_cache_hit")?)?,
        })
    }
}

impl Serialize for ExecError {
    fn to_value(&self) -> Value {
        match self {
            ExecError::InitiatorOutOfRange {
                initiator,
                node_count,
            } => Value::Object(vec![(
                "initiator_out_of_range".to_string(),
                Value::Object(vec![
                    ("initiator".to_string(), initiator.0.to_value()),
                    ("node_count".to_string(), node_count.to_value()),
                ]),
            )]),
            ExecError::NoSnapshot => Value::Str("no_snapshot".to_string()),
            ExecError::EpochTooOld {
                required,
                available,
            } => Value::Object(vec![(
                "epoch_too_old".to_string(),
                Value::Object(vec![
                    ("required".to_string(), required.to_value()),
                    ("available".to_string(), available.to_value()),
                ]),
            )]),
            ExecError::ShuttingDown => Value::Str("shutting_down".to_string()),
        }
    }
}

impl Deserialize for ExecError {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Value::Str(s) = v {
            return match s.as_str() {
                "no_snapshot" => Ok(ExecError::NoSnapshot),
                "shutting_down" => Ok(ExecError::ShuttingDown),
                other => Err(DeError::new(format!("unknown ExecError `{other}`"))),
            };
        }
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("expected string or object for ExecError"))?;
        let [(tag, inner)] = entries else {
            return Err(DeError::new("ExecError object must have exactly one key"));
        };
        let fields = inner
            .as_object()
            .ok_or_else(|| DeError::new("expected object for ExecError payload"))?;
        let need = |name: &str| -> Result<&Value, DeError> {
            get(fields, name)
                .ok_or_else(|| DeError::new(format!("missing field `{name}` in {tag}")))
        };
        match tag.as_str() {
            "initiator_out_of_range" => Ok(ExecError::InitiatorOutOfRange {
                initiator: NodeId(u32::from_value(need("initiator")?)?),
                node_count: usize::from_value(need("node_count")?)?,
            }),
            "epoch_too_old" => Ok(ExecError::EpochTooOld {
                required: <(u64, u64)>::from_value(need("required")?)?,
                available: <(u64, u64)>::from_value(need("available")?)?,
            }),
            other => Err(DeError::new(format!("unknown ExecError `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::{SearchStats, SgqOutcome};

    #[test]
    fn engines_and_specs_roundtrip() {
        for engine in [
            Engine::Exact,
            Engine::ExactParallel { threads: 4 },
            Engine::Anytime { frame_budget: 99 },
            Engine::Greedy { restarts: 3 },
            Engine::LocalSearch {
                restarts: 2,
                passes: 5,
            },
        ] {
            let back: Engine =
                serde_json::from_str(&serde_json::to_string(&engine).unwrap()).unwrap();
            assert_eq!(back, engine);
        }
        let spec = QuerySpec::Stgq(StgqQuery::new(4, 2, 1, 3).unwrap());
        let back: QuerySpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn outcomes_and_errors_roundtrip() {
        let outcome = PlanOutcome {
            outcome: SolveOutcome::Sgq(SgqOutcome {
                solution: None,
                stats: SearchStats {
                    frames: 3,
                    ..Default::default()
                },
            }),
            evaluations: Some(17),
            exact: true,
            stop: StopCause::Completed,
            engine: Engine::Exact,
            elapsed: Duration::from_nanos(1234),
            feasible_cache_hit: true,
            collapsed: false,
            result_cache_hit: true,
        };
        let back: PlanOutcome =
            serde_json::from_str(&serde_json::to_string(&outcome).unwrap()).unwrap();
        assert_eq!(back, outcome);

        for err in [
            ExecError::NoSnapshot,
            ExecError::ShuttingDown,
            ExecError::InitiatorOutOfRange {
                initiator: NodeId(9),
                node_count: 5,
            },
            ExecError::EpochTooOld {
                required: (4, 7),
                available: (4, 6),
            },
        ] {
            let back: ExecError =
                serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
            assert_eq!(back, err);
        }
    }
}
