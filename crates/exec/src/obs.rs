//! The executor's observability surface: latency histograms over every
//! serving stage plus the per-query flight recorder (types from
//! [`stgq_obs`]).
//!
//! All recording happens on the *envelope* — after the engine returned,
//! or around whole cache/publish operations — never inside the search
//! loop; the only in-solve cost is the two clock reads per descended
//! pivot that [`stgq_core::StageTimings`] pays (see `crates/core`'s
//! `timings` module). Histograms are lock-free; the recorder takes one
//! short mutex per actual solve.

use std::time::Duration;

use stgq_obs::{FlightRecorder, Histogram, HistogramSnapshot};

/// Names of the executor's histogram families, in exposition order —
/// the keys [`ExecObs::histograms`] returns and the cluster merges
/// fleet-wide. (RPC round-trip histograms are cluster-side and not in
/// this list.)
pub const EXEC_HISTOGRAMS: [&str; 7] = [
    "end_to_end",
    "queue_wait",
    "solve",
    "prep",
    "descend",
    "feasible_extract",
    "snapshot_publish",
];

/// Latency histograms and the flight recorder, shared by every worker
/// and the inline path. Obtain it from
/// [`Executor::obs`](crate::Executor::obs).
#[derive(Debug)]
pub struct ExecObs {
    /// End-to-end answer latency: admission-queue wait plus the whole
    /// answer envelope (validation, cache lookups, extraction, solve,
    /// stamping). Every answered query samples this — result-cache
    /// replays and collapsed clones included, which is what makes the
    /// fast path visible as the distribution's low mode.
    pub end_to_end: Histogram,
    /// Admission-queue wait: submit → a worker (or a helping batch
    /// caller) picked the entry up. Batched entries only; the inline
    /// path has no queue and records no sample.
    pub queue_wait: Histogram,
    /// Engine wall clock, per actual solve (fast-path answers skip it).
    pub solve: Histogram,
    /// Pivot-preparation share of sequential STGQ solves, from
    /// [`stgq_core::StageTimings`]. Engines without a pivot loop (SGQ,
    /// parallel, heuristics) record no sample.
    pub prep: Histogram,
    /// Exact-descent share of sequential STGQ solves (same source and
    /// caveats as [`prep`](Self::prep)).
    pub descend: Histogram,
    /// Feasible-graph extraction wall clock, on cache misses (a hit
    /// costs a stamped lookup and records no sample).
    pub feasible_extract: Histogram,
    /// Snapshot publication: the epoch diff (reused-vs-rebuilt shard
    /// accounting) plus the swap.
    pub snapshot_publish: Histogram,
    /// The per-query flight recorder: recent-trace ring + slowest-N
    /// slow-query log. Only actual solves emit traces.
    pub recorder: FlightRecorder,
}

impl ExecObs {
    /// Build from the executor's recorder knobs (ring capacity, slow-log
    /// size, slow-query threshold).
    pub(crate) fn new(trace_ring: usize, slow_log: usize, slow_threshold: Duration) -> Self {
        let threshold_ns = u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        ExecObs {
            end_to_end: Histogram::new(),
            queue_wait: Histogram::new(),
            solve: Histogram::new(),
            prep: Histogram::new(),
            descend: Histogram::new(),
            feasible_extract: Histogram::new(),
            snapshot_publish: Histogram::new(),
            recorder: FlightRecorder::new(trace_ring, slow_log, threshold_ns),
        }
    }

    /// Prometheus `HELP` text for one of the [`EXEC_HISTOGRAMS`]
    /// families (or the cluster's RPC families) — kept next to the
    /// histogram definitions so the exposition in `stgq-service` and
    /// `stgq-cluster` cannot drift from what is actually recorded.
    pub fn histogram_help(name: &str) -> &'static str {
        match name {
            "end_to_end" => {
                "End-to-end answer latency in ns (queue wait + whole envelope; \
                 cache replays and collapsed clones included)."
            }
            "queue_wait" => {
                "Admission-queue wait in ns: submit until a worker picked the entry up \
                 (batched entries only)."
            }
            "solve" => "Engine wall clock per actual solve in ns (fast-path answers skip it).",
            "prep" => "Pivot-preparation share of sequential STGQ solves in ns (StageTimings).",
            "descend" => "Exact-descent share of sequential STGQ solves in ns (StageTimings).",
            "feasible_extract" => {
                "Feasible-graph extraction wall clock in ns, on feasible-cache misses."
            }
            "snapshot_publish" => {
                "Snapshot publication in ns: epoch diff (shard reuse accounting) plus swap."
            }
            "rpc_replication" => {
                "Cluster replication RPC round-trip in ns, whole retry loop incl. backoff."
            }
            "rpc_execute" => {
                "Cluster execute (scatter) RPC round-trip in ns, whole retry loop incl. backoff."
            }
            "rpc_status" => {
                "Cluster status/metrics probe round-trip in ns, whole retry loop incl. backoff."
            }
            _ => "Latency histogram in ns.",
        }
    }

    /// Snapshots of every histogram, keyed by [`EXEC_HISTOGRAMS`] name —
    /// the unit the cluster ships between nodes and merges fleet-wide.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("end_to_end", self.end_to_end.snapshot()),
            ("queue_wait", self.queue_wait.snapshot()),
            ("solve", self.solve.snapshot()),
            ("prep", self.prep.snapshot()),
            ("descend", self.descend.snapshot()),
            ("feasible_extract", self.feasible_extract.snapshot()),
            ("snapshot_publish", self.snapshot_publish.snapshot()),
        ]
    }
}
