//! The fixed worker pool and per-entry execution.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stgq_core::{PivotArena, SelectConfig, SolveControl, StopCause};
use stgq_schedule::{Calendar, Cals};

use crate::cache::{ResultCache, ShardedFeasibleCache};
use crate::engine::run_spec;
use crate::metrics::ExecCounters;
use crate::queue::{JobQueue, TicketSlot};
use crate::request::{ExecError, PlanOutcome, PlanRequest, QuerySpec};
use crate::snapshot::WorldSnapshot;

/// One admitted request awaiting execution.
pub(crate) struct Pending {
    pub(crate) request: PlanRequest,
    pub(crate) ticket: Arc<TicketSlot>,
}

/// One shard's slice of a drained batch: every entry shares the
/// initiator shard, the snapshot epoch and the engine configuration.
pub(crate) struct Job {
    pub(crate) snapshot: Arc<WorldSnapshot>,
    pub(crate) select: SelectConfig,
    pub(crate) entries: Vec<Pending>,
}

/// State shared by the workers, the executor front end and batch callers
/// helping to drain.
pub(crate) struct ExecShared {
    pub(crate) cache: ShardedFeasibleCache,
    pub(crate) results: ResultCache,
    pub(crate) counters: ExecCounters,
    pub(crate) jobs: JobQueue<Job>,
}

/// Execute every entry of one shard job in submission order, fulfilling
/// tickets as results land. `arena` is the executing thread's pooled
/// pivot buffers (one per worker — a job re-uses it across all of its
/// STGQ entries).
pub(crate) fn run_job(shared: &ExecShared, arena: &mut PivotArena, job: Job) {
    shared.counters.shard_jobs.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batched_entries
        .fetch_add(job.entries.len() as u64, Ordering::Relaxed);
    // Request collapsing: identical entries (same initiator/spec/engine,
    // no per-entry deadline or token) are deterministic on one snapshot,
    // so solve the first and clone the outcome to the rest. The scan is
    // linear in answered-distinct entries — shard jobs are small.
    let mut solved: Vec<(PlanRequest, PlanOutcome)> = Vec::new();
    for entry in job.entries {
        let request = entry.request;
        if request.collapsible() {
            if let Some((_, prior)) = solved
                .iter()
                .find(|(r, _)| r.collapse_key() == request.collapse_key())
            {
                let mut outcome = prior.clone();
                outcome.collapsed = true;
                // The flags stay disjoint: a clone within the batch is
                // "collapsed", however the first entry was answered.
                outcome.result_cache_hit = false;
                outcome.elapsed = Duration::ZERO;
                shared
                    .counters
                    .collapsed_entries
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                entry.ticket.fulfill(Ok(outcome));
                continue;
            }
        }
        let result = run_entry(shared, arena, &job.snapshot, &job.select, &request);
        if let Ok(outcome) = &result {
            if request.collapsible() {
                solved.push((request, outcome.clone()));
            }
        }
        entry.ticket.fulfill(result);
    }
}

/// Solve one request against one snapshot epoch.
pub(crate) fn run_entry(
    shared: &ExecShared,
    arena: &mut PivotArena,
    snapshot: &WorldSnapshot,
    select: &SelectConfig,
    request: &PlanRequest,
) -> Result<PlanOutcome, ExecError> {
    let node_count = snapshot.node_count();
    if request.initiator.index() >= node_count {
        return Err(ExecError::InitiatorOutOfRange {
            initiator: request.initiator,
            node_count,
        });
    }
    // Read-your-writes admission: a snapshot older than the request's
    // minimum epoch on either axis must not answer it.
    if let Some(required) = request.min_epoch {
        let available = snapshot.versions();
        if available.0 < required.0 || available.1 < required.1 {
            return Err(ExecError::EpochTooOld {
                required,
                available,
            });
        }
    }
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    // Cross-batch result cache: deterministic requests (no deadline, no
    // token) repeat across batches and inline calls; an identical query
    // whose stamped shards are all unmoved is simply replayed.
    if request.collapsible() {
        if let Some(outcome) =
            shared
                .results
                .get(request.initiator, request.spec, request.engine, snapshot)
        {
            return Ok(outcome);
        }
    }
    let (fg, feasible_cache_hit) =
        shared
            .cache
            .get_or_extract(snapshot, request.initiator, request.spec.s());

    let mut control = SolveControl::new();
    if let Some(deadline) = request.deadline {
        control = control.with_deadline(deadline);
    }
    if let Some(token) = &request.cancel {
        control = control.with_cancel(token.clone());
    }
    let control = (!control.is_noop()).then_some(&control);

    let calendars: Cals<'_> = match &request.spec {
        QuerySpec::Stgq(_) => snapshot.calendars().into(),
        QuerySpec::Sgq(_) => (&[] as &[Calendar]).into(),
    };
    let start = Instant::now();
    let (outcome, evaluations) = run_spec(
        &fg,
        calendars,
        &request.spec,
        request.engine,
        select,
        control,
        arena,
    );
    let elapsed = start.elapsed();

    shared.counters.note_search(outcome.stats());
    let stop = outcome.stop_cause();
    // Consistency by construction: heuristics never claim exactness, and
    // the exact family is exact iff nothing (budget *or* cancellation)
    // stopped the search — `exact` and `stop` cannot disagree.
    let exact = request.engine.reports_search_stats() && stop == StopCause::Completed;
    let plan_outcome = PlanOutcome {
        outcome,
        evaluations,
        exact,
        stop,
        engine: request.engine,
        elapsed,
        feasible_cache_hit,
        collapsed: false,
        result_cache_hit: false,
    };
    if request.collapsible() {
        // Stamp the entry with the shards this solve actually read: the
        // feasible graph's shards on the graph axis, the same shards on
        // the calendar axis for STGQ — and nothing at all for SGQ, which
        // no calendar edit can invalidate.
        let calendar_stamps = match &request.spec {
            QuerySpec::Stgq(_) => snapshot.calendar_stamps_for(&fg),
            QuerySpec::Sgq(_) => Vec::new(),
        };
        shared.results.put(
            request.initiator,
            request.spec,
            request.engine,
            snapshot.shard_count(),
            snapshot.graph_stamps_for(&fg),
            calendar_stamps,
            plan_outcome.clone(),
        );
    }
    Ok(plan_outcome)
}

/// The fixed worker pool: `workers` threads blocking on the shared job
/// queue, each owning one [`PivotArena`] for its lifetime.
pub(crate) struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn spawn(shared: &Arc<ExecShared>, workers: usize) -> Self {
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("stgq-exec-{i}"))
                    .spawn(move || {
                        let mut arena = PivotArena::new();
                        while let Some(job) = shared.jobs.pop_blocking() {
                            run_job(&shared, &mut arena, job);
                        }
                    })
                    .expect("spawning an executor worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Close the queue and join every worker (idempotent on the queue
    /// side; called from the executor's `Drop`).
    pub(crate) fn shutdown(&mut self, shared: &ExecShared) {
        shared.jobs.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
