//! The fixed worker pool and per-entry execution.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stgq_core::{PivotArena, SelectConfig, SolveControl, StageTimings, StopCause};
use stgq_obs::{QueryTrace, StageBreakdown};
use stgq_schedule::{Calendar, Cals};

use crate::cache::{Extracted, ExtractionMode, ResultCache, ShardedFeasibleCache};
use crate::engine::{run_spec, Engine};
use crate::metrics::ExecCounters;
use crate::obs::ExecObs;
use crate::queue::{JobQueue, TicketSlot};
use crate::request::{ExecError, PlanOutcome, PlanRequest, QuerySpec};
use crate::snapshot::WorldSnapshot;

/// One admitted request awaiting execution.
pub(crate) struct Pending {
    pub(crate) request: PlanRequest,
    pub(crate) ticket: Arc<TicketSlot>,
    /// When [`Executor::submit`](crate::Executor::submit) accepted the
    /// request — the start of its admission-queue wait.
    pub(crate) admitted_at: Instant,
}

/// One shard's slice of a drained batch: every entry shares the
/// initiator shard, the snapshot epoch and the engine configuration.
pub(crate) struct Job {
    pub(crate) snapshot: Arc<WorldSnapshot>,
    pub(crate) select: SelectConfig,
    pub(crate) entries: Vec<Pending>,
}

/// State shared by the workers, the executor front end and batch callers
/// helping to drain.
pub(crate) struct ExecShared {
    pub(crate) cache: ShardedFeasibleCache,
    pub(crate) results: ResultCache,
    pub(crate) counters: ExecCounters,
    pub(crate) obs: ExecObs,
    pub(crate) jobs: JobQueue<Job>,
    /// How feasible-cache misses extract: zero-copy view (default) or
    /// materialized graph (the A/B reference path).
    pub(crate) extraction: ExtractionMode,
}

/// Nanoseconds of a duration, saturating at `u64::MAX`.
#[inline]
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Execute every entry of one shard job in submission order, fulfilling
/// tickets as results land. `arena` is the executing thread's pooled
/// pivot buffers (one per worker — a job re-uses it across all of its
/// STGQ entries).
pub(crate) fn run_job(shared: &ExecShared, arena: &mut PivotArena, job: Job) {
    shared.counters.shard_jobs.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .batched_entries
        .fetch_add(job.entries.len() as u64, Ordering::Relaxed);
    // Request collapsing: identical entries (same initiator/spec/engine,
    // no per-entry deadline or token) are deterministic on one snapshot,
    // so solve the first and clone the outcome to the rest. The scan is
    // linear in answered-distinct entries — shard jobs are small.
    let mut solved: Vec<(PlanRequest, PlanOutcome)> = Vec::new();
    for entry in job.entries {
        let request = entry.request;
        let queue_wait_ns = ns(entry.admitted_at.elapsed());
        shared.obs.queue_wait.record_ns(queue_wait_ns);
        if request.collapsible() {
            if let Some((_, prior)) = solved
                .iter()
                .find(|(r, _)| r.collapse_key() == request.collapse_key())
            {
                let mut outcome = prior.clone();
                outcome.collapsed = true;
                // The flags stay disjoint: a clone within the batch is
                // "collapsed", however the first entry was answered.
                outcome.result_cache_hit = false;
                outcome.elapsed = Duration::ZERO;
                shared
                    .counters
                    .collapsed_entries
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                // The envelope sees every answer: a collapsed clone's
                // end-to-end latency is its queue wait, and its stop
                // cause is counted exactly like a fresh solve's.
                shared.counters.note_stop(outcome.stop);
                shared.obs.end_to_end.record_ns(queue_wait_ns);
                entry.ticket.fulfill(Ok(outcome));
                continue;
            }
        }
        let result = run_entry(
            shared,
            arena,
            &job.snapshot,
            &job.select,
            &request,
            queue_wait_ns,
        );
        if let Ok(outcome) = &result {
            if request.collapsible() {
                solved.push((request, outcome.clone()));
            }
        }
        entry.ticket.fulfill(result);
    }
}

/// Solve one request against one snapshot epoch. `queue_wait_ns` is the
/// entry's admission-queue wait (0 on the inline path), folded into its
/// end-to-end latency sample and trace.
pub(crate) fn run_entry(
    shared: &ExecShared,
    arena: &mut PivotArena,
    snapshot: &WorldSnapshot,
    select: &SelectConfig,
    request: &PlanRequest,
    queue_wait_ns: u64,
) -> Result<PlanOutcome, ExecError> {
    let envelope_t0 = Instant::now();
    let node_count = snapshot.node_count();
    if request.initiator.index() >= node_count {
        return Err(ExecError::InitiatorOutOfRange {
            initiator: request.initiator,
            node_count,
        });
    }
    // Read-your-writes admission: a snapshot older than the request's
    // minimum epoch on either axis must not answer it.
    if let Some(required) = request.min_epoch {
        let available = snapshot.versions();
        if available.0 < required.0 || available.1 < required.1 {
            return Err(ExecError::EpochTooOld {
                required,
                available,
            });
        }
    }
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    // Cross-batch result cache: deterministic requests (no deadline, no
    // token) repeat across batches and inline calls; an identical query
    // whose stamped shards are all unmoved is simply replayed.
    if request.collapsible() {
        if let Some(outcome) =
            shared
                .results
                .get(request.initiator, request.spec, request.engine, snapshot)
        {
            // The replay fast path is still an answered query: it
            // samples end-to-end latency (that is what makes the cache
            // visible as the distribution's low mode) and counts its
            // stop cause at the envelope like every other answer.
            shared.counters.note_stop(outcome.stop);
            shared
                .obs
                .end_to_end
                .record_ns(queue_wait_ns.saturating_add(ns(envelope_t0.elapsed())));
            return Ok(outcome);
        }
    }
    let extract_t0 = Instant::now();
    let (extracted, feasible_cache_hit) = shared.cache.get_or_extract(
        snapshot,
        request.initiator,
        request.spec.s(),
        shared.extraction,
    );
    let extract_ns = if feasible_cache_hit {
        0
    } else {
        // Word-traffic accounting at the extraction site: the same
        // count lands on the copied or the borrowed counter depending
        // on which carrier paid for it.
        let words_counter = match &extracted {
            Extracted::Graph(_) => &shared.counters.extract_words_copied,
            Extracted::View(_) => &shared.counters.extract_words_borrowed,
        };
        words_counter.fetch_add(extracted.words(), Ordering::Relaxed);
        let d = ns(extract_t0.elapsed());
        shared.obs.feasible_extract.record_ns(d);
        d
    };

    let mut control = SolveControl::new();
    if let Some(deadline) = request.deadline {
        control = control.with_deadline(deadline);
    }
    if let Some(token) = &request.cancel {
        control = control.with_cancel(token.clone());
    }
    let control = (!control.is_noop()).then_some(&control);

    let calendars: Cals<'_> = match &request.spec {
        QuerySpec::Stgq(_) => snapshot.calendars().into(),
        QuerySpec::Sgq(_) => (&[] as &[Calendar]).into(),
    };
    // The arena may have last served a different engine family (SGQ
    // solves never touch its timings) — wipe, so the split read below is
    // this solve's or nothing.
    arena.timings = StageTimings::default();
    // World-version handshake: vouch for this epoch's calendar-shard
    // versions so the arena's cross-solve run cache may serve
    // Definition-4 runs remembered from earlier solves whose calendar
    // shards are provably unmoved (equal shard version ⇒ identical
    // shard content — the same invariant the stamped caches rely on).
    arena.install_world_versions(snapshot.calendar_shard_versions());
    let start = Instant::now();
    let (outcome, evaluations) = match &extracted {
        Extracted::Graph(fg) => run_spec(
            fg.as_ref(),
            calendars,
            &request.spec,
            request.engine,
            select,
            control,
            arena,
        ),
        Extracted::View(view) => run_spec(
            view.as_ref(),
            calendars,
            &request.spec,
            request.engine,
            select,
            control,
            arena,
        ),
    };
    let elapsed = start.elapsed();
    let timings = arena.timings;

    shared.counters.note_search(outcome.stats());
    let stop = outcome.stop_cause();
    shared.counters.note_stop(stop);
    // Consistency by construction: heuristics never claim exactness, and
    // the exact family is exact iff nothing (budget *or* cancellation)
    // stopped the search — `exact` and `stop` cannot disagree.
    let exact = request.engine.reports_search_stats() && stop == StopCause::Completed;
    let plan_outcome = PlanOutcome {
        outcome,
        evaluations,
        exact,
        stop,
        engine: request.engine,
        elapsed,
        feasible_cache_hit,
        collapsed: false,
        result_cache_hit: false,
    };
    if request.collapsible() {
        // Stamp the entry with the shards this solve actually read: the
        // feasible graph's shards on the graph axis, the same shards on
        // the calendar axis for STGQ — and nothing at all for SGQ, which
        // no calendar edit can invalidate.
        let calendar_stamps = match &request.spec {
            QuerySpec::Stgq(_) => extracted.calendar_stamps(snapshot),
            QuerySpec::Sgq(_) => Vec::new(),
        };
        shared.results.put(
            request.initiator,
            request.spec,
            request.engine,
            snapshot.shard_count(),
            extracted.graph_stamps(snapshot),
            calendar_stamps,
            plan_outcome.clone(),
        );
    }

    // Latency spectrum + flight record for the actual solve.
    let total_ns = queue_wait_ns.saturating_add(ns(envelope_t0.elapsed()));
    let obs = &shared.obs;
    obs.solve.record(elapsed);
    obs.end_to_end.record_ns(total_ns);
    if !timings.is_empty() {
        obs.prep.record_ns(timings.prep_ns());
        obs.descend.record_ns(timings.descend_ns);
    }
    if obs.recorder.enabled() {
        let stats = plan_outcome.outcome.stats();
        obs.recorder.record(QueryTrace {
            initiator: request.initiator.0,
            query: query_label(&request.spec, request.engine),
            stages: StageBreakdown {
                queue_wait_ns,
                extract_ns,
                prepare_ns: timings.prepare_ns,
                finalize_ns: timings.finalize_ns,
                descend_ns: timings.descend_ns,
                solve_ns: ns(elapsed),
                total_ns,
            },
            objective: plan_outcome.outcome.objective(),
            stop: stop_label(stop),
            exact: plan_outcome.exact,
            feasible_cache_hit,
            frames: stats.frames_examined(),
            frames_pruned_by_bound: stats.frames_pruned_by_bound(),
            frames_pruned_by_match: stats.frames_pruned_by_match,
            pivots_processed: stats.pivots_processed,
            pivots_skipped: stats.pivots_skipped,
            peeled_candidates: stats.peeled_candidates,
            prep_words_delta: stats.prep_words_delta,
            prep_words_rebuilt: stats.prep_words_rebuilt,
        });
    }
    Ok(plan_outcome)
}

/// Human-readable query + engine label for traces, e.g.
/// `stgq(p=4,s=2,k=2,m=4)/exact`.
fn query_label(spec: &QuerySpec, engine: Engine) -> String {
    let engine = match engine {
        Engine::Exact => "exact",
        Engine::ExactParallel { .. } => "exact_parallel",
        Engine::Anytime { .. } => "anytime",
        Engine::Greedy { .. } => "greedy",
        Engine::LocalSearch { .. } => "local_search",
    };
    match spec {
        QuerySpec::Sgq(q) => format!("sgq(p={},s={},k={})/{engine}", q.p(), q.s(), q.k()),
        QuerySpec::Stgq(q) => format!(
            "stgq(p={},s={},k={},m={})/{engine}",
            q.p(),
            q.s(),
            q.k(),
            q.m()
        ),
    }
}

/// Stable string form of a stop cause for traces and reports.
fn stop_label(stop: StopCause) -> &'static str {
    match stop {
        StopCause::Completed => "completed",
        StopCause::FrameBudget => "frame_budget",
        StopCause::Cancelled => "cancelled",
    }
}

/// The fixed worker pool: `workers` threads blocking on the shared job
/// queue, each owning one [`PivotArena`] for its lifetime.
pub(crate) struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub(crate) fn spawn(shared: &Arc<ExecShared>, workers: usize) -> Self {
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("stgq-exec-{i}"))
                    .spawn(move || {
                        let mut arena = PivotArena::new();
                        while let Some(job) = shared.jobs.pop_blocking() {
                            run_job(&shared, &mut arena, job);
                        }
                    })
                    .expect("spawning an executor worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Close the queue and join every worker (idempotent on the queue
    /// side; called from the executor's `Drop`).
    pub(crate) fn shutdown(&mut self, shared: &ExecShared) {
        shared.jobs.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
