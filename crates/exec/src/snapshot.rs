//! Epoch-swapped immutable world snapshots, published **shard by
//! shard**.
//!
//! The executor's read path never sees mutable state: every solve runs
//! against a [`WorldSnapshot`] — the social graph as `S` residue-class
//! CSR segments ([`GraphSegment`], vertex `v` homed in shard `v % S`)
//! plus the calendars partitioned the same way, each shard carrying the
//! **version it was last mutated at**. `S` is the same initiator-shard
//! modulus the batch scheduler and both caches use, so a mutation
//! touching one person dirties exactly the shard that also keys their
//! cached work.
//!
//! The lifecycle, end to end:
//!
//! ```text
//!            writer (planner, or a cluster node's mirror)
//!   WorldDelta ──touch──▶ per-shard version vector moves on the
//!                         touched shards only
//!                │ publish: rebuild the touched segments,
//!                │          Arc-reuse the other S − 1
//!                ▼
//!   WorldSnapshot { segments[0..S], shard versions v[0..S] }
//!                │ one Arc swap into the epoch cell
//!                ▼
//!   solve (q, s): extract the feasible graph, note the set R of
//!                 shards its vertices live in
//!                ▼
//!   cache entry stamped { (s, v[s]) | s ∈ R }   — the shard-local
//!   versions the solve actually read; a later lookup is fresh iff
//!   every stamp still matches the current snapshot's vector
//! ```
//!
//! Writers build a fresh snapshot and [`publish`](SnapshotCell::publish)
//! it: one `Arc` swap under a short lock. In-flight solves keep the
//! epoch they started with alive through their own `Arc` and drop it
//! when done — **writers never block in-flight solves, and solves never
//! block writers**. Because untouched shards are `Arc`-reused, a delta
//! confined to one community republishes in O(dirty shard), not O(n) —
//! the property that opens the 10^5–10^6-member regime.
//!
//! The per-shard stamps obey one invariant the caches rely on: **equal
//! shard version ⇒ identical shard content**. Writers maintain it by
//! stamping a shard with the global version counter at its last
//! mutation; [`WorldSnapshot::from_flat`] (the compat path with no dirty
//! tracking) floods every shard with the global stamp, which degrades to
//! whole-world invalidation — correct, just not incremental.

use std::sync::Arc;

use parking_lot::Mutex;
use stgq_graph::{AdjacencySource, CandidateTopology, GraphSegment, ShardedGraph, SocialGraph};
use stgq_schedule::{Calendar, CalendarShards};

/// One immutable epoch of the world: shard-partitioned graph segments
/// and calendar slices, each stamped with the version it was built at,
/// plus the global `(graph_version, calendar_version)` pair.
#[derive(Clone, Debug)]
pub struct WorldSnapshot {
    graph: ShardedGraph,
    calendars: CalendarShards,
    graph_shard_versions: Vec<u64>,
    calendar_shard_versions: Vec<u64>,
    graph_version: u64,
    calendar_version: u64,
}

impl WorldSnapshot {
    /// Assemble an epoch from per-shard parts — the incremental
    /// publication path: the writer passes `Arc`-reused segments for
    /// untouched shards and freshly built ones for dirty shards, with
    /// each shard's last-mutation version.
    ///
    /// # Panics
    /// Panics if the four per-shard vectors disagree on the shard count,
    /// or the segment row counts are inconsistent with a residue
    /// partition.
    pub fn from_parts(
        segments: Vec<Arc<GraphSegment>>,
        graph_shard_versions: Vec<u64>,
        calendar_shards: Vec<Arc<Vec<Calendar>>>,
        calendar_shard_versions: Vec<u64>,
        graph_version: u64,
        calendar_version: u64,
    ) -> Self {
        let shards = segments.len();
        assert_eq!(graph_shard_versions.len(), shards, "one stamp per shard");
        assert_eq!(
            calendar_shards.len(),
            shards,
            "one calendar slice per shard"
        );
        assert_eq!(calendar_shard_versions.len(), shards, "one stamp per shard");
        WorldSnapshot {
            graph: ShardedGraph::new(segments),
            calendars: CalendarShards::new(calendar_shards),
            graph_shard_versions,
            calendar_shard_versions,
            graph_version,
            calendar_version,
        }
    }

    /// Partition a flat world into `shards` segments, stamping **every**
    /// shard with the global versions. This is the compat path for
    /// callers without per-shard dirty tracking: any version bump makes
    /// every shard look dirty, so caches degrade to whole-world
    /// invalidation (never stale, just not incremental).
    pub fn from_flat(
        graph: &SocialGraph,
        calendars: &[Calendar],
        shards: usize,
        graph_version: u64,
        calendar_version: u64,
    ) -> Self {
        let shards = shards.max(1);
        WorldSnapshot {
            graph: ShardedGraph::from_flat(graph, shards),
            calendars: CalendarShards::from_flat(calendars, shards),
            graph_shard_versions: vec![graph_version; shards],
            calendar_shard_versions: vec![calendar_version; shards],
            graph_version,
            calendar_version,
        }
    }

    /// The shard-partitioned adjacency the traversal kernels walk.
    pub fn graph(&self) -> &ShardedGraph {
        &self.graph
    }

    /// The shard-partitioned calendars (empty for worlds without them).
    pub fn calendars(&self) -> &CalendarShards {
        &self.calendars
    }

    /// Total vertices in the graph.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The shard modulus this snapshot was partitioned with.
    pub fn shard_count(&self) -> usize {
        self.graph.shard_count()
    }

    /// The global network version this epoch reflects.
    pub fn graph_version(&self) -> u64 {
        self.graph_version
    }

    /// The global calendar-store version this epoch reflects.
    pub fn calendar_version(&self) -> u64 {
        self.calendar_version
    }

    /// The `(graph_version, calendar_version)` stamp.
    pub fn versions(&self) -> (u64, u64) {
        (self.graph_version, self.calendar_version)
    }

    /// The version shard `s`'s graph segment was last mutated at.
    pub fn graph_shard_version(&self, shard: usize) -> u64 {
        self.graph_shard_versions[shard]
    }

    /// The version shard `s`'s calendars were last mutated at.
    pub fn calendar_shard_version(&self, shard: usize) -> u64 {
        self.calendar_shard_versions[shard]
    }

    /// The whole graph-axis shard-version vector.
    pub fn graph_shard_versions(&self) -> &[u64] {
        &self.graph_shard_versions
    }

    /// The whole calendar-axis shard-version vector.
    pub fn calendar_shard_versions(&self) -> &[u64] {
        &self.calendar_shard_versions
    }

    /// One shard's graph segment (for `Arc`-reuse on republication).
    pub fn graph_segment(&self, shard: usize) -> &Arc<GraphSegment> {
        self.graph.segment(shard)
    }

    /// One shard's calendar slice (for `Arc`-reuse on republication).
    pub fn calendar_shard(&self, shard: usize) -> &Arc<Vec<Calendar>> {
        self.calendars.shard(shard)
    }

    /// The shards a solve on `fg` reads, ascending — the read set cache
    /// entries are stamped with. Stamping the feasible graph's vertex
    /// shards is sound: a mutation that changes the extraction for
    /// `(q, s)` necessarily has an endpoint inside the *old* feasible
    /// graph (an edge with both endpoints outside can neither bring a
    /// vertex within distance `s` nor touch fg-internal adjacency), and
    /// every mutation touches its endpoints' shards.
    fn read_shards<G: CandidateTopology>(&self, fg: &G) -> Vec<u32> {
        let shards = self.shard_count();
        let mut seen = vec![false; shards];
        for c in 0..fg.len() as u32 {
            seen[fg.origin(c).index() % shards] = true;
        }
        (0..shards as u32).filter(|&s| seen[s as usize]).collect()
    }

    /// Graph-axis stamps for a cache entry built from `fg`: the
    /// `(shard, version)` pairs of every shard the extraction read.
    pub(crate) fn graph_stamps_for<G: CandidateTopology>(&self, fg: &G) -> Vec<(u32, u64)> {
        self.read_shards(fg)
            .into_iter()
            .map(|s| (s, self.graph_shard_versions[s as usize]))
            .collect()
    }

    /// Calendar-axis stamps for a cache entry built from `fg`: an STGQ
    /// solve reads exactly its feasible graph's calendars, so only those
    /// shards' calendar versions pin the answer.
    pub(crate) fn calendar_stamps_for<G: CandidateTopology>(&self, fg: &G) -> Vec<(u32, u64)> {
        self.read_shards(fg)
            .into_iter()
            .map(|s| (s, self.calendar_shard_versions[s as usize]))
            .collect()
    }
}

/// The executor's current-epoch cell.
#[derive(Default)]
pub(crate) struct SnapshotCell {
    current: Mutex<Option<Arc<WorldSnapshot>>>,
}

impl SnapshotCell {
    /// The current epoch, if one has been published.
    pub(crate) fn current(&self) -> Option<Arc<WorldSnapshot>> {
        self.current.lock().clone()
    }

    /// Swap in a new epoch. Readers holding the previous epoch are
    /// unaffected; the old snapshot is freed when the last of them
    /// finishes.
    pub(crate) fn publish(&self, snapshot: Arc<WorldSnapshot>) {
        *self.current.lock() = Some(snapshot);
    }

    /// Drop the published epoch: subsequent solves refuse with
    /// `NoSnapshot` until a new epoch is published. In-flight solves
    /// keep the epoch they started with.
    pub(crate) fn clear(&self) {
        *self.current.lock() = None;
    }

    /// The `(graph_version, calendar_version)` stamp of the current
    /// epoch.
    pub(crate) fn versions(&self) -> Option<(u64, u64)> {
        self.current.lock().as_ref().map(|s| s.versions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::{FeasibleGraph, GraphBuilder, NodeId};

    fn snap(gv: u64, cv: u64) -> Arc<WorldSnapshot> {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        Arc::new(WorldSnapshot::from_flat(
            &b.build(),
            &vec![Calendar::new(4); 2],
            2,
            gv,
            cv,
        ))
    }

    #[test]
    fn publish_swaps_without_touching_held_epochs() {
        let cell = SnapshotCell::default();
        assert!(cell.current().is_none());
        assert_eq!(cell.versions(), None);

        cell.publish(snap(1, 1));
        let held = cell.current().unwrap();
        cell.publish(snap(2, 1));
        assert_eq!(held.graph_version(), 1, "in-flight epoch unchanged");
        assert_eq!(cell.versions(), Some((2, 1)));
    }

    #[test]
    fn from_flat_floods_every_shard_with_the_global_stamp() {
        let snap = snap(7, 3);
        assert_eq!(snap.shard_count(), 2);
        assert_eq!(snap.graph_shard_versions(), &[7, 7]);
        assert_eq!(snap.calendar_shard_versions(), &[3, 3]);
        assert_eq!(snap.node_count(), 2);
        assert_eq!(snap.calendars().len(), 2);
    }

    #[test]
    fn from_parts_keeps_per_shard_stamps_and_content() {
        // 4 people on 2 shards; person 3 (shard 1, row 1) was mutated at
        // version 9, shard 0 untouched since version 4.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1).unwrap();
        let flat = WorldSnapshot::from_flat(&b.build(), &vec![Calendar::new(4); 4], 2, 9, 5);
        let parts = WorldSnapshot::from_parts(
            (0..2).map(|s| Arc::clone(flat.graph_segment(s))).collect(),
            vec![4, 9],
            (0..2).map(|s| Arc::clone(flat.calendar_shard(s))).collect(),
            vec![5, 5],
            9,
            5,
        );
        assert_eq!(parts.graph_shard_version(0), 4);
        assert_eq!(parts.graph_shard_version(1), 9);
        assert!(Arc::ptr_eq(parts.graph_segment(0), flat.graph_segment(0)));
        // The assembled views agree with the flat world.
        for v in 0..4u32 {
            assert_eq!(
                parts.graph().row_of(NodeId(v)),
                flat.graph().row_of(NodeId(v))
            );
        }
    }

    #[test]
    fn stamps_cover_exactly_the_feasible_graphs_shards() {
        // Path 0-1-3 on 2 shards; vertex 2 is isolated. An s=2 extraction
        // from 0 reads shards {0, 1}; an s=1 extraction from 3 reads only
        // the odd shard.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1).unwrap();
        let snap = WorldSnapshot::from_parts(
            {
                let sg = ShardedGraph::from_flat(&b.build(), 2);
                (0..2).map(|s| Arc::clone(sg.segment(s))).collect()
            },
            vec![4, 9],
            (0..2)
                .map(|_| Arc::new(vec![Calendar::new(4); 2]))
                .collect(),
            vec![2, 6],
            9,
            6,
        );
        let both = FeasibleGraph::extract_from(snap.graph(), NodeId(0), 2);
        assert_eq!(snap.graph_stamps_for(&both), vec![(0, 4), (1, 9)]);
        assert_eq!(snap.calendar_stamps_for(&both), vec![(0, 2), (1, 6)]);
        let odd_only = FeasibleGraph::extract_from(snap.graph(), NodeId(3), 1);
        assert_eq!(snap.graph_stamps_for(&odd_only), vec![(1, 9)]);
        assert_eq!(snap.calendar_stamps_for(&odd_only), vec![(1, 6)]);
    }
}
