//! Epoch-swapped immutable world snapshots.
//!
//! The executor's read path never sees mutable state: every solve runs
//! against a [`WorldSnapshot`] — an `Arc`-shared CSR graph plus calendar
//! vector, stamped with the versions they were built from. Writers
//! (the service planner, after a mutation) build a fresh snapshot and
//! [`publish`](SnapshotCell::publish) it: one `Arc` swap under a short
//! lock. In-flight solves keep the epoch they started with alive through
//! their own `Arc` and drop it when done — **writers never block
//! in-flight solves, and solves never block writers**.

use std::sync::Arc;

use parking_lot::Mutex;
use stgq_graph::SocialGraph;
use stgq_schedule::Calendar;

/// One immutable epoch of the world: the social graph and everyone's
/// calendar, as of the stamped versions.
#[derive(Clone, Debug)]
pub struct WorldSnapshot {
    /// The CSR social graph.
    pub graph: Arc<SocialGraph>,
    /// Per-person calendars, indexed by vertex id.
    pub calendars: Arc<Vec<Calendar>>,
    /// The network version this graph was built from (keys the
    /// feasible-graph cache — calendars never affect social distance).
    pub graph_version: u64,
    /// The calendar-store version these calendars were copied at.
    pub calendar_version: u64,
}

impl WorldSnapshot {
    /// Assemble an epoch from parts.
    pub fn new(
        graph: Arc<SocialGraph>,
        calendars: Arc<Vec<Calendar>>,
        graph_version: u64,
        calendar_version: u64,
    ) -> Self {
        WorldSnapshot {
            graph,
            calendars,
            graph_version,
            calendar_version,
        }
    }

    /// The `(graph_version, calendar_version)` stamp.
    pub fn versions(&self) -> (u64, u64) {
        (self.graph_version, self.calendar_version)
    }
}

/// The executor's current-epoch cell.
#[derive(Default)]
pub(crate) struct SnapshotCell {
    current: Mutex<Option<Arc<WorldSnapshot>>>,
}

impl SnapshotCell {
    /// The current epoch, if one has been published.
    pub(crate) fn current(&self) -> Option<Arc<WorldSnapshot>> {
        self.current.lock().clone()
    }

    /// Swap in a new epoch. Readers holding the previous epoch are
    /// unaffected; the old snapshot is freed when the last of them
    /// finishes.
    pub(crate) fn publish(&self, snapshot: Arc<WorldSnapshot>) {
        *self.current.lock() = Some(snapshot);
    }

    /// Drop the published epoch: subsequent solves refuse with
    /// `NoSnapshot` until a new epoch is published. In-flight solves
    /// keep the epoch they started with.
    pub(crate) fn clear(&self) {
        *self.current.lock() = None;
    }

    /// The `(graph_version, calendar_version)` stamp of the current
    /// epoch.
    pub(crate) fn versions(&self) -> Option<(u64, u64)> {
        self.current
            .lock()
            .as_ref()
            .map(|s| (s.graph_version, s.calendar_version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::{GraphBuilder, NodeId};

    fn snap(gv: u64, cv: u64) -> Arc<WorldSnapshot> {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        Arc::new(WorldSnapshot {
            graph: Arc::new(b.build()),
            calendars: Arc::new(vec![Calendar::new(4); 2]),
            graph_version: gv,
            calendar_version: cv,
        })
    }

    #[test]
    fn publish_swaps_without_touching_held_epochs() {
        let cell = SnapshotCell::default();
        assert!(cell.current().is_none());
        assert_eq!(cell.versions(), None);

        cell.publish(snap(1, 1));
        let held = cell.current().unwrap();
        cell.publish(snap(2, 1));
        assert_eq!(held.graph_version, 1, "in-flight epoch unchanged");
        assert_eq!(cell.versions(), Some((2, 1)));
    }
}
