//! Executor counters.

use std::sync::atomic::{AtomicU64, Ordering};

use stgq_core::SearchStats;

/// Point-in-time view of the executor's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Queries executed (collapsed entries included — every answered
    /// ticket counts).
    pub queries: u64,
    /// Shard jobs drained from the admission queue.
    pub shard_jobs: u64,
    /// Entries that went through the batched path (admitted + drained, as
    /// opposed to [`Executor::execute_one`](crate::Executor::execute_one)
    /// inline calls).
    pub batched_entries: u64,
    /// Batched entries answered by cloning an identical same-job entry's
    /// result instead of solving again (request collapsing).
    pub collapsed_entries: u64,
    /// Solves stopped by cancellation or deadline.
    pub cancelled: u64,
    /// Feasible-graph cache hits, over every shard.
    pub feasible_cache_hits: u64,
    /// Feasible-graph cache misses (each triggered an extraction).
    pub feasible_cache_misses: u64,
    /// Feasible graphs currently cached, over every shard.
    pub cached_feasible_graphs: usize,
    /// Shard-stamped result-cache hits: whole outcomes replayed for
    /// repeat queries across batches (and the inline path) whose stamped
    /// shards are all unmoved.
    pub result_cache_hits: u64,
    /// Result-cache lookups that missed (fresh query, or a stamped shard
    /// moved on either the graph or the calendar axis).
    pub result_cache_misses: u64,
    /// Outcomes currently held by the result cache, over every shard.
    pub cached_results: usize,
    /// Result-cache entries evicted at lookup because a shard they were
    /// stamped with had moved (delta-scoped invalidation: a write
    /// confined to one community only ever evicts entries that read it).
    pub result_cache_evicted_stale_shard: u64,
    /// Result-cache entries evicted to make room at capacity.
    pub result_cache_evicted_capacity: u64,
    /// World snapshots published into the epoch cell.
    pub snapshot_publishes: u64,
    /// Per-shard sub-snapshots (graph segments + calendar slices) that
    /// publication actually rebuilt — for an incremental writer this
    /// tracks the dirty shards, not the world size.
    pub snapshot_shards_rebuilt: u64,
    /// Per-shard sub-snapshots carried over by `Arc` reuse from the
    /// previous epoch (the complement of
    /// [`snapshot_shards_rebuilt`](Self::snapshot_shards_rebuilt)).
    pub snapshot_shards_reused: u64,
    /// Search frames examined by exact engines, summed over all queries.
    pub frames_examined: u64,
    /// Frames abandoned by the incumbent distance bound (Lemma 2).
    pub frames_pruned_by_bound: u64,
    /// Whole pivots skipped by the pivot-granularity distance bound.
    pub pivots_skipped: u64,
    /// Candidates removed by fixpoint (p, k)-core peeling before exact
    /// descent, summed over all exact queries.
    pub peeled_candidates: u64,
    /// Pivots refused outright because their peeled core could not seat
    /// a feasible group.
    pub pivots_refused_by_core: u64,
    /// Frames abandoned by the k-plex matching bound.
    pub frames_pruned_by_match: u64,
    /// Children retired at the parent frame by the per-candidate
    /// completion bound — child frames never opened at all.
    pub children_pruned_by_parent_bound: u64,
    /// Availability-buffer words whose rebuild was avoided by the
    /// incremental-prep run cache (STGQ pivot preparation).
    pub prep_words_delta: u64,
    /// Availability-buffer words actually built from calendar words
    /// during pivot preparation.
    pub prep_words_rebuilt: u64,
    /// Definition-4 runs served by the cross-solve run cache: the
    /// worker's arena kept a candidate's run from an earlier solve and
    /// the snapshot's calendar-shard versions vouched it was still
    /// current (see `stgq_core::PivotArena::install_world_versions`).
    pub run_cache_cross_solve_hits: u64,
    /// Adjacency words **copied** into per-query `FeasibleGraph`
    /// matrices on feasible-cache misses — the materialized extraction
    /// path's word traffic. Zero when the executor runs the zero-copy
    /// view path.
    pub extract_words_copied: u64,
    /// Adjacency words generated in place by zero-copy
    /// [`FeasibleView`](stgq_graph::FeasibleView) extraction on
    /// feasible-cache misses: candidate rows masked directly against
    /// the snapshot's CSR segments, no per-query graph materialized.
    pub extract_words_borrowed: u64,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Initiator-shard count (cache partitions = batch groups).
    pub shards: usize,
}

/// The live (atomic) side of [`ExecMetrics`].
#[derive(Default)]
pub(crate) struct ExecCounters {
    pub(crate) queries: AtomicU64,
    pub(crate) shard_jobs: AtomicU64,
    pub(crate) batched_entries: AtomicU64,
    pub(crate) collapsed_entries: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) snapshot_publishes: AtomicU64,
    pub(crate) snapshot_shards_rebuilt: AtomicU64,
    pub(crate) snapshot_shards_reused: AtomicU64,
    pub(crate) frames_examined: AtomicU64,
    pub(crate) frames_pruned_by_bound: AtomicU64,
    pub(crate) pivots_skipped: AtomicU64,
    pub(crate) peeled_candidates: AtomicU64,
    pub(crate) pivots_refused_by_core: AtomicU64,
    pub(crate) frames_pruned_by_match: AtomicU64,
    pub(crate) children_pruned_by_parent_bound: AtomicU64,
    pub(crate) prep_words_delta: AtomicU64,
    pub(crate) prep_words_rebuilt: AtomicU64,
    pub(crate) run_cache_cross_solve_hits: AtomicU64,
    pub(crate) extract_words_copied: AtomicU64,
    pub(crate) extract_words_borrowed: AtomicU64,
}

impl ExecCounters {
    /// Fold an exact engine's search counters into the totals.
    pub(crate) fn note_search(&self, stats: &SearchStats) {
        self.frames_examined
            .fetch_add(stats.frames_examined(), Ordering::Relaxed);
        self.frames_pruned_by_bound
            .fetch_add(stats.frames_pruned_by_bound(), Ordering::Relaxed);
        self.pivots_skipped
            .fetch_add(stats.pivots_skipped, Ordering::Relaxed);
        self.peeled_candidates
            .fetch_add(stats.peeled_candidates, Ordering::Relaxed);
        self.pivots_refused_by_core
            .fetch_add(stats.pivots_refused_by_core, Ordering::Relaxed);
        self.frames_pruned_by_match
            .fetch_add(stats.frames_pruned_by_match, Ordering::Relaxed);
        self.children_pruned_by_parent_bound
            .fetch_add(stats.children_pruned_by_parent_bound, Ordering::Relaxed);
        self.prep_words_delta
            .fetch_add(stats.prep_words_delta, Ordering::Relaxed);
        self.prep_words_rebuilt
            .fetch_add(stats.prep_words_rebuilt, Ordering::Relaxed);
        self.run_cache_cross_solve_hits
            .fetch_add(stats.run_cache_cross_solve_hits, Ordering::Relaxed);
    }

    /// Count an answered query's stop cause. Lives at the *envelope* —
    /// every answer passes through it exactly once, whether the engine
    /// ran, the result cache replayed, or a within-batch clone collapsed
    /// — so `cancelled` cannot drift between the solve and fast paths.
    /// (`note_search` deliberately does not look at `stats.cancelled`:
    /// it only runs when an engine did.)
    pub(crate) fn note_stop(&self, stop: stgq_core::StopCause) {
        if stop == stgq_core::StopCause::Cancelled {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }
}
