//! Request and response envelopes for the executor.

use std::time::{Duration, Instant};

use stgq_core::{CancelToken, SgqQuery, SolveOutcome, StgqQuery, StopCause};
use stgq_graph::NodeId;

use crate::engine::Engine;

/// Either kind of planning query, uniformly submittable to the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuerySpec {
    /// A social-only group query.
    Sgq(SgqQuery),
    /// A social-temporal group query.
    Stgq(StgqQuery),
}

impl QuerySpec {
    /// The social radius `s` (shared by both query kinds; it keys the
    /// feasible-graph cache together with the initiator).
    pub fn s(&self) -> usize {
        match self {
            QuerySpec::Sgq(q) => q.s(),
            QuerySpec::Stgq(q) => q.s(),
        }
    }

    /// Whether this is the temporal variant.
    pub fn is_stgq(&self) -> bool {
        matches!(self, QuerySpec::Stgq(_))
    }
}

/// One query admitted to the executor.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// Who is asking (the query's `q` vertex).
    pub initiator: NodeId,
    /// What is being asked.
    pub spec: QuerySpec,
    /// Which solver answers it.
    pub engine: Engine,
    /// Optional wall-clock deadline: the solve stops cooperatively at the
    /// first frame boundary past it and reports
    /// [`StopCause::Cancelled`].
    pub deadline: Option<Instant>,
    /// Optional cancellation token shared with the caller.
    pub cancel: Option<CancelToken>,
    /// Minimum `(graph_version, calendar_version)` epoch this request may
    /// be answered from. A node whose published snapshot is older on
    /// either axis refuses the request with [`ExecError::EpochTooOld`]
    /// instead of serving a stale answer — the read-your-writes guard a
    /// cluster router stamps onto requests that must observe the writer's
    /// latest mutations. `None` (the default) accepts any epoch.
    pub min_epoch: Option<(u64, u64)>,
}

impl PlanRequest {
    /// A request with no deadline and no cancellation token.
    pub fn new(initiator: NodeId, spec: QuerySpec, engine: Engine) -> Self {
        PlanRequest {
            initiator,
            spec,
            engine,
            deadline: None,
            cancel: None,
            min_epoch: None,
        }
    }

    /// This request with a minimum-epoch requirement attached
    /// (read-your-writes: only snapshots at or past both stamps may
    /// answer it).
    pub fn with_min_epoch(mut self, graph_version: u64, calendar_version: u64) -> Self {
        self.min_epoch = Some((graph_version, calendar_version));
        self
    }

    /// This request with a wall-clock deadline attached.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This request with a cancellation token attached.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this entry may be answered by another identical entry's
    /// solve within the same batch (request collapsing). Entries with a
    /// deadline or token are never collapsed — their outcome can depend
    /// on when/whether they were stopped.
    pub(crate) fn collapsible(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// The collapse identity: same initiator + spec + engine ⇒ same
    /// deterministic answer on one snapshot. The minimum epoch is part of
    /// the key: entries with different requirements may differ in whether
    /// they are *answered* at all, so they never share an outcome.
    pub(crate) fn collapse_key(&self) -> (u32, QuerySpec, Engine, Option<(u64, u64)>) {
        (self.initiator.0, self.spec, self.engine, self.min_epoch)
    }
}

/// One executed batch entry: the engine's uniform [`SolveOutcome`] plus
/// executor provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanOutcome {
    /// The solution and its [`stgq_core::SearchStats`].
    pub outcome: SolveOutcome,
    /// Feasibility evaluations (heuristic engines only).
    pub evaluations: Option<u64>,
    /// Whether the answer is proven optimal / proven infeasible. For the
    /// exact family this is [`SolveOutcome::exact`] (false when a budget
    /// or cancellation stopped the search); heuristics are never exact.
    pub exact: bool,
    /// Why the solve returned — [`StopCause::FrameBudget`] (anytime
    /// budget) and [`StopCause::Cancelled`] (deadline/token) are distinct
    /// by construction, and `exact` is `true` iff this is
    /// [`StopCause::Completed`] for engines that can prove optimality.
    pub stop: StopCause,
    /// The engine that produced it.
    pub engine: Engine,
    /// Wall-clock time inside the engine (zero for collapsed entries).
    pub elapsed: Duration,
    /// Whether the feasible graph came from the cache.
    pub feasible_cache_hit: bool,
    /// Whether this entry was answered by cloning an identical entry's
    /// result from the same batch instead of solving again.
    pub collapsed: bool,
    /// Whether this entry was answered from the version-stamped result
    /// cache (a repeat of an identical query solved in an *earlier* batch
    /// or inline call, on the same world epoch) instead of solving again.
    pub result_cache_hit: bool,
}

/// Why the executor refused (rather than answered) a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The initiator does not exist in the published snapshot.
    InitiatorOutOfRange {
        /// The offending vertex id.
        initiator: NodeId,
        /// Vertices in the snapshot.
        node_count: usize,
    },
    /// No [`crate::WorldSnapshot`] has been published yet.
    NoSnapshot,
    /// The published snapshot is older than the request's
    /// [`PlanRequest::min_epoch`] requirement on at least one axis (a
    /// lagging replica must not serve a read-your-writes request).
    EpochTooOld {
        /// The `(graph_version, calendar_version)` the request demanded.
        required: (u64, u64),
        /// The `(graph_version, calendar_version)` actually published.
        available: (u64, u64),
    },
    /// The executor is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::InitiatorOutOfRange {
                initiator,
                node_count,
            } => write!(
                f,
                "initiator {} out of range (snapshot has {} vertices)",
                initiator.0, node_count
            ),
            ExecError::NoSnapshot => write!(f, "no world snapshot published"),
            ExecError::EpochTooOld {
                required,
                available,
            } => write!(
                f,
                "published epoch {available:?} is older than the required minimum {required:?}"
            ),
            ExecError::ShuttingDown => write!(f, "executor is shutting down"),
        }
    }
}

impl std::error::Error for ExecError {}
