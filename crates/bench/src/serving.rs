//! Shared fixtures for the serving-layer (executor) benchmarks: loading
//! a generated [`Dataset`] into a [`Planner`] and building a hot-query
//! workload shaped like server traffic.

use stgq_datagen::Dataset;
use stgq_exec::{ExecConfig, QuerySpec};
use stgq_graph::NodeId;
use stgq_service::{BatchQuery, Engine, Planner};

/// Load a generated dataset into a planner with the given executor
/// sizing (`workers = 0` means all cores).
///
/// The cross-batch result cache is **disabled**: these fixtures exist to
/// exercise and measure the solve paths (engines, collapsing, worker
/// pool), and a repeated workload on an unchanged world would otherwise
/// turn every timed/tested iteration after the first into pure cache
/// replay. Benchmarks that want the cache's effect opt in explicitly
/// (see the `throughput` bench's `exec-batch-cached` entry).
pub fn planner_from_dataset(ds: &Dataset, workers: usize) -> Planner {
    let mut planner = Planner::with_exec_config(
        ds.grid.horizon(),
        ExecConfig {
            workers,
            result_cache_capacity: 0,
            ..ExecConfig::default()
        },
    );
    for v in 0..ds.graph.node_count() {
        planner.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        planner.connect(e.a, e.b, e.weight).unwrap();
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        planner.set_calendar(NodeId(v as u32), cal.clone()).unwrap();
    }
    planner
}

/// A 64-query serving workload with zipf-flavoured popularity: 24
/// distinct (initiator, query) pairs — 4 very hot (×4), 8 warm (×3),
/// 12 lukewarm (×2) — interleaved deterministically. Mixed SGQ/STGQ,
/// exact engine throughout, so batched answers are comparable bit for
/// bit against a sequential loop.
///
/// Repetition is the realistic part of server traffic this models:
/// popular initiators re-ask the same query shape (retries, fan-out,
/// polling), which is exactly what the executor's within-batch request
/// collapsing exploits. The distinct-query count keeps the workload
/// honest — over a third of the batch is unique work.
pub fn hot_workload(ds: &Dataset, p: usize, s: usize, k: usize, m: usize) -> Vec<BatchQuery> {
    let n = ds.graph.node_count() as u32;
    let sgq = stgq_core::SgqQuery::new(p, s, k).expect("valid workload query");
    let stgq = stgq_core::StgqQuery::new(p, s, k, m).expect("valid workload query");
    let distinct: Vec<BatchQuery> = (0..24u32)
        .map(|i| {
            let initiator = NodeId((i * 29 + 7) % n);
            BatchQuery {
                initiator,
                spec: if i % 2 == 0 {
                    QuerySpec::Stgq(stgq)
                } else {
                    QuerySpec::Sgq(sgq)
                },
                engine: Engine::Exact,
            }
        })
        .collect();
    // Popularity ranks: 4×4 + 8×3 + 12×2 = 64 queries.
    let mut workload = Vec::with_capacity(64);
    for (rank, query) in distinct.iter().enumerate() {
        let repeats = match rank {
            0..=3 => 4,
            4..=11 => 3,
            _ => 2,
        };
        for _ in 0..repeats {
            workload.push(*query);
        }
    }
    // Deterministic interleave so identical entries are spread across
    // the batch (collapsing must not depend on adjacency).
    let len = workload.len();
    let mut interleaved = Vec::with_capacity(len);
    let mut index = 0usize;
    for _ in 0..len {
        interleaved.push(workload[index]);
        index = (index + 37) % len; // 37 ⟂ 64 ⇒ a full cycle
    }
    debug_assert_eq!(interleaved.len(), 64);
    interleaved
}

/// Objectives from solving `batch` one query at a time through the
/// planner's single-query path (the pre-executor serving loop).
pub fn sequential_objectives(planner: &Planner, batch: &[BatchQuery]) -> Vec<Option<u64>> {
    batch
        .iter()
        .map(|q| match q.spec {
            QuerySpec::Sgq(query) => planner
                .plan_sgq(q.initiator, &query, q.engine)
                .expect("workload initiators are valid")
                .solution
                .map(|sol| sol.total_distance),
            QuerySpec::Stgq(query) => planner
                .plan_stgq(q.initiator, &query, q.engine)
                .expect("workload initiators are valid")
                .solution
                .map(|sol| sol.total_distance),
        })
        .collect()
}

/// Objectives from draining `batch` through the executor's batched path.
pub fn batch_objectives(planner: &Planner, batch: &[BatchQuery]) -> Vec<Option<u64>> {
    planner
        .plan_batch(batch)
        .into_iter()
        .map(|reply| reply.expect("workload initiators are valid").objective())
        .collect()
}
