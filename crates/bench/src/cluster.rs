//! Shared fixtures for the cluster (scale-out) benchmarks and tests:
//! loading a generated [`Dataset`] into a [`Cluster`]'s writer and
//! draining workloads through the scatter/gather path.

use stgq_cluster::{Cluster, ClusterConfig};
use stgq_datagen::Dataset;
use stgq_exec::ExecConfig;
use stgq_graph::NodeId;
use stgq_service::BatchQuery;

/// Load a generated dataset into a fresh cluster's writer. The replicas
/// attach (full sync) on the first replication round — typically the
/// first [`Cluster::plan_batch`].
///
/// `workers_per_node` sizes each node's executor pool; the scale-out
/// benchmarks use 1 so "N nodes" means N solving pipelines, not
/// N × cores.
pub fn cluster_from_dataset(ds: &Dataset, nodes: usize, workers_per_node: usize) -> Cluster {
    let cfg = ClusterConfig {
        nodes,
        node_exec: ExecConfig {
            workers: workers_per_node,
            // The scale-out comparison measures solve throughput, not
            // replay: identical iterations would otherwise all hit the
            // result cache and reduce the bench to transport overhead.
            result_cache_capacity: 0,
            ..ExecConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(ds.grid.horizon(), cfg);
    for v in 0..ds.graph.node_count() {
        cluster.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        cluster.connect(e.a, e.b, e.weight).unwrap();
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        cluster.set_calendar(NodeId(v as u32), cal.clone()).unwrap();
    }
    cluster
}

/// Objectives from draining `batch` through the cluster's scatter/gather
/// path (panics on transport/epoch errors — bench workloads run on a
/// healthy cluster).
pub fn cluster_objectives(cluster: &Cluster, batch: &[BatchQuery]) -> Vec<Option<u64>> {
    cluster
        .plan_batch(batch)
        .into_iter()
        .map(|outcome| {
            outcome
                .expect("healthy cluster answers every entry")
                .outcome
                .objective()
        })
        .collect()
}
