//! One module per panel of the paper's Figure 1, plus shared dataset
//! setups. Every module exposes `run(scale) -> Table`; the tables are what
//! EXPERIMENTS.md quotes.
//!
//! The harness doubles as a cross-check: whenever two exact engines run on
//! the same input, their objectives are asserted equal — a benchmark run
//! that completes *is* an end-to-end correctness certificate.

pub mod ablation;
pub mod ext_kplex;
pub mod ext_parallel;
pub mod ext_quality;
pub mod fig1a;
pub mod fig1b;
pub mod fig1c;
pub mod fig1d;
pub mod fig1e;
pub mod fig1f;
pub mod fig1g;
pub mod fig1h;
mod quality;

use stgq_datagen::scenario::{
    calendar_churn, plaza, real_analog_194, sparse_fringe, synthetic_coauthor,
};
use stgq_datagen::{pick_initiator, Dataset};
use stgq_graph::{NodeId, SocialGraph};

use crate::{Scale, Table, SEED};

/// Target initiator degree: keeps the exhaustive baseline's
/// `C(deg, p−1)` enumeration comparable across datasets (the paper's
/// initiators have ~20–25 direct friends on the 194-person data).
pub const INITIATOR_DEGREE: usize = 20;

/// The SGQ dataset: 194-person real-data analog (calendars unused).
pub fn sgq_dataset() -> (SocialGraph, NodeId) {
    let ds = real_analog_194(1, SEED);
    let q = pick_initiator(&ds.graph, INITIATOR_DEGREE);
    (ds.graph, q)
}

/// The STGQ dataset over `days` days of half-hour slots.
pub fn stgq_dataset(days: usize) -> (Dataset, NodeId) {
    let ds = real_analog_194(days, SEED);
    let q = pick_initiator(&ds.graph, INITIATOR_DEGREE);
    (ds, q)
}

/// The sparse-fringe STGQ dataset over `days` days: community core plus
/// low-degree fans, where candidate peeling actually excludes people
/// (see [`stgq_datagen::scenario::sparse_fringe`]).
pub fn sparse_fringe_dataset(days: usize) -> (Dataset, NodeId) {
    let ds = sparse_fringe(days, SEED);
    let q = pick_initiator(&ds.graph, INITIATOR_DEGREE);
    (ds, q)
}

/// The calendar-churn STGQ dataset over `days` days: dense long-run
/// calendars with per-person jitter, the workload where pivot
/// preparation dominates the solve (see
/// [`stgq_datagen::scenario::calendar_churn`]).
pub fn calendar_churn_dataset(days: usize) -> (Dataset, NodeId) {
    let ds = calendar_churn(days, SEED);
    let q = pick_initiator(&ds.graph, INITIATOR_DEGREE);
    (ds, q)
}

/// The plaza dataset over `days` days: one hub acquainted with all 1200
/// people on the square, heavy CSR rows, shallow descent — the
/// extraction-bound workload (see [`stgq_datagen::scenario::plaza`]).
/// The initiator is the hub itself, not a degree-20 pick: the whole
/// point is the world-sized radius-1 eligible set.
pub fn plaza_dataset(days: usize) -> (Dataset, NodeId) {
    (plaza(days, SEED), NodeId(0))
}

/// The Figure-1(d) coauthorship dataset at size `n`.
pub fn coauthor_dataset(n: usize) -> (SocialGraph, NodeId) {
    let ds = synthetic_coauthor(n, 1, SEED);
    let q = pick_initiator(&ds.graph, INITIATOR_DEGREE);
    (ds.graph, q)
}

/// Run a figure by id (`"fig1a"`…`"fig1h"`).
pub fn run_figure(id: &str, scale: Scale) -> Option<Table> {
    match id {
        "fig1a" => Some(fig1a::run(scale)),
        "fig1b" => Some(fig1b::run(scale)),
        "fig1c" => Some(fig1c::run(scale)),
        "fig1d" => Some(fig1d::run(scale)),
        "fig1e" => Some(fig1e::run(scale)),
        "fig1f" => Some(fig1f::run(scale)),
        "fig1g" => Some(fig1g::run(scale)),
        "fig1h" => Some(fig1h::run(scale)),
        "ablation" => Some(ablation::run(scale)),
        "ext_parallel" => Some(ext_parallel::run(scale)),
        "ext_quality" => Some(ext_quality::run(scale)),
        "ext_kplex" => Some(ext_kplex::run(scale)),
        _ => None,
    }
}

/// All experiment ids: the paper's eight figure panels, the pruning
/// ablation, and the extension experiments (thread scaling, heuristic
/// quality, k-plex substrate).
pub const ALL_FIGURES: [&str; 12] = [
    "fig1a",
    "fig1b",
    "fig1c",
    "fig1d",
    "fig1e",
    "fig1f",
    "fig1g",
    "fig1h",
    "ablation",
    "ext_parallel",
    "ext_quality",
    "ext_kplex",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_stable() {
        let (g1, q1) = sgq_dataset();
        let (g2, q2) = sgq_dataset();
        assert_eq!(q1, q2);
        assert_eq!(g1.edge_count(), g2.edge_count());
        let deg = g1.degree(q1);
        assert!(
            (15..=25).contains(&deg),
            "initiator degree {deg} should be near {INITIATOR_DEGREE}"
        );
    }

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig9z", Scale::Fast).is_none());
    }
}
