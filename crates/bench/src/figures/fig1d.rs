//! Figure 1(d): SGQ running time vs network size (p=5, k=3, s=1) on the
//! coauthorship datasets {194, 800, 3200, 12800}; series SGSelect,
//! baseline, IP. With s=1 the feasible graph is the initiator's ego
//! network, so the interesting cost is radius extraction over ever-larger
//! graphs plus the (stable-size) group search.

use stgq_core::{exhaustive_group_count, solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};
use stgq_ip::{solve_sgq_ip, IpStyle};
use stgq_mip::MipOptions;

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::coauthor_dataset;

const GROUP_BUDGET: u64 = 50_000_000;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Fast => vec![194, 800],
        Scale::Paper => vec![194, 800, 3200, 12800],
    };
    let cfg = SelectConfig::default();
    let ip_opts = MipOptions {
        node_limit: 2_000_000,
        ..MipOptions::default()
    };

    let mut t = Table::new(
        "Figure 1(d): SGQ time vs network size (p=5, k=3, s=1, coauthorship)",
        &["n", "SGSelect", "Baseline", "IP", "dist", "initiator_deg"],
    );

    for n in sizes {
        let (graph, q) = coauthor_dataset(n);
        let query = SgqQuery::new(5, 1, 3).expect("valid");
        let (sg, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &cfg).expect("valid inputs")
        });
        let sg_dist = sg.solution.as_ref().map(|x| x.total_distance);

        let groups = exhaustive_group_count(&graph, q, &query);
        let base_cell = if groups <= GROUP_BUDGET {
            let (base, base_ns) = median_nanos(scale.reps(), || {
                solve_sgq_exhaustive(&graph, q, &query).expect("valid inputs")
            });
            assert_eq!(
                sg_dist,
                base.solution.as_ref().map(|x| x.total_distance),
                "engines disagree at n={n}"
            );
            fmt_ns(base_ns)
        } else {
            "-".to_string()
        };

        let ip_cell = match median_nanos(scale.reps(), || {
            solve_sgq_ip(&graph, q, &query, IpStyle::Compact, &ip_opts)
        }) {
            (Ok(ip), ip_ns) => {
                assert_eq!(
                    sg_dist,
                    ip.solution.as_ref().map(|x| x.total_distance),
                    "IP disagrees at n={n}"
                );
                fmt_ns(ip_ns)
            }
            (Err(_), _) => "-".to_string(),
        };

        t.push_row(vec![
            n.to_string(),
            fmt_ns(sg_ns),
            base_cell,
            ip_cell,
            sg_dist.map_or("-".into(), |d| d.to_string()),
            graph.degree(q).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_size() {
        let t = run(Scale::Fast);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "194");
    }
}
