//! Figure 1(b): SGQ running time vs social radius `s` (p=4, k=2, n=194);
//! series SGSelect and exhaustive baseline. Growing `s` inflates the
//! feasible graph `G_F`, which explodes the baseline's `C(f−1, p−1)` while
//! SGSelect's pruning keeps pace.

use stgq_core::{exhaustive_group_count, solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};
use stgq_graph::FeasibleGraph;

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::sgq_dataset;

const GROUP_BUDGET: u64 = 50_000_000;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let ss: Vec<usize> = match scale {
        Scale::Fast => vec![1, 2],
        Scale::Paper => vec![1, 3, 5],
    };
    let cfg = SelectConfig::default();

    let mut t = Table::new(
        format!("Figure 1(b): SGQ time vs s (p=4, k=2, n=194, initiator {q})"),
        &[
            "s",
            "SGSelect",
            "Baseline",
            "dist",
            "feasible_|GF|",
            "base_groups",
        ],
    );

    for s in ss {
        let query = SgqQuery::new(4, s, 2).expect("valid");
        let f = FeasibleGraph::extract(&graph, q, s).len();
        let (sg, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &cfg).expect("valid inputs")
        });
        let sg_dist = sg.solution.as_ref().map(|x| x.total_distance);

        let groups = exhaustive_group_count(&graph, q, &query);
        let base_cell = if groups <= GROUP_BUDGET {
            let (base, base_ns) = median_nanos(scale.reps(), || {
                solve_sgq_exhaustive(&graph, q, &query).expect("valid inputs")
            });
            assert_eq!(
                sg_dist,
                base.solution.as_ref().map(|x| x.total_distance),
                "engines disagree at s={s}"
            );
            fmt_ns(base_ns)
        } else {
            "-".to_string()
        };

        t.push_row(vec![
            s.to_string(),
            fmt_ns(sg_ns),
            base_cell,
            sg_dist.map_or("-".into(), |d| d.to_string()),
            f.to_string(),
            groups.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_graph_grows_with_s() {
        let t = run(Scale::Fast);
        let f1: usize = t.rows[0][4].parse().unwrap();
        let f2: usize = t.rows[1][4].parse().unwrap();
        assert!(f2 >= f1, "|GF| must not shrink as s grows");
    }
}
