//! Shared sweep behind Figures 1(g) and 1(h): PCArrange (manual phone
//! coordination) vs STGArrange (STGSelect probing for the smallest `k` no
//! worse than PCArrange) across activity sizes.

use stgq_core::{pc_arrange, stg_arrange, SelectConfig};
use stgq_graph::Dist;

use crate::Scale;

use super::stgq_dataset;

/// Fixed parameters of the quality comparison. `s = 2` gives the
/// optimizer (and the manual coordinator) the friends-of-friends pool the
/// paper's scenario implies — with only direct friends there is often a
/// single feasible group and both methods trivially tie.
pub(crate) const S: usize = 2;
pub(crate) const M: usize = 4;
pub(crate) const DAYS: usize = 7;

/// One activity size's comparison.
pub(crate) struct QualityRow {
    pub p: usize,
    /// PCArrange observed k (`k_h`) and distance; `None` ⇔ PCArrange could
    /// not gather `p` people.
    pub pc: Option<(usize, Dist)>,
    /// STGArrange smallest sufficient k and its distance.
    pub stg: Option<(usize, Dist)>,
}

pub(crate) fn sweep(scale: Scale) -> Vec<QualityRow> {
    let (ds, q) = stgq_dataset(DAYS);
    let ps: Vec<usize> = match scale {
        Scale::Fast => vec![3, 5],
        Scale::Paper => (3..=11).collect(),
    };
    let cfg = SelectConfig::default();

    ps.into_iter()
        .map(|p| {
            let pc = pc_arrange(&ds.graph, q, &ds.calendars, p, S, M)
                .expect("valid inputs")
                .map(|r| (r.observed_k, r.total_distance));
            let reference = pc.map_or(Dist::MAX, |(_, d)| d);
            let stg = stg_arrange(&ds.graph, q, &ds.calendars, p, S, M, reference, &cfg)
                .expect("valid inputs")
                .map(|r| (r.k, r.solution.total_distance));
            if let Some((pc_k, pc_d)) = pc {
                // The PCArrange group itself is STGQ-feasible at k = k_h,
                // so STGArrange must succeed with k ≤ k_h and distance
                // ≤ PCArrange's — the paper's headline claim, asserted on
                // every run.
                let (stg_k, stg_d) = stg.expect("STGArrange must succeed when PCArrange does");
                assert!(
                    stg_d <= pc_d,
                    "STGArrange distance must be no worse at p={p}"
                );
                assert!(
                    stg_k <= pc_k,
                    "STGArrange k must not exceed observed k_h at p={p}"
                );
            }
            QualityRow { p, pc, stg }
        })
        .collect()
}
