//! Figure 1(f): STGQ running time vs schedule length in days (m=4);
//! series STGSelect and the sequential baseline. Longer schedules mean
//! more slots to cover; both engines grow linearly in T but with slopes
//! ~1/m apart (pivots vs every window start).

use stgq_core::{solve_stgq, solve_stgq_sequential, SelectConfig, SgqEngine, StgqQuery};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::stgq_dataset;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let days_grid: Vec<usize> = match scale {
        Scale::Fast => vec![1, 3],
        Scale::Paper => (1..=7).collect(),
    };
    let cfg = SelectConfig::default();

    let mut t = Table::new(
        "Figure 1(f): STGQ time vs schedule length (p=4, k=2, s=2, m=4, n=194)",
        &["days", "T", "STGSelect", "Baseline", "dist", "pivots"],
    );

    for days in days_grid {
        let (ds, q) = stgq_dataset(days);
        let query = StgqQuery::new(4, 2, 2, 4).expect("valid");
        let (fast, fast_ns) = median_nanos(scale.reps(), || {
            solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).expect("valid inputs")
        });
        let (slow, slow_ns) = median_nanos(scale.reps(), || {
            solve_stgq_sequential(
                &ds.graph,
                q,
                &ds.calendars,
                &query,
                &cfg,
                SgqEngine::SgSelect,
            )
            .expect("valid inputs")
        });
        let fd = fast.solution.as_ref().map(|s| s.total_distance);
        let sd = slow.solution.as_ref().map(|s| s.total_distance);
        assert_eq!(fd, sd, "engines disagree at days={days}");

        t.push_row(vec![
            days.to_string(),
            ds.grid.horizon().to_string(),
            fmt_ns(fast_ns),
            fmt_ns(slow_ns),
            fd.map_or("-".into(), |d| d.to_string()),
            fast.stats.pivots_processed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_grows_with_days() {
        let t = run(Scale::Fast);
        let horizon = |i: usize| t.rows[i][1].parse::<usize>().unwrap();
        assert_eq!(horizon(0), 48);
        assert_eq!(horizon(1), 144);
    }
}
