//! Extension experiment: heuristic quality vs the exact optimum.
//!
//! Sweeps the activity size `p` and compares four solver tiers on the
//! same SGQ instances: exact SGSelect, greedy with restarts, greedy +
//! swap local search, and the anytime engine (SGSelect truncated at
//! [`ANYTIME_FRAMES`] frames). Reported ratios are `tier / optimal` total
//! distances (1.000 = optimal); times show what the quality costs.
//!
//! Greedy (and hence local search, which improves its seed) fails for
//! `p ≥ 7` at `k = 2` on the 194-analog — a faithful reproduction of the
//! paper's §1 dilemma: "giving priority to close friends … does not
//! always end up with a solution that satisfies the acquaintance
//! constraint, especially for an activity with a small k". The anytime
//! tier does not share the weakness: its incumbent comes from the exact
//! engine's access ordering, which balances distance against feasibility.

use stgq_core::heuristics::{greedy_sgq, local_search_sgq};
use stgq_core::{solve_sgq, SelectConfig, SgqQuery};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::sgq_dataset;

const RESTARTS: usize = 3;
const PASSES: usize = 4;

/// Frame budget of the anytime tier.
pub const ANYTIME_FRAMES: u64 = 500;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let ps: Vec<usize> = match scale {
        Scale::Fast => vec![4, 6],
        Scale::Paper => (3..=10).collect(),
    };
    let cfg = SelectConfig::default();

    let mut t = Table::new(
        format!(
            "Extension: heuristic quality vs exact (SGQ, k=2, s=2, n=194, anytime budget {} frames)",
            ANYTIME_FRAMES
        ),
        &[
            "p",
            "Exact",
            "Greedy",
            "LocalSearch",
            "Anytime",
            "greedy_r",
            "ls_r",
            "any_r",
            "exact_t",
            "greedy_t",
            "ls_t",
            "any_t",
        ],
    );

    for p in ps {
        let query = SgqQuery::new(p, 2, 2).expect("valid");
        let (exact, exact_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &cfg).expect("valid")
        });
        let (greedy, greedy_ns) = median_nanos(scale.reps(), || {
            greedy_sgq(&graph, q, &query, RESTARTS).expect("valid")
        });
        let (ls, ls_ns) = median_nanos(scale.reps(), || {
            local_search_sgq(&graph, q, &query, RESTARTS, PASSES).expect("valid")
        });
        let any_cfg = cfg.with_frame_budget(ANYTIME_FRAMES);
        let (any, any_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &any_cfg).expect("valid")
        });

        let opt = exact.solution.as_ref().map(|s| s.total_distance);
        let gd = greedy.solution.as_ref().map(|s| s.total_distance);
        let ld = ls.solution.as_ref().map(|s| s.total_distance);
        let ad = any.solution.as_ref().map(|s| s.total_distance);
        for (name, h) in [("greedy", gd), ("local search", ld), ("anytime", ad)] {
            if let (Some(o), Some(h)) = (opt, h) {
                assert!(h >= o, "{name} beat the proven optimum at p={p}");
            }
        }
        if let (Some(g), Some(l)) = (gd, ld) {
            assert!(
                l <= g,
                "local search must not be worse than its greedy seed at p={p}"
            );
        }

        let ratio = |h: Option<u64>| match (h, opt) {
            (Some(h), Some(o)) if o > 0 => format!("{:.3}", h as f64 / o as f64),
            (Some(_), Some(_)) => "1.000".to_string(),
            _ => "-".to_string(),
        };
        t.push_row(vec![
            p.to_string(),
            opt.map_or("-".into(), |d| d.to_string()),
            gd.map_or("-".into(), |d| d.to_string()),
            ld.map_or("-".into(), |d| d.to_string()),
            ad.map_or("-".into(), |d| d.to_string()),
            ratio(gd),
            ratio(ld),
            ratio(ad),
            fmt_ns(exact_ns),
            fmt_ns(greedy_ns),
            fmt_ns(ls_ns),
            fmt_ns(any_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_bounded_by_optimum() {
        // `run` asserts the domination relations internally.
        let t = run(Scale::Fast);
        assert_eq!(t.rows.len(), 2);
        // Ratio columns parse as numbers ≥ 1 when present.
        for row in &t.rows {
            for cell in &row[5..=7] {
                if cell != "-" {
                    assert!(cell.parse::<f64>().unwrap() >= 1.0);
                }
            }
        }
    }
}
