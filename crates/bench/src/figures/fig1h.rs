//! Figure 1(h): relation of `p` and the total social distance —
//! STGArrange vs PCArrange. The paper's claim: STGArrange's distance is
//! no larger (usually strictly smaller) at every activity size.

use crate::{Scale, Table};

use super::quality::{sweep, DAYS, M, S};

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        format!("Figure 1(h): total distance vs p (s={S}, m={M}, {DAYS}-day schedules, n=194)"),
        &["p", "STGArrange_dist", "PCArrange_dist"],
    );
    for row in sweep(scale) {
        t.push_row(vec![
            row.p.to_string(),
            row.stg.map_or("-".into(), |(_, d)| d.to_string()),
            row.pc.map_or("-".into(), |(_, d)| d.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stgarrange_distance_never_worse() {
        let t = run(Scale::Fast);
        for row in &t.rows {
            if let (Ok(stg), Ok(pc)) = (row[1].parse::<u64>(), row[2].parse::<u64>()) {
                assert!(stg <= pc, "p={}: {stg} > {pc}", row[0]);
            }
        }
    }
}
