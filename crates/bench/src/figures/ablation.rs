//! Ablation of the pruning strategies (the design-choice experiment
//! DESIGN.md calls out; not a figure of the paper, but the paper's §5.2
//! attributes SGSelect's two-orders-of-magnitude win to "the proposed
//! access ordering, distance pruning, and acquaintance pruning" — this
//! table shows each strategy's individual contribution).
//!
//! Every variant provably returns the same optimum (see the
//! `config_invariance` integration tests); only the explored frames and
//! the wall clock change.

use stgq_core::{solve_sgq, solve_stgq, SelectConfig, SgqQuery, StgqQuery};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::{sgq_dataset, stgq_dataset};

/// Run the ablation grid.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let (ds, tq) = stgq_dataset(7);
    let p = match scale {
        Scale::Fast => 5,
        Scale::Paper => 8,
    };
    let sgq = SgqQuery::new(p, 2, 2).expect("valid");
    let stgq = StgqQuery::new(4, 2, 2, 6).expect("valid");

    let variants: [(&str, SelectConfig); 5] = [
        ("all prunings", SelectConfig::PAPER_EXAMPLE),
        (
            "no distance",
            SelectConfig::PAPER_EXAMPLE.with_distance_pruning(false),
        ),
        (
            "no acquaintance",
            SelectConfig::PAPER_EXAMPLE.with_acquaintance_pruning(false),
        ),
        (
            "no availability",
            SelectConfig::PAPER_EXAMPLE.with_availability_pruning(false),
        ),
        ("none", SelectConfig::NO_PRUNING),
    ];

    let mut t = Table::new(
        format!("Ablation: pruning strategies (SGQ p={p},s=2,k=2; STGQ p=4,k=2,s=2,m=6)"),
        &[
            "variant",
            "SGQ_time",
            "SGQ_frames",
            "STGQ_time",
            "STGQ_frames",
            "dist",
        ],
    );

    let mut reference: Option<(Option<u64>, Option<u64>)> = None;
    for (name, cfg) in variants {
        let (sg, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &sgq, &cfg).expect("valid inputs")
        });
        let (st, st_ns) = median_nanos(scale.reps(), || {
            solve_stgq(&ds.graph, tq, &ds.calendars, &stgq, &cfg).expect("valid inputs")
        });
        let dists = (
            sg.solution.as_ref().map(|s| s.total_distance),
            st.solution.as_ref().map(|s| s.total_distance),
        );
        match &reference {
            None => reference = Some(dists),
            Some(r) => assert_eq!(*r, dists, "pruning changed the optimum ({name})"),
        }
        t.push_row(vec![
            name.to_string(),
            fmt_ns(sg_ns),
            sg.stats.frames.to_string(),
            fmt_ns(st_ns),
            st.stats.frames.to_string(),
            dists.0.map_or("-".into(), |d| d.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_share_the_optimum_and_full_pruning_explores_least() {
        let t = run(Scale::Fast);
        assert_eq!(t.rows.len(), 5);
        let frames = |i: usize| t.rows[i][2].parse::<u64>().unwrap();
        // Full pruning must explore no more frames than no pruning.
        assert!(frames(0) <= frames(4));
    }
}
