//! Figure 1(a): SGQ running time vs activity size `p` (k=2, s=1, n=194);
//! series SGSelect, exhaustive baseline, Integer Programming.

use stgq_core::{exhaustive_group_count, solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};
use stgq_ip::{solve_sgq_ip, IpStyle};
use stgq_mip::MipOptions;

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::sgq_dataset;

/// Baselines enumerating more groups than this are skipped ("-").
const GROUP_BUDGET: u64 = 50_000_000;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let ps: Vec<usize> = match scale {
        Scale::Fast => vec![3, 5, 7],
        Scale::Paper => (3..=11).collect(),
    };
    let cfg = SelectConfig::default();
    let ip_opts = MipOptions {
        node_limit: 2_000_000,
        ..MipOptions::default()
    };

    let mut t = Table::new(
        format!(
            "Figure 1(a): SGQ time vs p (k=2, s=1, n=194, initiator {q}, degree {})",
            graph.degree(q)
        ),
        &[
            "p",
            "SGSelect",
            "Baseline",
            "IP",
            "dist",
            "sg_frames",
            "base_groups",
            "ip_nodes",
        ],
    );

    for p in ps {
        let query = SgqQuery::new(p, 1, 2).expect("valid");
        let (sg, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &cfg).expect("valid inputs")
        });
        let sg_dist = sg.solution.as_ref().map(|s| s.total_distance);

        let groups = exhaustive_group_count(&graph, q, &query);
        let (base_cell, base_groups_cell) = if groups <= GROUP_BUDGET {
            let (base, base_ns) = median_nanos(scale.reps(), || {
                solve_sgq_exhaustive(&graph, q, &query).expect("valid inputs")
            });
            let base_dist = base.solution.as_ref().map(|s| s.total_distance);
            assert_eq!(sg_dist, base_dist, "SGSelect vs baseline disagree at p={p}");
            (fmt_ns(base_ns), groups.to_string())
        } else {
            ("-".to_string(), format!(">{GROUP_BUDGET}"))
        };

        let (ip_cell, ip_nodes_cell) = match median_nanos(scale.reps(), || {
            solve_sgq_ip(&graph, q, &query, IpStyle::Compact, &ip_opts)
        }) {
            (Ok(ip), ip_ns) => {
                let ip_dist = ip.solution.as_ref().map(|s| s.total_distance);
                assert_eq!(sg_dist, ip_dist, "SGSelect vs IP disagree at p={p}");
                (fmt_ns(ip_ns), ip.nodes.to_string())
            }
            (Err(_), _) => ("-".to_string(), "-".to_string()),
        };

        t.push_row(vec![
            p.to_string(),
            fmt_ns(sg_ns),
            base_cell,
            ip_cell,
            sg_dist.map_or("-".into(), |d| d.to_string()),
            sg.stats.frames.to_string(),
            base_groups_cell,
            ip_nodes_cell,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scale_produces_consistent_rows() {
        let t = run(Scale::Fast);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.headers.len(), 8);
    }
}
