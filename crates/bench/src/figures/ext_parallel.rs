//! Extension experiment: thread scaling of the parallel exact engines.
//!
//! The paper (§5.2) points out that its IP comparator exploited all 8
//! cores of the IBM x3650 while SGSelect/STGSelect ran single-threaded.
//! This sweep measures the parallel engines of `stgq-core::parallel` on
//! hard instances of both query families, asserting at every thread count
//! that the objective equals the sequential optimum.
//!
//! **Read the `cores=` figure in the table title before the speedups.**
//! On a single-core host (the common container case) every speedup is
//! necessarily ≤ 1 and the table measures correctness plus threading
//! overhead, not scaling. Even with real cores, speedups are sublinear by
//! nature: workers start before the incumbent is strong (mitigated by the
//! greedy seed), and pivot/subtree granularity is coarse.

use stgq_core::{
    solve_sgq, solve_sgq_parallel, solve_stgq, solve_stgq_parallel, SelectConfig, SgqQuery,
    StgqQuery,
};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::{sgq_dataset, stgq_dataset};

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let (ds, tq) = stgq_dataset(7);
    let threads: Vec<usize> = match scale {
        Scale::Fast => vec![1, 2],
        Scale::Paper => vec![1, 2, 4, 8],
    };
    let cfg = SelectConfig::default();
    // Hard enough that parallelism has something to chew on.
    let sgq = SgqQuery::new(8, 2, 2).expect("valid");
    let stgq = StgqQuery::new(6, 2, 2, 8).expect("valid");

    let seq_sgq = solve_sgq(&graph, q, &sgq, &cfg).expect("valid inputs");
    let seq_stgq = solve_stgq(&ds.graph, tq, &ds.calendars, &stgq, &cfg).expect("valid inputs");
    let sgq_opt = seq_sgq.solution.as_ref().map(|s| s.total_distance);
    let stgq_opt = seq_stgq.solution.as_ref().map(|s| s.total_distance);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = Table::new(
        format!(
            "Extension: thread scaling (SGQ p={}, s={}, k={}; STGQ p={}, m={}; n=194, cores={})",
            sgq.p(),
            sgq.s(),
            sgq.k(),
            stgq.p(),
            stgq.m(),
            cores,
        ),
        &[
            "threads",
            "SGQ",
            "SGQ speedup",
            "STGQ",
            "STGQ speedup",
            "sgq_dist",
            "stgq_dist",
        ],
    );

    let mut sgq_base = 0u128;
    let mut stgq_base = 0u128;
    for &n in &threads {
        let (sg_out, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq_parallel(&graph, q, &sgq, &cfg, n).expect("valid inputs")
        });
        let (st_out, st_ns) = median_nanos(scale.reps(), || {
            solve_stgq_parallel(&ds.graph, tq, &ds.calendars, &stgq, &cfg, n).expect("valid inputs")
        });
        assert_eq!(
            sg_out.solution.as_ref().map(|s| s.total_distance),
            sgq_opt,
            "parallel SGQ lost optimality at {n} threads"
        );
        assert_eq!(
            st_out.solution.as_ref().map(|s| s.total_distance),
            stgq_opt,
            "parallel STGQ lost optimality at {n} threads"
        );
        if n == 1 {
            sgq_base = sg_ns;
            stgq_base = st_ns;
        }
        t.push_row(vec![
            n.to_string(),
            fmt_ns(sg_ns),
            format!("{:.2}x", sgq_base as f64 / sg_ns.max(1) as f64),
            fmt_ns(st_ns),
            format!("{:.2}x", stgq_base as f64 / st_ns.max(1) as f64),
            sgq_opt.map_or("-".into(), |d| d.to_string()),
            stgq_opt.map_or("-".into(), |d| d.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objectives_stay_equal_across_thread_counts() {
        // `run` asserts objective equality internally; completing is the test.
        let t = run(Scale::Fast);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "1");
    }
}
