//! Figure 1(g): relation of `p` and `k` — STGArrange's smallest
//! sufficient acquaintance parameter vs PCArrange's observed `k_h`.
//! The paper's claim: STGArrange achieves a much smaller `k` for every
//! activity size.

use crate::{Scale, Table};

use super::quality::{sweep, DAYS, M, S};

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        format!("Figure 1(g): k vs p (s={S}, m={M}, {DAYS}-day schedules, n=194)"),
        &["p", "STGArrange_k", "PCArrange_kh"],
    );
    for row in sweep(scale) {
        t.push_row(vec![
            row.p.to_string(),
            row.stg.map_or("-".into(), |(k, _)| k.to_string()),
            row.pc.map_or("-".into(), |(k, _)| k.to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stgarrange_k_never_exceeds_pcarrange_kh() {
        let t = run(Scale::Fast);
        for row in &t.rows {
            if let (Ok(stg), Ok(pc)) = (row[1].parse::<usize>(), row[2].parse::<usize>()) {
                assert!(stg <= pc, "p={}: {stg} > {pc}", row[0]);
            }
        }
    }
}
