//! Extension experiment: the k-plex substrate on the initiator's ego net.
//!
//! The acquaintance constraint makes every feasible group a `(k+1)`-plex
//! (Theorem 1 reduces from the k-plex decision problem), so the capacity
//! of the initiator's neighbourhood to host k-plexes bounds what any
//! SGQ can return. This sweep runs `stgq-kplex`'s exact maximum k-plex
//! branch-and-bound and near-maximum maximal enumeration over the s=2
//! feasible graph of the standard initiator, for the paper's k range.
//!
//! Reading: `max_size` is the largest group feasible at acquaintance
//! parameter `k−1` *ignoring distance*; `#maximal` counts the distinct
//! near-largest cliques-relaxations the neighbourhood offers.

use stgq_graph::{FeasibleGraph, GraphBuilder, NodeId, SocialGraph};
use stgq_kplex::{enumerate_maximal_kplexes, is_kplex, max_kplex, EnumerateConfig};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::sgq_dataset;

/// Materialise the feasible graph (compact indices) as a standalone
/// `SocialGraph` for the k-plex solvers.
fn ego_subgraph(fg: &FeasibleGraph) -> SocialGraph {
    let mut b = GraphBuilder::new(fg.len());
    for v in 0..fg.len() as u32 {
        for &u in fg.neighbors(v) {
            if v < u {
                b.add_edge(NodeId(v), NodeId(u), fg.edge_weight(v, u))
                    .expect("feasible graph edges are valid");
            }
        }
    }
    b.build()
}

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let fg = FeasibleGraph::extract(&graph, q, 2);
    let ego = ego_subgraph(&fg);
    let ks: Vec<usize> = match scale {
        Scale::Fast => vec![1, 2],
        Scale::Paper => vec![1, 2, 3, 4],
    };

    let mut t = Table::new(
        format!(
            "Extension: k-plex capacity of the initiator's ego net (s=2, |V_F|={}, |E_F|={})",
            ego.node_count(),
            ego.edge_count()
        ),
        &[
            "k",
            "max_size",
            "bb_nodes",
            "bb_time",
            "#maximal(>=max-1)",
            "enum_nodes",
            "enum_time",
        ],
    );

    for k in ks {
        let (max_out, bb_ns) = median_nanos(scale.reps(), || max_kplex(&ego, k));
        assert!(
            is_kplex(&ego, &max_out.members, k),
            "B&B returned a non-k-plex at k={k}"
        );
        let max_size = max_out.members.len();

        let cfg = EnumerateConfig {
            min_size: max_size.saturating_sub(1).max(1),
            max_results: 100_000,
        };
        let (enum_out, enum_ns) =
            median_nanos(scale.reps(), || enumerate_maximal_kplexes(&ego, k, &cfg));
        assert!(
            enum_out.sets.iter().any(|s| s.len() == max_size),
            "enumeration missed a maximum k-plex at k={k}"
        );

        t.push_row(vec![
            k.to_string(),
            max_size.to_string(),
            max_out.stats.nodes.to_string(),
            fmt_ns(bb_ns),
            enum_out.sets.len().to_string(),
            enum_out.nodes.to_string(),
            fmt_ns(enum_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_kplex_size_grows_with_k() {
        let t = run(Scale::Fast);
        let size = |i: usize| t.rows[i][1].parse::<usize>().unwrap();
        assert!(size(1) >= size(0), "relaxing k can only grow the maximum");
    }
}
