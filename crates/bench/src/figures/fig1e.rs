//! Figure 1(e): STGQ running time vs activity length `m` (half-hour
//! slots), 7-day schedules; series STGSelect and the sequential baseline.
//! Pivot slots let STGSelect anchor `T/m` searches instead of the
//! baseline's `T−m+1`, so its advantage grows with `m`.

use stgq_core::{solve_stgq, solve_stgq_sequential, SelectConfig, SgqEngine, StgqQuery};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::stgq_dataset;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (ds, q) = stgq_dataset(7);
    let ms: Vec<usize> = match scale {
        Scale::Fast => vec![2, 6],
        Scale::Paper => (1..=12).map(|i| 2 * i).collect(),
    };
    let cfg = SelectConfig::default();

    let mut t = Table::new(
        format!(
            "Figure 1(e): STGQ time vs m (p=4, k=2, s=2, n=194, 7-day schedules, T={})",
            ds.grid.horizon()
        ),
        &[
            "m",
            "STGSelect",
            "Baseline",
            "dist",
            "period",
            "pivots",
            "stg_frames",
        ],
    );

    for m in ms {
        let query = StgqQuery::new(4, 2, 2, m).expect("valid");
        let (fast, fast_ns) = median_nanos(scale.reps(), || {
            solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).expect("valid inputs")
        });
        let (slow, slow_ns) = median_nanos(scale.reps(), || {
            solve_stgq_sequential(
                &ds.graph,
                q,
                &ds.calendars,
                &query,
                &cfg,
                SgqEngine::SgSelect,
            )
            .expect("valid inputs")
        });
        let fd = fast.solution.as_ref().map(|s| s.total_distance);
        let sd = slow.solution.as_ref().map(|s| s.total_distance);
        assert_eq!(fd, sd, "STGSelect vs sequential baseline disagree at m={m}");

        t.push_row(vec![
            m.to_string(),
            fmt_ns(fast_ns),
            fmt_ns(slow_ns),
            fd.map_or("-".into(), |d| d.to_string()),
            fast.solution
                .as_ref()
                .map_or("-".into(), |s| s.period.to_string()),
            fast.stats.pivots_processed.to_string(),
            fast.stats.frames.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivot_count_shrinks_as_m_grows() {
        let t = run(Scale::Fast);
        let pivots = |i: usize| t.rows[i][5].parse::<u64>().unwrap();
        assert!(pivots(1) <= pivots(0), "fewer pivots for longer activities");
    }
}
