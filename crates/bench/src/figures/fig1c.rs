//! Figure 1(c): SGQ running time vs acquaintance constraint `k`
//! (p=5, s=2, n=194). The paper observes `k` barely moves either curve —
//! it filters candidate groups but does not change how many exist.

use stgq_core::{exhaustive_group_count, solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};

use crate::table::fmt_ns;
use crate::{median_nanos, Scale, Table};

use super::sgq_dataset;

const GROUP_BUDGET: u64 = 50_000_000;

/// Run the sweep.
pub fn run(scale: Scale) -> Table {
    let (graph, q) = sgq_dataset();
    let ks: Vec<usize> = match scale {
        Scale::Fast => vec![2, 4],
        Scale::Paper => (1..=6).collect(),
    };
    let cfg = SelectConfig::default();

    let mut t = Table::new(
        format!("Figure 1(c): SGQ time vs k (p=5, s=2, n=194, initiator {q})"),
        &[
            "k",
            "SGSelect",
            "Baseline",
            "dist",
            "sg_frames",
            "base_groups",
        ],
    );

    for k in ks {
        let query = SgqQuery::new(5, 2, k).expect("valid");
        let (sg, sg_ns) = median_nanos(scale.reps(), || {
            solve_sgq(&graph, q, &query, &cfg).expect("valid inputs")
        });
        let sg_dist = sg.solution.as_ref().map(|x| x.total_distance);

        let groups = exhaustive_group_count(&graph, q, &query);
        let base_cell = if groups <= GROUP_BUDGET {
            let (base, base_ns) = median_nanos(scale.reps(), || {
                solve_sgq_exhaustive(&graph, q, &query).expect("valid inputs")
            });
            assert_eq!(
                sg_dist,
                base.solution.as_ref().map(|x| x.total_distance),
                "engines disagree at k={k}"
            );
            fmt_ns(base_ns)
        } else {
            "-".to_string()
        };

        t.push_row(vec![
            k.to_string(),
            fmt_ns(sg_ns),
            base_cell,
            sg_dist.map_or("-".into(), |d| d.to_string()),
            sg.stats.frames.to_string(),
            groups.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_improves_or_holds_as_k_relaxes() {
        let t = run(Scale::Fast);
        let d = |row: &Vec<String>| row[3].parse::<u64>().ok();
        if let (Some(tight), Some(loose)) = (d(&t.rows[0]), d(&t.rows[1])) {
            assert!(loose <= tight, "larger k admits more groups");
        }
    }
}
