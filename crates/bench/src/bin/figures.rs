//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run -p stgq-bench --release --bin figures -- [--fast] [fig1a ... | all]
//! ```
//!
//! Prints one table per figure and writes CSVs to `bench_results/`
//! (override with the `STGQ_BENCH_OUT` environment variable).

use std::path::PathBuf;
use std::process::ExitCode;

use stgq_bench::figures::{run_figure, ALL_FIGURES};
use stgq_bench::Scale;

fn main() -> ExitCode {
    let mut scale = Scale::Paper;
    let mut wanted: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fast" => scale = Scale::Fast,
            "--help" | "-h" => {
                eprintln!("usage: figures [--fast] [fig1a fig1b ... | all]");
                return ExitCode::SUCCESS;
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    let out_dir = PathBuf::from(
        std::env::var("STGQ_BENCH_OUT").unwrap_or_else(|_| "bench_results".to_string()),
    );

    for id in &wanted {
        let Some(table) = run_figure(id, scale) else {
            eprintln!(
                "unknown figure id: {id} (known: {})",
                ALL_FIGURES.join(", ")
            );
            return ExitCode::FAILURE;
        };
        println!("{table}");
        if let Err(e) = table.write_csv(&out_dir, &format!("{id}.csv")) {
            eprintln!("warning: could not write {id}.csv: {e}");
        }
    }
    println!("CSV results in {}", out_dir.display());
    ExitCode::SUCCESS
}
