//! Perf-regression gate: compare a freshly measured criterion-shim JSON
//! export against the committed `BENCH_core.json` baseline and fail (exit
//! code 1) when any shared benchmark id's median regressed beyond the
//! threshold.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [max_ratio]
//! ```
//!
//! `max_ratio` defaults to 1.25 — a 25% regression budget, generous
//! enough for shared-runner noise while still catching real hot-path
//! regressions. Ids present in only one file are reported but never
//! fail the gate (benchmarks come and go across PRs).
//!
//! The budget is applied on top of a **machine-speed scale**: the median
//! candidate/baseline ratio over the `reference-*` entries (whose code
//! is the frozen pre-optimization oracle — if they moved, the machine
//! moved). A runner class uniformly 1.4× slower than the box that
//! produced the committed baseline shifts every entry by the same scale
//! and fails nothing, while a genuine hot-path regression moves only the
//! optimized entries relative to their anchors and still trips the gate.

use std::process::ExitCode;

/// Parse the criterion shim's export: one `{"id": ..., "median_ns": ...}`
/// object per line. Hand-rolled so the gate has zero parsing
/// dependencies (the offline serde shim does not deserialize).
fn parse(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_gate: cannot read {path}: {e}"));
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id_at) = line.find("\"id\":") else {
            continue;
        };
        let rest = &line[id_at + 5..];
        let Some(open) = rest.find('"') else { continue };
        let rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else {
            continue;
        };
        let id = rest[..close].to_string();
        let Some(med_at) = line.find("\"median_ns\":") else {
            continue;
        };
        let tail = line[med_at + 12..].trim_start();
        let end = tail
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(tail.len());
        let Ok(median) = tail[..end].parse::<f64>() else {
            continue;
        };
        out.push((id, median));
    }
    assert!(!out.is_empty(), "bench_gate: no entries parsed from {path}");
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .expect("usage: bench_gate <baseline> <candidate> [max_ratio]");
    let candidate_path = args
        .next()
        .expect("usage: bench_gate <baseline> <candidate> [max_ratio]");
    let max_ratio: f64 = args
        .next()
        .map(|a| a.parse().expect("max_ratio must be a number"))
        .unwrap_or(1.25);

    let baseline = parse(&baseline_path);
    let candidate = parse(&candidate_path);

    // Machine-speed scale: median ratio over the reference-engine entries
    // (frozen code — any drift there is the machine, not a regression).
    let mut anchor_ratios: Vec<f64> = candidate
        .iter()
        .filter(|(id, _)| id.contains("reference-"))
        .filter_map(|(id, new_median)| {
            baseline
                .iter()
                .find(|(b, _)| b == id)
                .map(|(_, old_median)| new_median / old_median)
        })
        .collect();
    anchor_ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    // Used unclamped: a runner *faster* than the baseline machine tightens
    // the budget proportionally (raw ratios shrink with it), otherwise a
    // genuine regression could hide inside the hardware speed-up.
    let scale = if anchor_ratios.is_empty() {
        1.0
    } else {
        anchor_ratios[anchor_ratios.len() / 2]
    };
    println!("bench_gate: machine-speed scale {scale:.2}x (median over reference-* entries)");

    let mut regressions: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut compared = 0usize;
    for (id, new_median) in &candidate {
        let Some((_, old_median)) = baseline.iter().find(|(b, _)| b == id) else {
            println!("NEW      {id}: {new_median:.0} ns (no baseline entry)");
            continue;
        };
        compared += 1;
        let ratio = new_median / old_median;
        let verdict = if ratio > max_ratio * scale {
            regressions.push((id.clone(), *old_median, *new_median, ratio));
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{verdict:>9} {id}: {old_median:.0} -> {new_median:.0} ns ({ratio:.2}x)");
    }
    for (id, _) in &baseline {
        if !candidate.iter().any(|(c, _)| c == id) {
            println!("DROPPED  {id}: present in baseline only");
        }
    }

    println!(
        "bench_gate: {compared} compared, {} regressed beyond {:.2}x ({max_ratio:.2}x budget x {scale:.2}x machine scale)",
        regressions.len(),
        max_ratio * scale
    );
    // A CI log is read bottom-up after a failure: close with *every*
    // regressed entry (worst first), so a multi-entry regression is
    // never mistaken for a single noisy benchmark.
    if regressions.is_empty() {
        return ExitCode::SUCCESS;
    }
    regressions.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("ratios are finite"));
    println!("bench_gate: all regressed entries, worst first:");
    for (id, old, new, ratio) in &regressions {
        println!(
            "  {ratio:.2}x  {id}: {old:.0} -> {new:.0} ns (+{:.0}%)",
            (ratio - 1.0) * 100.0
        );
    }
    ExitCode::FAILURE
}
