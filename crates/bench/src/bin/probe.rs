//! One-off profiling probe for the hot path (not part of the figure
//! harness): prints search statistics and coarse phase timings for a
//! fig1f-style instance so perf work aims at the right loop.

use std::time::Instant;

use stgq_bench::figures::{calendar_churn_dataset, stgq_dataset};
use stgq_core::{solve_stgq, SelectConfig, StgqQuery};
use stgq_datagen::Dataset;
use stgq_graph::{FeasibleGraph, FeasibleView, NodeId, ShardedGraph};

/// Percent reduction of `a` relative to `b` (0 when `b` is 0).
fn pct(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * (1.0 - a as f64 / b as f64)
    }
}

/// Peak resident set (`VmHWM`) in MiB from `/proc/self/status`; 0.0 when
/// the file is unavailable (non-Linux hosts).
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kib| kib.parse::<u64>().ok())
        })
        .map_or(0.0, |kib| kib as f64 / 1024.0)
}

/// The prep-vs-descend scoreboard: for each config, the solve's own
/// [`StageTimings`] split (detail mode — `prepare_pivot`,
/// `finalize_pivot` and descent clocked individually) read off the
/// arena after each solve, next to the whole solve's wall clock. The
/// delta/rebuilt counters show how much of the availability work the
/// incremental run cache answered by interval arithmetic.
///
/// [`StageTimings`]: stgq_core::StageTimings
fn prep_split(what: &str, ds: &Dataset, q: NodeId, query: &StgqQuery) {
    println!("\n{what}: prep phase split (in-solve, detail mode):");
    let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
    for (name, cfg) in [
        ("default   ", SelectConfig::default()),
        (
            "no iprep  ",
            SelectConfig::default().with_incremental_prep(false),
        ),
        (
            "no pbnd   ",
            SelectConfig::default().with_parent_completion_bound(false),
        ),
        (
            "neither   ",
            SelectConfig::default()
                .with_incremental_prep(false)
                .with_parent_completion_bound(false),
        ),
    ] {
        let mut arena = stgq_core::PivotArena::new();
        arena.timing_detail = true;
        // Minimum over repeats: phase timings are µs-scale, so take the
        // least-noisy observation of each quantity.
        let mut prep_ns = u64::MAX;
        let mut fin_ns = u64::MAX;
        let mut desc_ns = u64::MAX;
        let mut solve_ns = u128::MAX;
        let mut timing = stgq_core::StageTimings::default();
        let mut out = None;
        for _ in 0..12 {
            let t0 = Instant::now();
            out = Some(stgq_core::solve_stgq_pooled(
                &fg,
                &ds.calendars,
                query,
                &cfg,
                &mut arena,
            ));
            solve_ns = solve_ns.min(t0.elapsed().as_nanos());
            timing = arena.timings;
            prep_ns = prep_ns.min(timing.prepare_ns);
            fin_ns = fin_ns.min(timing.finalize_ns);
            desc_ns = desc_ns.min(timing.descend_ns);
        }
        let out = out.expect("12 repeats ran");
        println!(
            "    [{name}] prepare {prep_ns:>8} ns  finalize {fin_ns:>8} ns  descend {desc_ns:>8} ns  solve {solve_ns:>8} ns  ({}/{} pivots prepared, {} descended; words {} delta'd {} rebuilt; {} children parent-pruned)",
            timing.prepared,
            timing.pivots,
            timing.descended,
            out.stats.prep_words_delta,
            out.stats.prep_words_rebuilt,
            out.stats.children_pruned_by_parent_bound,
        );
    }
}

fn main() {
    let days: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let (ds, q) = stgq_dataset(days);
    let query = StgqQuery::new(4, 2, 2, 4).expect("valid");
    let cfg = SelectConfig::default();

    let t0 = Instant::now();
    let mut fg = None;
    for _ in 0..100 {
        fg = Some(FeasibleGraph::extract(&ds.graph, q, query.s()));
    }
    let extract_ns = t0.elapsed().as_nanos() / 100;
    let fg = fg.unwrap();
    println!(
        "feasible graph: {} vertices, extract {extract_ns} ns",
        fg.len()
    );

    // The zero-copy counterpart: same Definition-1 DP, but adjacency
    // words are generated over the snapshot's CSR segments instead of
    // copied into a per-query matrix.
    let sharded = ShardedGraph::from_flat(&ds.graph, 4);
    let t0 = Instant::now();
    let mut view = None;
    for _ in 0..100 {
        view = Some(FeasibleView::extract(&sharded, q, query.s()));
    }
    let view_ns = t0.elapsed().as_nanos() / 100;
    let view = view.unwrap();
    println!(
        "feasible view:  {} vertices, extract {view_ns} ns ({:.2}x vs materialized, {} words generated)",
        stgq_graph::CandidateTopology::len(&view),
        extract_ns as f64 / view_ns as f64,
        view.words_generated(),
    );

    let t0 = Instant::now();
    let mut out = None;
    for _ in 0..100 {
        out = Some(solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).unwrap());
    }
    let solve_ns = t0.elapsed().as_nanos() / 100;
    let out = out.unwrap();
    println!(
        "solve: {solve_ns} ns  (extract share: {:.1}%)",
        100.0 * extract_ns as f64 / solve_ns as f64
    );
    println!("stats: {:#?}", out.stats);

    let t0 = Instant::now();
    let mut on = None;
    for _ in 0..100 {
        on = Some(stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &cfg));
    }
    let on_ns = t0.elapsed().as_nanos() / 100;
    println!("solve_on (pre-extracted): {on_ns} ns");
    let _ = on;

    // Config ablations to locate the per-frame cost.
    for (name, cfg) in [
        (
            "no acquaintance prune",
            SelectConfig::default().with_acquaintance_pruning(false),
        ),
        (
            "no distance prune",
            SelectConfig::default().with_distance_pruning(false),
        ),
        (
            "no availability prune",
            SelectConfig::default().with_availability_pruning(false),
        ),
    ] {
        let t0 = Instant::now();
        for _ in 0..100 {
            let _ = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
        }
        println!("{name}: {} ns", t0.elapsed().as_nanos() / 100);
    }

    // How much of solve_on is pivot preparation vs search? Approximate by
    // running with p = 1... not comparable; instead run frame_budget = 0-ish
    // search (budget 1 per pivot) so only preparation + one frame happens.
    let tight = SelectConfig::default().with_frame_budget(1);
    let t0 = Instant::now();
    for _ in 0..100 {
        let _ = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &tight);
    }
    println!("prep + 1 frame/pivot: {} ns", t0.elapsed().as_nanos() / 100);

    for (p, k, m) in [
        (4usize, 2usize, 4usize),
        (5, 2, 4),
        (6, 2, 4),
        (5, 2, 12),
        (5, 2, 16),
    ] {
        let query = StgqQuery::new(p, 2, k, m).expect("valid");
        let mut ref_ns = u128::MAX;
        let mut new_ns = u128::MAX;
        for _ in 0..12 {
            let t0 = Instant::now();
            let _ = stgq_core::reference::solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg);
            ref_ns = ref_ns.min(t0.elapsed().as_nanos());
            let t0 = Instant::now();
            let _ = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
            new_ns = new_ns.min(t0.elapsed().as_nanos());
        }
        let out = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
        println!(
            "p={p} k={k} m={m:>2}: reference {ref_ns:>10} ns  optimized {new_ns:>10} ns  speedup {:.2}x  exams {} frames {} expanded {}",
            ref_ns as f64 / new_ns as f64,
            out.stats.candidates_examined, out.stats.frames, out.stats.vertices_expanded
        );
    }

    // Search-reduction scoreboard: frames examined / bound prunes / pivot
    // skips with the PR-2 pieces on vs. the PR-1 baseline behavior.
    println!("\nsearch reduction (default vs NO_SEARCH_REDUCTION):");
    for (p, k, m) in [(4usize, 2usize, 4usize), (5, 2, 4), (5, 2, 12), (5, 2, 16)] {
        let query = StgqQuery::new(p, 2, k, m).expect("valid");
        let new = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &SelectConfig::default());
        let old = stgq_core::solve_stgq_on(
            &fg,
            &ds.calendars,
            &query,
            &SelectConfig::NO_SEARCH_REDUCTION,
        );
        assert_eq!(
            new.solution.as_ref().map(|s| s.total_distance),
            old.solution.as_ref().map(|s| s.total_distance),
            "search reduction must not move the optimum"
        );
        let mut no_acq_stats = None;
        for (name, ablated) in [
            ("all on ", SelectConfig::default()),
            ("no seed", SelectConfig::default().with_seed_restarts(0)),
            (
                "no prom",
                SelectConfig::default().with_pivot_promise_order(false),
            ),
            (
                "no aord",
                SelectConfig::default().with_availability_ordering(false),
            ),
            (
                "no pool",
                SelectConfig::default().with_pool_pivot_buffers(false),
            ),
            (
                "no sharp",
                SelectConfig::default().with_sharp_pivot_floor(false),
            ),
            (
                "no acqf ",
                SelectConfig::default().with_acq_pivot_floor(false),
            ),
            (
                "no peel",
                SelectConfig::default().with_core_peel_fixpoint(false),
            ),
            (
                "no mtch",
                SelectConfig::default().with_kplex_match_bound(false),
            ),
            (
                "no prep",
                SelectConfig::default().with_shared_pivot_prep(false),
            ),
            (
                "no iprep",
                SelectConfig::default().with_incremental_prep(false),
            ),
            (
                "no pbnd",
                SelectConfig::default().with_parent_completion_bound(false),
            ),
            (
                "no mot ",
                SelectConfig::default().with_materialize_on_touch(false),
            ),
            (
                "pr4 on ",
                SelectConfig::default().without_candidate_reduction(),
            ),
            ("all off", SelectConfig::NO_SEARCH_REDUCTION),
        ] {
            let mut ns = u128::MAX;
            let mut last = None;
            for _ in 0..12 {
                let t0 = Instant::now();
                last = Some(stgq_core::solve_stgq_on(
                    &fg,
                    &ds.calendars,
                    &query,
                    &ablated,
                ));
                ns = ns.min(t0.elapsed().as_nanos());
            }
            // Deterministic stats: keep the "no acqf" run for the
            // acq-floor report below instead of re-solving.
            if name.trim() == "no acqf" {
                no_acq_stats = last.map(|out| out.stats);
            }
            println!("    p={p} m={m:>2} [{name}]: {ns:>9} ns");
        }
        println!(
            "p={p} k={k} m={m:>2}: frames {:>5} (was {:>5}, -{:.1}%)  exams {:>6} (was {:>6}, -{:.1}%)  bound-pruned {:>5}  parent-pruned {:>4}  pivots skipped {}/{}",
            new.stats.frames_examined(),
            old.stats.frames_examined(),
            pct(new.stats.frames_examined(), old.stats.frames_examined()),
            new.stats.candidates_examined,
            old.stats.candidates_examined,
            pct(new.stats.candidates_examined, old.stats.candidates_examined),
            new.stats.frames_pruned_by_bound(),
            new.stats.children_pruned_by_parent_bound,
            // Skipped pivots are a subset of the prepared (processed) ones.
            new.stats.pivots_skipped,
            new.stats.pivots_processed,
        );
        // The acquaintance-aware floor's own contribution (the m = 12
        // row is the regime it targets: temporally tight, socially
        // spread — see ROADMAP).
        let no_acq = no_acq_stats.expect("the ablation grid includes `no acqf`");
        println!(
            "          acq floor: frames {:>5} vs {:>5} without (-{:.1}%)  pivots skipped {} vs {}",
            new.stats.frames_examined(),
            no_acq.frames_examined(),
            pct(new.stats.frames_examined(), no_acq.frames_examined()),
            new.stats.pivots_skipped,
            no_acq.pivots_skipped,
        );
        // The candidate-space reduction layer's own contribution: all-on
        // vs the PR-4 all-on baseline (peel + matching bound + shared
        // prep off, everything older on).
        let pr4 = stgq_core::solve_stgq_on(
            &fg,
            &ds.calendars,
            &query,
            &SelectConfig::default().without_candidate_reduction(),
        );
        println!(
            "          reduction: frames {:>5} vs {:>5} pr4 (-{:.1}%)  peeled {}  refused {}  match-pruned {}",
            new.stats.frames_examined(),
            pr4.stats.frames_examined(),
            pct(new.stats.frames_examined(), pr4.stats.frames_examined()),
            new.stats.peeled_candidates,
            new.stats.pivots_refused_by_core,
            new.stats.frames_pruned_by_match,
        );
    }

    // The sparse-fringe scenario: the fixpoint peel's home turf (the
    // fans cascade away; see `stgq_datagen::scenario::sparse_fringe`).
    println!("\nsparse_fringe scenario (default vs PR-4 all-on baseline):");
    let (ds, q) = stgq_bench::figures::sparse_fringe_dataset(days);
    let pr4_cfg = SelectConfig::default().without_candidate_reduction();
    for (p, k, m) in [(5usize, 1usize, 4usize), (6, 2, 4)] {
        let query = StgqQuery::new(p, 2, k, m).expect("valid");
        let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
        let new = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &SelectConfig::default());
        let pr4 = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &pr4_cfg);
        assert_eq!(
            new.solution.as_ref().map(|s| s.total_distance),
            pr4.solution.as_ref().map(|s| s.total_distance),
            "the reduction layer must not move the optimum"
        );
        let mut new_ns = u128::MAX;
        let mut pr4_ns = u128::MAX;
        for _ in 0..12 {
            let t0 = Instant::now();
            let _ = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &SelectConfig::default());
            new_ns = new_ns.min(t0.elapsed().as_nanos());
            let t0 = Instant::now();
            let _ = stgq_core::solve_stgq_on(&fg, &ds.calendars, &query, &pr4_cfg);
            pr4_ns = pr4_ns.min(t0.elapsed().as_nanos());
        }
        println!(
            "p={p} k={k} m={m:>2}: frames {:>5} (pr4 {:>5}, -{:.1}%)  exams {:>6} (pr4 {:>6}, -{:.1}%)  {:>9} ns (pr4 {:>9} ns, {:.2}x)",
            new.stats.frames_examined(),
            pr4.stats.frames_examined(),
            pct(new.stats.frames_examined(), pr4.stats.frames_examined()),
            new.stats.candidates_examined,
            pr4.stats.candidates_examined,
            pct(new.stats.candidates_examined, pr4.stats.candidates_examined),
            new_ns,
            pr4_ns,
            pr4_ns as f64 / new_ns as f64,
        );
        println!(
            "          peeled {} over {} pivots ({} refused by core, {} skipped)  match-pruned {}",
            new.stats.peeled_candidates,
            new.stats.pivots_processed,
            new.stats.pivots_refused_by_core,
            new.stats.pivots_skipped,
            new.stats.frames_pruned_by_match,
        );
    }

    // Prep-vs-descend wall-clock split (the incremental-prep release's
    // scoreboard): fig1f m = 4 — where prep used to dominate — then the
    // calendar-churn scenario, the regime the run cache is built for
    // (dense long runs, per-person jitter).
    let (ds, q) = stgq_dataset(days);
    prep_split(
        "fig1f m=4 p=5",
        &ds,
        q,
        &StgqQuery::new(5, 2, 2, 4).expect("valid"),
    );
    let (churn, cq) = calendar_churn_dataset(days);
    prep_split(
        "calendar_churn m=4 p=5",
        &churn,
        cq,
        &StgqQuery::new(5, 2, 2, 4).expect("valid"),
    );
    prep_split(
        "calendar_churn m=8 p=5",
        &churn,
        cq,
        &StgqQuery::new(5, 2, 2, 8).expect("valid"),
    );

    // Scale probe: stand up a 10^5-member metropolis world and walk the
    // sharded-snapshot lifecycle, with a peak-RSS column so memory cost
    // at scale is visible next to the wall clock (VmHWM is monotone:
    // each row shows the high-water mark up to that stage).
    println!("\nmetropolis 100k scale probe:");
    println!(
        "    {:<34} {:>10} {:>14}",
        "stage", "wall ms", "peak RSS MiB"
    );
    let stage = |what: &str, t0: Instant| {
        println!(
            "    {what:<34} {:>10.1} {:>14.1}",
            t0.elapsed().as_secs_f64() * 1e3,
            peak_rss_mib()
        );
    };
    let t0 = Instant::now();
    let cfg = stgq_datagen::metropolis::MetropolisConfig::with_members(100_000);
    let (mds, communities) = stgq_datagen::metropolis::metropolis_with_communities(&cfg, 1, 7);
    stage("generate (graph + calendars)", t0);

    let t0 = Instant::now();
    let mut planner = stgq_service::Planner::with_exec_config(
        mds.grid.horizon(),
        stgq_exec::ExecConfig {
            workers: 1,
            shards: cfg.shards,
            ..stgq_exec::ExecConfig::default()
        },
    );
    for v in 0..mds.graph.node_count() {
        planner.add_person(format!("p{v}"));
    }
    for e in mds.graph.edges() {
        planner.connect(e.a, e.b, e.weight).expect("valid edge");
    }
    for (v, cal) in mds.calendars.iter().enumerate() {
        planner
            .set_calendar(NodeId(v as u32), cal.clone())
            .expect("valid person");
    }
    stage("load mutable world", t0);

    let community = communities
        .iter()
        .find(|c| c.len() >= 2)
        .expect("metropolis communities");
    let init = NodeId(community[0]);
    let sq = stgq_core::SgqQuery::new(3, 1, 1).expect("valid");
    let t0 = Instant::now();
    let _ = planner
        .plan_sgq(init, &sq, stgq_service::Engine::Exact)
        .expect("known initiator");
    stage("first query (full publish)", t0);

    let t0 = Instant::now();
    planner
        .connect(NodeId(community[0]), NodeId(community[1]), 4)
        .expect("community pair");
    let _ = planner
        .plan_sgq(init, &sq, stgq_service::Engine::Exact)
        .expect("known initiator");
    stage("delta + query (1-shard republish)", t0);
    let em = planner.exec_metrics();
    println!(
        "    snapshot shards: {} rebuilt / {} reused over {} publishes",
        em.snapshot_shards_rebuilt, em.snapshot_shards_reused, em.snapshot_publishes
    );
}
