use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A small column-aligned results table with CSV export.
///
/// This is what the `figures` binary prints and what EXPERIMENTS.md quotes;
/// keeping it dependency-free beats pulling a table crate for four methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Title line (figure id + fixed parameters).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells; each must match `headers.len()`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// CSV rendering (headers + rows; commas in cells are not escaped —
    /// cells are numeric or simple identifiers by construction).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to other results, creating the directory.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(
                f,
                "{:>w$}{}",
                h,
                if i + 1 == ncols { "\n" } else { "  " },
                w = widths[i]
            )?;
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(
                    f,
                    "{:>w$}{}",
                    cell,
                    if i + 1 == ncols { "\n" } else { "  " },
                    w = widths[i]
                )?;
            }
        }
        Ok(())
    }
}

/// Format nanoseconds human-readably (ns/µs/ms/s) for table cells.
pub fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut t = Table::new("demo", &["p", "time"]);
        t.push_row(vec!["3".into(), "12ns".into()]);
        t.push_row(vec!["10".into(), "1.5us".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.to_csv(), "p,time\n3,12ns\n10,1.5us\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn ns_formatting_bands() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(15_000), "15.0us");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("stgq_bench_table_test");
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["1".into()]);
        t.write_csv(&dir, "demo.csv").unwrap();
        let back = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(back, "x\n1\n");
    }
}
