//! Benchmark harness reproducing every figure of the paper's evaluation.
//!
//! Figure 1 of the paper has eight panels, (a)–(h); each maps to one
//! module in [`figures`] that regenerates the same series on the synthetic
//! datasets (see DESIGN.md for the experiment index and EXPERIMENTS.md for
//! measured-vs-paper results):
//!
//! | module | sweeps | series |
//! |--------|--------|--------|
//! | [`figures::fig1a`] | p | SGSelect vs exhaustive baseline vs IP |
//! | [`figures::fig1b`] | s | SGSelect vs baseline |
//! | [`figures::fig1c`] | k | SGSelect vs baseline |
//! | [`figures::fig1d`] | network size | SGSelect vs baseline vs IP |
//! | [`figures::fig1e`] | m | STGSelect vs sequential baseline |
//! | [`figures::fig1f`] | schedule length | STGSelect vs sequential baseline |
//! | [`figures::fig1g`] | p | STGArrange k vs PCArrange k_h |
//! | [`figures::fig1h`] | p | STGArrange vs PCArrange total distance |
//! | [`figures::ablation`] | pruning toggles | per-strategy runtime/frames |
//! | [`figures::ext_parallel`] | threads | parallel vs sequential engines |
//! | [`figures::ext_quality`] | p | exact vs greedy vs local search vs anytime |
//! | [`figures::ext_kplex`] | k | max k-plex B&B + maximal enumeration |
//!
//! Run `cargo run -p stgq-bench --release --bin figures -- all` for the
//! full sweeps (add `--fast` for a quick smoke pass); `cargo bench`
//! exercises reduced grids under Criterion.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod figures;
pub mod serving;
mod table;
mod timing;

pub use table::Table;
pub use timing::{median_nanos, time_nanos};

/// Deterministic seed shared by all figures (the paper's presentation date).
pub const SEED: u64 = 20_110_829;

/// Sweep resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Few points, single timing rep — for CI, Criterion and smoke runs.
    Fast,
    /// The paper's full grids with median-of-3 timings.
    Paper,
}

impl Scale {
    /// Timing repetitions per measurement.
    pub fn reps(self) -> usize {
        match self {
            Scale::Fast => 1,
            Scale::Paper => 3,
        }
    }
}
