use std::time::Instant;

/// Time one call, returning `(result, elapsed nanoseconds)`.
pub fn time_nanos<R>(f: impl FnOnce() -> R) -> (R, u128) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_nanos())
}

/// Median elapsed nanoseconds over `reps` calls (the paper reports average
/// running time; median is the robust small-sample analog). The last
/// call's result is returned so callers can report the solution found.
pub fn median_nanos<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, u128) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (r, ns) = time_nanos(&mut f);
        times.push(ns);
        last = Some(r);
    }
    times.sort_unstable();
    (last.expect("reps >= 1"), times[times.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_positive_elapsed() {
        let (r, ns) = time_nanos(|| (0..1000).sum::<u64>());
        assert_eq!(r, 499_500);
        assert!(ns > 0);
    }

    #[test]
    fn median_is_middle_element() {
        let mut calls = 0;
        let (_, med) = median_nanos(5, || {
            calls += 1;
        });
        assert_eq!(calls, 5);
        assert!(med > 0);
    }

    #[test]
    #[should_panic]
    fn zero_reps_panics() {
        let _ = median_nanos(0, || ());
    }
}
