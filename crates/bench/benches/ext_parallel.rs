//! Criterion version of the thread-scaling extension experiment.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::{sgq_dataset, stgq_dataset};
use stgq_core::{solve_sgq_parallel, solve_stgq_parallel, SelectConfig, SgqQuery, StgqQuery};

fn bench(c: &mut Criterion) {
    let (graph, q) = sgq_dataset();
    let (ds, tq) = stgq_dataset(7);
    let cfg = SelectConfig::default();
    let sgq = SgqQuery::new(8, 2, 2).unwrap();
    let stgq = StgqQuery::new(6, 2, 2, 8).unwrap();

    let mut g = c.benchmark_group("ext_parallel");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("sgq/t{threads}"), |b| {
            b.iter(|| solve_sgq_parallel(&graph, q, &sgq, &cfg, threads).unwrap())
        });
        g.bench_function(format!("stgq/t{threads}"), |b| {
            b.iter(|| {
                solve_stgq_parallel(&ds.graph, tq, &ds.calendars, &stgq, &cfg, threads).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
