//! Criterion version of Figure 1(f): STGQ engines across schedule lengths.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::stgq_dataset;
use stgq_core::{solve_stgq, solve_stgq_sequential, SelectConfig, SgqEngine, StgqQuery};

fn bench(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let query = StgqQuery::new(4, 2, 2, 4).unwrap();

    let mut g = c.benchmark_group("fig1f");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for days in [1usize, 3] {
        let (ds, q) = stgq_dataset(days);
        g.bench_function(format!("stgselect/d{days}"), |b| {
            b.iter(|| solve_stgq(&ds.graph, q, &ds.calendars, &query, &cfg).unwrap())
        });
        g.bench_function(format!("baseline/d{days}"), |b| {
            b.iter(|| {
                solve_stgq_sequential(
                    &ds.graph,
                    q,
                    &ds.calendars,
                    &query,
                    &cfg,
                    SgqEngine::SgSelect,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
