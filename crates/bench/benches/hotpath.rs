//! Hot-path microbenchmarks gating the word-parallel / zero-allocation
//! search-core work: the optimized SGSelect/STGSelect against the scalar
//! **reference engines** (`stgq_core::reference` — the pre-optimization
//! implementations kept verbatim) on identical instances.
//!
//! All STGQ cases are fig1f-style (194-person community dataset,
//! multi-day half-hour schedules, schedule-length sweep). Two gates:
//! the **counter-dominated** family — long activities (`m = 12` /
//! `m = 16`, pivot intervals of 23–31 offsets), where the reference
//! burns its budget on per-slot availability bitmaps and Lemma-5 counter
//! branches — must stay ≥ 2× over the matching `reference-stgselect/*`
//! median, and the `m = 4` cases (general search core) must stay ≥ 2.2×
//! since the search-reduction release (incumbent seeding +
//! promise-ordered pivots + pivot bound skipping collapse most of their
//! pivot loops; observed ~4.8–6.3×). CI's `bench_gate` step bounds
//! *regression* against the committed `BENCH_core.json` medians (>25%
//! beyond the machine-speed scale fails); the ratio floors themselves
//! are re-checked whenever the baseline is refreshed, not on every run.
//!
//! Both sides run on a pre-extracted feasible graph (`solve_*_on`):
//! radius extraction is time-independent and hoisted by every real
//! sweep, so including it would only dilute what this suite measures.
//!
//! Run with `CRITERION_OUT_JSON="$PWD/BENCH_core.json" cargo bench -p
//! stgq-bench --bench hotpath` **from the repo root** to refresh the
//! committed perf baseline (the path must be absolute: cargo sets the
//! bench binary's cwd to the package root, not the workspace root).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::{
    calendar_churn_dataset, plaza_dataset, sgq_dataset, sparse_fringe_dataset, stgq_dataset,
};
use stgq_core::reference::{solve_sgq_reference_on, solve_stgq_reference_on};
use stgq_core::{solve_sgq_on, solve_stgq_on, SelectConfig, SgqQuery, StgqQuery};
use stgq_graph::{CandidateTopology, FeasibleGraph, FeasibleView, ShardedGraph};

fn bench_stgselect(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // (label, p, k, m): m = 12/16 are the gated counter-dominated cases,
    // m = 4 the paper's fig1f defaults.
    let cases: [(&str, usize, usize, usize); 3] = [
        ("m4-p4", 4, 2, 4),
        ("m12-p5", 5, 2, 12),
        ("m16-p5", 5, 2, 16),
    ];

    for days in [3usize, 7] {
        let (ds, q) = stgq_dataset(days);
        for (label, p, k, m) in cases {
            let query = StgqQuery::new(p, 2, k, m).expect("valid");
            let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
            let new_out = solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
            let ref_out = solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg);
            assert_eq!(
                new_out.solution.as_ref().map(|s| s.total_distance),
                ref_out.solution.as_ref().map(|s| s.total_distance),
                "engines must agree before being compared (days={days}, {label})"
            );

            g.bench_function(format!("stgselect/fig1f-days{days}-{label}"), |b| {
                b.iter(|| solve_stgq_on(&fg, &ds.calendars, &query, &cfg))
            });
            g.bench_function(
                format!("reference-stgselect/fig1f-days{days}-{label}"),
                |b| b.iter(|| solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg)),
            );
        }
    }
    g.finish();
}

/// The sparse-fringe scenario: community core + low-degree fans, where
/// the fixpoint (p, k)-core peel actually removes candidates (the dense
/// fig1f cases keep the suite honest on graphs where it cannot). Gated
/// like the fig1f entries — the committed `BENCH_core.json` medians
/// protect the new scenario from day one.
fn bench_sparse_fringe(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let cases: [(&str, usize, usize, usize); 2] = [("m4-p5k1", 5, 1, 4), ("m4-p6k2", 6, 2, 4)];

    for days in [3usize, 7] {
        let (ds, q) = sparse_fringe_dataset(days);
        for (label, p, k, m) in cases {
            let query = StgqQuery::new(p, 2, k, m).expect("valid");
            let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
            let new_out = solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
            let ref_out = solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg);
            assert_eq!(
                new_out.solution.as_ref().map(|s| s.total_distance),
                ref_out.solution.as_ref().map(|s| s.total_distance),
                "engines must agree before being compared (days={days}, {label})"
            );

            g.bench_function(format!("stgselect/sparse-days{days}-{label}"), |b| {
                b.iter(|| solve_stgq_on(&fg, &ds.calendars, &query, &cfg))
            });
            g.bench_function(
                format!("reference-stgselect/sparse-days{days}-{label}"),
                |b| b.iter(|| solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg)),
            );
        }
    }
    g.finish();
}

/// The calendar-churn scenario: dense, long-run calendars with
/// per-person jitter — the workload where pivot preparation dominates
/// the solve, and the regime the incremental run cache
/// (`SelectConfig::incremental_prep`) is built for: covered pivots
/// cost interval arithmetic instead of a word scan per person. Gated
/// like the fig1f entries once its medians land in `BENCH_core.json`.
fn bench_calendar_churn(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let cases: [(&str, usize, usize, usize); 2] = [("m4-p4", 4, 2, 4), ("m8-p5", 5, 2, 8)];

    for days in [3usize, 7] {
        let (ds, q) = calendar_churn_dataset(days);
        for (label, p, k, m) in cases {
            let query = StgqQuery::new(p, 2, k, m).expect("valid");
            let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
            let new_out = solve_stgq_on(&fg, &ds.calendars, &query, &cfg);
            let ref_out = solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg);
            assert_eq!(
                new_out.solution.as_ref().map(|s| s.total_distance),
                ref_out.solution.as_ref().map(|s| s.total_distance),
                "engines must agree before being compared (days={days}, {label})"
            );

            g.bench_function(format!("stgselect/churn-days{days}-{label}"), |b| {
                b.iter(|| solve_stgq_on(&fg, &ds.calendars, &query, &cfg))
            });
            g.bench_function(
                format!("reference-stgselect/churn-days{days}-{label}"),
                |b| b.iter(|| solve_stgq_reference_on(&fg, &ds.calendars, &query, &cfg)),
            );
        }
    }
    g.finish();
}

/// Per-query candidate-space extraction: the zero-copy `FeasibleView`
/// against materializing a `FeasibleGraph` from the same sharded CSR
/// snapshot. Two worlds bracket the regime: fig1f (a ~120-candidate
/// community set, the common case) and plaza (a 1200-candidate
/// world-sized set with heavy rows — extraction-bound serving). Both
/// sides are asserted index-identical before timing, and the plaza pair
/// enforces the acceptance floor — the view must extract at least 2×
/// faster than the materialized path (observed ~5–7×).
fn bench_extract(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let (fig_ds, fig_q) = stgq_dataset(7);
    let (plaza_ds, plaza_q) = plaza_dataset(1);
    let cases = [
        ("fig1f-days7", &fig_ds, fig_q, 2usize),
        ("plaza", &plaza_ds, plaza_q, 1usize),
    ];
    for (label, ds, q, s) in cases {
        let sharded = ShardedGraph::from_flat(&ds.graph, 16);
        let fg = FeasibleGraph::extract_from(&sharded, q, s);
        let view = FeasibleView::extract(&sharded, q, s);
        assert_eq!(CandidateTopology::len(&view), fg.len());
        assert_eq!(view.candidate_order(), fg.candidate_order());
        for i in 0..fg.len() as u32 {
            assert_eq!(view.adj_words(i), fg.adj_words(i), "{label} row {i}");
        }

        g.bench_function(format!("{label}-view"), |b| {
            b.iter(|| FeasibleView::extract(&sharded, q, s))
        });
        g.bench_function(format!("{label}-materialized"), |b| {
            b.iter(|| FeasibleGraph::extract_from(&sharded, q, s))
        });

        if label == "plaza" {
            // The acceptance floor, measured as a median over repeats so
            // a single descheduled iteration cannot fail the run.
            let median = |f: &dyn Fn() -> u128| {
                let mut xs: Vec<u128> = (0..21).map(|_| f()).collect();
                xs.sort_unstable();
                xs[xs.len() / 2]
            };
            let view_ns = median(&|| {
                let t0 = std::time::Instant::now();
                let _ = FeasibleView::extract(&sharded, q, s);
                t0.elapsed().as_nanos()
            });
            let mat_ns = median(&|| {
                let t0 = std::time::Instant::now();
                let _ = FeasibleGraph::extract_from(&sharded, q, s);
                t0.elapsed().as_nanos()
            });
            println!(
                "extract/plaza: view {view_ns} ns vs materialized {mat_ns} ns ({:.2}x)",
                mat_ns as f64 / view_ns as f64
            );
            assert!(
                view_ns * 2 <= mat_ns,
                "zero-copy extraction must be >= 2x the materialized path \
                 (view {view_ns} ns, materialized {mat_ns} ns)"
            );
        }
    }
    g.finish();
}

fn bench_sgselect(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let (graph, q) = sgq_dataset();
    for p in [5usize, 7] {
        let query = SgqQuery::new(p, 2, 2).expect("valid");
        let fg = FeasibleGraph::extract(&graph, q, query.s());
        let new_out = solve_sgq_on(&fg, &query, &cfg, None);
        let ref_out = solve_sgq_reference_on(&fg, &query, &cfg, None);
        assert_eq!(
            new_out.solution.as_ref().map(|s| s.total_distance),
            ref_out.solution.as_ref().map(|s| s.total_distance),
            "engines must agree before being compared (p = {p})"
        );

        g.bench_function(format!("sgselect/p{p}"), |b| {
            b.iter(|| solve_sgq_on(&fg, &query, &cfg, None))
        });
        g.bench_function(format!("reference-sgselect/p{p}"), |b| {
            b.iter(|| solve_sgq_reference_on(&fg, &query, &cfg, None))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_stgselect,
    bench_sparse_fringe,
    bench_calendar_churn,
    bench_sgselect,
    bench_extract
);
criterion_main!(benches);
