//! Criterion version of Figure 1(h): the full quality sweep at one
//! activity size (distance comparison; `cargo run --bin figures`
//! regenerates the figure's distance table).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::stgq_dataset;
use stgq_core::{pc_arrange, stg_arrange, SelectConfig};
use stgq_graph::Dist;

fn bench(c: &mut Criterion) {
    let (ds, q) = stgq_dataset(7);
    let cfg = SelectConfig::default();

    let mut g = c.benchmark_group("fig1h");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("quality_pair/p5", |b| {
        b.iter(|| {
            let pc = pc_arrange(&ds.graph, q, &ds.calendars, 5, 1, 4).unwrap();
            let reference = pc.as_ref().map_or(Dist::MAX, |r| r.total_distance);
            stg_arrange(&ds.graph, q, &ds.calendars, 5, 1, 4, reference, &cfg).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
