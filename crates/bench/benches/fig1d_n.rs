//! Criterion version of Figure 1(d): SGQ engines across network sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::coauthor_dataset;
use stgq_core::{solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};

fn bench(c: &mut Criterion) {
    let cfg = SelectConfig::default();
    let query = SgqQuery::new(5, 1, 3).unwrap();

    let mut g = c.benchmark_group("fig1d");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [194usize, 800] {
        let (graph, q) = coauthor_dataset(n);
        g.bench_function(format!("sgselect/n{n}"), |b| {
            b.iter(|| solve_sgq(&graph, q, &query, &cfg).unwrap())
        });
        g.bench_function(format!("baseline/n{n}"), |b| {
            b.iter(|| solve_sgq_exhaustive(&graph, q, &query).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
