//! Cluster scale-out: the same 64-query hot workload drained through
//! 1 / 2 / 4 in-process cluster nodes (one executor worker each), on the
//! fig1f workload and the coarse-distance scenario.
//!
//! Entries:
//!
//! * `reference-sequential-cluster*/batch64` — the workload through the
//!   single-planner sequential loop (frozen code path): the
//!   machine-speed anchor `bench_gate` scales the budget by.
//! * `cluster*/nodes1|2|4` — the workload through
//!   `Cluster::plan_batch`: replicate (no-op when caught up) → scatter
//!   by initiator shard over N node executors → gather. Nodes run with
//!   **one worker and no result cache**, so "N nodes" means N solving
//!   pipelines and the measured work is solving, not replay.
//!
//! On a multi-core host the 4-node configuration is expected to reach
//! **≥ 1.8× queries/sec over 1 node** (the scatter runs node batches on
//! concurrent threads); on a single-core host the configurations tie —
//! the committed `BENCH_cluster.json` baseline records whichever this
//! machine produced, and CI gates regressions against it via the same
//! `bench_gate` mechanism as the other suites. The bench prints the
//! observed 4-vs-1 ratio so the scale-out claim is visible in the run
//! log either way.
//!
//! Run with `CRITERION_OUT_JSON="$PWD/BENCH_cluster.json" cargo bench -p
//! stgq-bench --bench scaleout` **from the repo root** to refresh the
//! committed baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::cluster::{cluster_from_dataset, cluster_objectives};
use stgq_bench::serving::{hot_workload, planner_from_dataset, sequential_objectives};
use stgq_bench::SEED;
use stgq_datagen::scenario::{coarse_distance_analog, real_analog_194};
use stgq_datagen::Dataset;

fn bench_workload(c: &mut Criterion, label: &str, ds: &Dataset) {
    let workload = hot_workload(ds, 4, 2, 2, 4);
    let planner = planner_from_dataset(ds, 1);
    let expected = sequential_objectives(&planner, &workload);

    let clusters: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&nodes| (nodes, cluster_from_dataset(ds, nodes, 1)))
        .collect();
    // Every node count must agree with the single-planner oracle before
    // being compared (and the first plan_batch attaches the replicas, so
    // the timed iterations measure serving, not first sync).
    for (nodes, cluster) in &clusters {
        assert_eq!(
            cluster_objectives(cluster, &workload),
            expected,
            "{nodes}-node cluster must match the sequential loop ({label})"
        );
    }

    let mut g = c.benchmark_group("scaleout");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    g.bench_function(
        format!("reference-sequential-cluster{label}/batch64"),
        |b| b.iter(|| sequential_objectives(&planner, &workload)),
    );
    for (nodes, cluster) in &clusters {
        g.bench_function(format!("cluster{label}/nodes{nodes}"), |b| {
            b.iter(|| cluster.plan_batch(&workload).len())
        });
    }
    g.finish();

    // Make the scale-out ratio visible in the run log (the acceptance
    // claim is ≥1.8x at 4 nodes on a multi-core host; single-core hosts
    // tie by construction).
    let time = |nodes_wanted: usize| {
        let cluster = clusters
            .iter()
            .find(|(n, _)| *n == nodes_wanted)
            .map(|(_, c)| c)
            .expect("benched node counts");
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            let _ = cluster.plan_batch(&workload);
        }
        t0.elapsed().as_secs_f64()
    };
    let (one, four) = (time(1), time(4));
    println!(
        "scaleout{label}: 4-node vs 1-node queries/sec ratio {:.2}x \
         (host parallelism {})",
        one / four,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
}

fn bench_scaleout(c: &mut Criterion) {
    let fig1f = real_analog_194(3, SEED);
    bench_workload(c, "", &fig1f);

    let coarse = coarse_distance_analog(3, SEED, 3);
    bench_workload(c, "-coarse", &coarse);
}

criterion_group!(benches, bench_scaleout);
criterion_main!(benches);
