//! Serving-layer throughput: the `stgq-exec` batched path against the
//! sequential per-query planner loop, on the fig1f workload (194-person
//! community dataset, 3 days of half-hour slots) and on the
//! coarse-distance scenario (few distinct hop values, so the
//! availability-ordering tie-break actually fires).
//!
//! Each benchmark processes the same 64-query hot workload
//! (`stgq_bench::serving::hot_workload`: 24 distinct queries, zipf-ish
//! repetition), so medians compare directly as queries/sec:
//!
//! * `reference-sequential/*` — 64 single-query `plan_sgq`/`plan_stgq`
//!   calls (the pre-executor serving loop). These entries double as the
//!   machine-speed anchors for `bench_gate` (their code path is the
//!   stable planner fast path).
//! * `exec-batch*/1|8|64` — the workload drained through
//!   `Planner::plan_batch` in chunks of 1, 8 and 64. Batch 1 measures
//!   pure executor overhead (admission + ticket per query); batch 64 is
//!   where shard batching and request collapsing win: the acceptance
//!   floor is **≥ 1.5× queries/sec over the sequential loop at batch
//!   64**, which holds even on one core because identical hot queries
//!   are solved once per batch (on multi-core hosts the worker pool
//!   stacks a further speedup on top).
//!
//! Run with `CRITERION_OUT_JSON="$PWD/BENCH_exec.json" cargo bench -p
//! stgq-bench --bench throughput` **from the repo root** to refresh the
//! committed serving baseline (CI gates regressions against it).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::serving::{
    batch_objectives, hot_workload, planner_from_dataset, sequential_objectives,
};
use stgq_bench::SEED;
use stgq_datagen::scenario::{coarse_distance_analog, real_analog_194};
use stgq_datagen::Dataset;
use stgq_service::{BatchQuery, Planner};

fn bench_workload(c: &mut Criterion, label: &str, ds: &Dataset) {
    let planner = planner_from_dataset(ds, 0);
    // A second planner with the default (enabled) result cache: the
    // `exec-batch-cached` entry measures the replay path the serving
    // deployment actually runs with, without letting it contaminate the
    // solve-throughput entries or the machine-speed anchor.
    let cached_planner = {
        let mut p = stgq_service::Planner::with_exec_config(
            ds.grid.horizon(),
            stgq_exec::ExecConfig::default(),
        );
        for v in 0..ds.graph.node_count() {
            p.add_person(format!("p{v}"));
        }
        for e in ds.graph.edges() {
            p.connect(e.a, e.b, e.weight).unwrap();
        }
        for (v, cal) in ds.calendars.iter().enumerate() {
            p.set_calendar(stgq_graph::NodeId(v as u32), cal.clone())
                .unwrap();
        }
        p
    };
    let workload = hot_workload(ds, 4, 2, 2, 4);

    // The two paths must agree before being compared (and the batched
    // path must agree with itself across chunkings).
    let sequential = sequential_objectives(&planner, &workload);
    for chunk in [1usize, 8, 64] {
        let batched: Vec<Option<u64>> = workload
            .chunks(chunk)
            .flat_map(|queries| batch_objectives(&planner, queries))
            .collect();
        assert_eq!(
            sequential, batched,
            "batched objectives must match sequential ({label}, chunk {chunk})"
        );
    }

    let mut g = c.benchmark_group("throughput");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    g.bench_function(format!("reference-sequential{label}/batch64"), |b| {
        b.iter(|| sequential_objectives(&planner, &workload))
    });
    for chunk in [1usize, 8, 64] {
        g.bench_function(format!("exec-batch{label}/{chunk}"), |b| {
            b.iter(|| {
                workload
                    .chunks(chunk)
                    .map(|queries: &[BatchQuery]| planner.plan_batch(queries).len())
                    .sum::<usize>()
            })
        });
    }
    // The version-stamped result cache's replay path (identical repeat
    // workload, unchanged world — every entry a hit after warmup).
    assert_eq!(
        batch_objectives(&cached_planner, &workload),
        sequential,
        "cached replay must answer identically ({label})"
    );
    g.bench_function(format!("exec-batch-cached{label}/64"), |b| {
        b.iter(|| {
            workload
                .chunks(64)
                .map(|queries: &[BatchQuery]| cached_planner.plan_batch(queries).len())
                .sum::<usize>()
        })
    });
    g.finish();
    drop::<Planner>(planner);
}

fn bench_throughput(c: &mut Criterion) {
    let (fig1f, _) = (real_analog_194(3, SEED), ());
    bench_workload(c, "", &fig1f);

    let coarse = coarse_distance_analog(3, SEED, 3);
    bench_workload(c, "-coarse", &coarse);
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
