//! Criterion version of the heuristic-quality extension experiment:
//! exact vs greedy vs local search on the same SGQ instances.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::sgq_dataset;
use stgq_core::heuristics::{greedy_sgq, local_search_sgq};
use stgq_core::{solve_sgq, SelectConfig, SgqQuery};

fn bench(c: &mut Criterion) {
    let (graph, q) = sgq_dataset();
    let cfg = SelectConfig::default();

    let mut g = c.benchmark_group("ext_heuristics");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for p in [5usize, 8] {
        let query = SgqQuery::new(p, 2, 2).unwrap();
        g.bench_function(format!("exact/p{p}"), |b| {
            b.iter(|| solve_sgq(&graph, q, &query, &cfg).unwrap())
        });
        g.bench_function(format!("greedy/p{p}"), |b| {
            b.iter(|| greedy_sgq(&graph, q, &query, 3).unwrap())
        });
        g.bench_function(format!("local_search/p{p}"), |b| {
            b.iter(|| local_search_sgq(&graph, q, &query, 3, 4).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
