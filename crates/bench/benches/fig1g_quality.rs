//! Criterion version of Figure 1(g): PCArrange vs STGArrange runtimes
//! (the figure itself compares k values; `cargo run --bin figures`
//! regenerates those).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::stgq_dataset;
use stgq_core::{pc_arrange, stg_arrange, SelectConfig};
use stgq_graph::Dist;

fn bench(c: &mut Criterion) {
    let (ds, q) = stgq_dataset(7);
    let cfg = SelectConfig::default();

    let mut g = c.benchmark_group("fig1g");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("pcarrange/p4", |b| {
        b.iter(|| pc_arrange(&ds.graph, q, &ds.calendars, 4, 1, 4).unwrap())
    });
    g.bench_function("stgarrange/p4", |b| {
        b.iter(|| stg_arrange(&ds.graph, q, &ds.calendars, 4, 1, 4, Dist::MAX, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
