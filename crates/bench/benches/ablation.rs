//! Criterion version of the pruning ablation: SGSelect and STGSelect with
//! each pruning strategy disabled in turn, plus the search-reduction
//! ablation (incumbent seeding, promise-ordered pivots, availability
//! ordering, pivot-arena pooling) with each piece disabled in turn.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::{sgq_dataset, stgq_dataset};
use stgq_core::{solve_sgq, solve_stgq, SelectConfig, SgqQuery, StgqQuery};

fn bench(c: &mut Criterion) {
    let (graph, q) = sgq_dataset();
    let (ds, tq) = stgq_dataset(7);
    let sgq = SgqQuery::new(5, 2, 2).unwrap();
    let stgq = StgqQuery::new(4, 2, 2, 6).unwrap();

    let variants: [(&str, SelectConfig); 3] = [
        ("full", SelectConfig::PAPER_EXAMPLE),
        (
            "no_distance",
            SelectConfig::PAPER_EXAMPLE.with_distance_pruning(false),
        ),
        ("none", SelectConfig::NO_PRUNING),
    ];

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (name, cfg) in variants {
        g.bench_function(format!("sgselect/{name}"), |b| {
            b.iter(|| solve_sgq(&graph, q, &sgq, &cfg).unwrap())
        });
        g.bench_function(format!("stgselect/{name}"), |b| {
            b.iter(|| solve_stgq(&ds.graph, tq, &ds.calendars, &stgq, &cfg).unwrap())
        });
    }

    // Search-reduction ablation on the headline fig1f m = 4 config: each
    // PR-2 piece disabled in turn against the full engine and the PR-1
    // baseline (everything off).
    let reduction: [(&str, SelectConfig); 6] = [
        ("full", SelectConfig::default()),
        ("no_seed", SelectConfig::default().with_seed_restarts(0)),
        (
            "no_pivot_order",
            SelectConfig::default().with_pivot_promise_order(false),
        ),
        (
            "no_avail_order",
            SelectConfig::default().with_availability_ordering(false),
        ),
        (
            "no_arena_pool",
            SelectConfig::default().with_pool_pivot_buffers(false),
        ),
        ("pr1_baseline", SelectConfig::NO_SEARCH_REDUCTION),
    ];
    let headline = StgqQuery::new(4, 2, 2, 4).unwrap();
    for (name, cfg) in reduction {
        g.bench_function(format!("stgselect-reduction/{name}"), |b| {
            b.iter(|| solve_stgq(&ds.graph, tq, &ds.calendars, &headline, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
