//! Million-member-regime serving: sustained queries/sec under a write
//! stream, shard-scoped snapshot publication + delta-scoped cache
//! invalidation against the full-invalidation ablation.
//!
//! The world is `metropolis` at 10^5 members (shard-aligned power-law
//! communities — the regime the tentpole targets). One measured *round*
//! is one write confined to a single community followed by 16 repeat
//! queries from 16 different communities in distinct shards — the
//! serving steady state where writes trickle in but almost every query
//! hits an untouched region:
//!
//! * `reference-sequential-scale/batch64` — the 64-query hot workload
//!   through the frozen sequential planner loop on the same dataset:
//!   the machine-speed anchor `bench_gate` scales the budget by.
//! * `serving-sharded/round` — the round on a 16-shard executor: the
//!   write dirties one sub-snapshot, the republish rebuilds only it
//!   (the other 31 carry over by `Arc`), and 15 of the 16 queries
//!   replay from the shard-stamped result cache.
//! * `serving-flood/round` — the identical round with `shards: 1`:
//!   every write floods the one shard, so each republish rebuilds the
//!   full 10^5-member snapshot and every cached answer goes stale.
//!
//! The acceptance floor is **≥ 1.5× sustained queries/sec for the
//! sharded configuration over the flood ablation** — asserted at the
//! end of the run (it holds on one core by construction: the ablation
//! pays a full-world rebuild plus 16 re-solves per round, the sharded
//! path one community-sized rebuild plus one). Both configurations are
//! checked answer-identical before any timing.
//!
//! Run with `CRITERION_OUT_JSON="$PWD/BENCH_scale.json" cargo bench -p
//! stgq-bench --bench scale` **from the repo root** to refresh the
//! committed baseline (CI gates regressions against it).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::plaza_dataset;
use stgq_bench::serving::{hot_workload, planner_from_dataset, sequential_objectives};
use stgq_bench::SEED;
use stgq_core::SgqQuery;
use stgq_datagen::metropolis::{metropolis_with_communities, MetropolisConfig};
use stgq_datagen::Dataset;
use stgq_exec::{ExecConfig, ExtractionMode};
use stgq_graph::{FeasibleGraph, FeasibleView, NodeId, ShardedGraph};
use stgq_service::{Engine, Planner};

const MEMBERS: usize = 100_000;
const QUERIES_PER_ROUND: usize = 16;

fn load_planner(ds: &Dataset, shards: usize, extraction: ExtractionMode) -> Planner {
    let mut p = Planner::with_exec_config(
        ds.grid.horizon(),
        ExecConfig {
            workers: 1,
            shards,
            extraction,
            ..ExecConfig::default()
        },
    );
    for v in 0..ds.graph.node_count() {
        p.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        p.connect(e.a, e.b, e.weight).expect("valid edge");
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        p.set_calendar(NodeId(v as u32), cal.clone())
            .expect("valid person");
    }
    p
}

/// One serving round: a community-confined write, then the repeat
/// queries. Returns the summed objectives (the agreement check compares
/// them across configurations).
fn round(
    planner: &mut Planner,
    edge: (NodeId, NodeId),
    weight: u64,
    initiators: &[NodeId],
    q: &SgqQuery,
) -> u64 {
    planner
        .connect(edge.0, edge.1, weight)
        .expect("community pair");
    let mut acc = 0u64;
    for &init in initiators {
        acc += planner
            .plan_sgq(init, q, Engine::Exact)
            .expect("known initiator")
            .solution
            .map_or(0, |s| s.total_distance);
    }
    acc
}

fn bench_scale(c: &mut Criterion) {
    let cfg = MetropolisConfig::with_members(MEMBERS);
    let (ds, communities) = metropolis_with_communities(&cfg, 1, SEED);

    // One initiator from each of 16 communities in distinct shards; the
    // write stream re-weights an edge inside the first one's community.
    let mut initiators = Vec::new();
    let mut shards_taken = vec![false; cfg.shards];
    let mut write_edge = None;
    for community in &communities {
        let shard = community[0] as usize % cfg.shards;
        if community.len() < 2 || shards_taken[shard] {
            continue;
        }
        shards_taken[shard] = true;
        initiators.push(NodeId(community[0]));
        write_edge.get_or_insert((NodeId(community[0]), NodeId(community[1])));
        if initiators.len() == QUERIES_PER_ROUND {
            break;
        }
    }
    assert_eq!(
        initiators.len(),
        QUERIES_PER_ROUND,
        "16 shards, 16 communities"
    );
    let write_edge = write_edge.expect("at least one community of two");
    let q = SgqQuery::new(3, 1, 1).expect("valid");

    let mut sharded = load_planner(&ds, cfg.shards, ExtractionMode::View);
    let mut flood = load_planner(&ds, 1, ExtractionMode::View);
    // Answer identity across both write states before any timing.
    for weight in [3u64, 4] {
        assert_eq!(
            round(&mut sharded, write_edge, weight, &initiators, &q),
            round(&mut flood, write_edge, weight, &initiators, &q),
            "sharded and flood configurations must agree"
        );
    }

    let anchor = planner_from_dataset(&ds, 1);
    let workload = hot_workload(&ds, 3, 1, 1, 2);

    let mut g = c.benchmark_group("scale");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    g.bench_function("reference-sequential-scale/batch64", |b| {
        b.iter(|| sequential_objectives(&anchor, &workload))
    });
    let mut weight = 3u64;
    g.bench_function("serving-sharded/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut sharded, write_edge, weight, &initiators, &q)
        })
    });
    let mut weight = 3u64;
    g.bench_function("serving-flood/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut flood, write_edge, weight, &initiators, &q)
        })
    });
    g.finish();

    // The acceptance floor, visible in the run log and enforced here:
    // sustained queries/sec under the write stream, sharded vs flood.
    let time = |planner: &mut Planner| {
        let t0 = std::time::Instant::now();
        let mut weight = 3u64;
        for _ in 0..5 {
            weight = 7 - weight;
            let _ = round(planner, write_edge, weight, &initiators, &q);
        }
        t0.elapsed().as_secs_f64()
    };
    let (sharded_s, flood_s) = (time(&mut sharded), time(&mut flood));
    let ratio = flood_s / sharded_s;
    println!(
        "scale: sharded {:.0} q/s vs flood {:.0} q/s under the write stream ({ratio:.2}x)",
        5.0 * QUERIES_PER_ROUND as f64 / sharded_s,
        5.0 * QUERIES_PER_ROUND as f64 / flood_s,
    );
    assert!(
        ratio >= 1.5,
        "delta-scoped serving must sustain >= 1.5x the flood ablation (got {ratio:.2}x)"
    );
}

/// The extraction-bound serving round: the plaza world (one hub
/// acquainted with all 1200 people, heavy CSR rows, shallow descent)
/// under a write stream, zero-copy view extraction against the
/// materialized ablation. One round is one crowd-edge re-weight — which
/// stales the hub's stamped cache entries — followed by one hub query,
/// so every measured query pays a full world-sized extraction:
///
/// * `serving-plaza-view/round` — the default `ExtractionMode::View`.
/// * `serving-plaza-materialized/round` — the pre-zero-copy path kept
///   as the A/B oracle.
///
/// Both planners are checked answer-identical across write states
/// before any timing, and the run enforces the acceptance floor: the
/// view must extract at least 2× faster than the materialized path on
/// the same sharded snapshot (median over repeats; observed ~5×), with
/// the word counters confirming each planner took its intended path.
fn bench_plaza_serving(c: &mut Criterion) {
    let (ds, hub) = plaza_dataset(1);
    const SHARDS: usize = 16;
    let q = SgqQuery::new(4, 1, 2).expect("valid");
    let write_edge = (hub, NodeId(600));
    let initiators = [hub];

    let mut view = load_planner(&ds, SHARDS, ExtractionMode::View);
    let mut mat = load_planner(&ds, SHARDS, ExtractionMode::Materialized);
    for weight in [3u64, 4] {
        assert_eq!(
            round(&mut view, write_edge, weight, &initiators, &q),
            round(&mut mat, write_edge, weight, &initiators, &q),
            "view and materialized serving must agree"
        );
    }

    let mut g = c.benchmark_group("scale");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let mut weight = 3u64;
    g.bench_function("serving-plaza-view/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut view, write_edge, weight, &initiators, &q)
        })
    });
    let mut weight = 3u64;
    g.bench_function("serving-plaza-materialized/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut mat, write_edge, weight, &initiators, &q)
        })
    });
    g.finish();

    // Each planner must have paid extraction on its own path only.
    let (vm, mm) = (view.exec_metrics(), mat.exec_metrics());
    assert!(vm.extract_words_borrowed > 0 && vm.extract_words_copied == 0);
    assert!(mm.extract_words_copied > 0 && mm.extract_words_borrowed == 0);

    // The acceptance floor on the extraction itself, over the same
    // sharded snapshot both planners serve from (median over repeats).
    let sharded = ShardedGraph::from_flat(&ds.graph, SHARDS);
    let median = |f: &dyn Fn() -> u128| {
        let mut xs: Vec<u128> = (0..21).map(|_| f()).collect();
        xs.sort_unstable();
        xs[xs.len() / 2]
    };
    let view_ns = median(&|| {
        let t0 = std::time::Instant::now();
        let _ = FeasibleView::extract(&sharded, hub, q.s());
        t0.elapsed().as_nanos()
    });
    let mat_ns = median(&|| {
        let t0 = std::time::Instant::now();
        let _ = FeasibleGraph::extract_from(&sharded, hub, q.s());
        t0.elapsed().as_nanos()
    });
    println!(
        "plaza: feasible extraction view {view_ns} ns vs materialized {mat_ns} ns ({:.2}x)",
        mat_ns as f64 / view_ns as f64
    );
    assert!(
        view_ns * 2 <= mat_ns,
        "zero-copy extraction must be >= 2x the materialized path on the plaza round \
         (view {view_ns} ns, materialized {mat_ns} ns)"
    );
}

criterion_group!(benches, bench_scale, bench_plaza_serving);
criterion_main!(benches);
