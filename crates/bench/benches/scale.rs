//! Million-member-regime serving: sustained queries/sec under a write
//! stream, shard-scoped snapshot publication + delta-scoped cache
//! invalidation against the full-invalidation ablation.
//!
//! The world is `metropolis` at 10^5 members (shard-aligned power-law
//! communities — the regime the tentpole targets). One measured *round*
//! is one write confined to a single community followed by 16 repeat
//! queries from 16 different communities in distinct shards — the
//! serving steady state where writes trickle in but almost every query
//! hits an untouched region:
//!
//! * `reference-sequential-scale/batch64` — the 64-query hot workload
//!   through the frozen sequential planner loop on the same dataset:
//!   the machine-speed anchor `bench_gate` scales the budget by.
//! * `serving-sharded/round` — the round on a 16-shard executor: the
//!   write dirties one sub-snapshot, the republish rebuilds only it
//!   (the other 31 carry over by `Arc`), and 15 of the 16 queries
//!   replay from the shard-stamped result cache.
//! * `serving-flood/round` — the identical round with `shards: 1`:
//!   every write floods the one shard, so each republish rebuilds the
//!   full 10^5-member snapshot and every cached answer goes stale.
//!
//! The acceptance floor is **≥ 1.5× sustained queries/sec for the
//! sharded configuration over the flood ablation** — asserted at the
//! end of the run (it holds on one core by construction: the ablation
//! pays a full-world rebuild plus 16 re-solves per round, the sharded
//! path one community-sized rebuild plus one). Both configurations are
//! checked answer-identical before any timing.
//!
//! Run with `CRITERION_OUT_JSON="$PWD/BENCH_scale.json" cargo bench -p
//! stgq-bench --bench scale` **from the repo root** to refresh the
//! committed baseline (CI gates regressions against it).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::serving::{hot_workload, planner_from_dataset, sequential_objectives};
use stgq_bench::SEED;
use stgq_core::SgqQuery;
use stgq_datagen::metropolis::{metropolis_with_communities, MetropolisConfig};
use stgq_datagen::Dataset;
use stgq_exec::ExecConfig;
use stgq_graph::NodeId;
use stgq_service::{Engine, Planner};

const MEMBERS: usize = 100_000;
const QUERIES_PER_ROUND: usize = 16;

fn load_planner(ds: &Dataset, shards: usize) -> Planner {
    let mut p = Planner::with_exec_config(
        ds.grid.horizon(),
        ExecConfig {
            workers: 1,
            shards,
            ..ExecConfig::default()
        },
    );
    for v in 0..ds.graph.node_count() {
        p.add_person(format!("p{v}"));
    }
    for e in ds.graph.edges() {
        p.connect(e.a, e.b, e.weight).expect("valid edge");
    }
    for (v, cal) in ds.calendars.iter().enumerate() {
        p.set_calendar(NodeId(v as u32), cal.clone())
            .expect("valid person");
    }
    p
}

/// One serving round: a community-confined write, then the repeat
/// queries. Returns the summed objectives (the agreement check compares
/// them across configurations).
fn round(
    planner: &mut Planner,
    edge: (NodeId, NodeId),
    weight: u64,
    initiators: &[NodeId],
    q: &SgqQuery,
) -> u64 {
    planner
        .connect(edge.0, edge.1, weight)
        .expect("community pair");
    let mut acc = 0u64;
    for &init in initiators {
        acc += planner
            .plan_sgq(init, q, Engine::Exact)
            .expect("known initiator")
            .solution
            .map_or(0, |s| s.total_distance);
    }
    acc
}

fn bench_scale(c: &mut Criterion) {
    let cfg = MetropolisConfig::with_members(MEMBERS);
    let (ds, communities) = metropolis_with_communities(&cfg, 1, SEED);

    // One initiator from each of 16 communities in distinct shards; the
    // write stream re-weights an edge inside the first one's community.
    let mut initiators = Vec::new();
    let mut shards_taken = vec![false; cfg.shards];
    let mut write_edge = None;
    for community in &communities {
        let shard = community[0] as usize % cfg.shards;
        if community.len() < 2 || shards_taken[shard] {
            continue;
        }
        shards_taken[shard] = true;
        initiators.push(NodeId(community[0]));
        write_edge.get_or_insert((NodeId(community[0]), NodeId(community[1])));
        if initiators.len() == QUERIES_PER_ROUND {
            break;
        }
    }
    assert_eq!(
        initiators.len(),
        QUERIES_PER_ROUND,
        "16 shards, 16 communities"
    );
    let write_edge = write_edge.expect("at least one community of two");
    let q = SgqQuery::new(3, 1, 1).expect("valid");

    let mut sharded = load_planner(&ds, cfg.shards);
    let mut flood = load_planner(&ds, 1);
    // Answer identity across both write states before any timing.
    for weight in [3u64, 4] {
        assert_eq!(
            round(&mut sharded, write_edge, weight, &initiators, &q),
            round(&mut flood, write_edge, weight, &initiators, &q),
            "sharded and flood configurations must agree"
        );
    }

    let anchor = planner_from_dataset(&ds, 1);
    let workload = hot_workload(&ds, 3, 1, 1, 2);

    let mut g = c.benchmark_group("scale");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    g.bench_function("reference-sequential-scale/batch64", |b| {
        b.iter(|| sequential_objectives(&anchor, &workload))
    });
    let mut weight = 3u64;
    g.bench_function("serving-sharded/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut sharded, write_edge, weight, &initiators, &q)
        })
    });
    let mut weight = 3u64;
    g.bench_function("serving-flood/round", |b| {
        b.iter(|| {
            weight = 7 - weight;
            round(&mut flood, write_edge, weight, &initiators, &q)
        })
    });
    g.finish();

    // The acceptance floor, visible in the run log and enforced here:
    // sustained queries/sec under the write stream, sharded vs flood.
    let time = |planner: &mut Planner| {
        let t0 = std::time::Instant::now();
        let mut weight = 3u64;
        for _ in 0..5 {
            weight = 7 - weight;
            let _ = round(planner, write_edge, weight, &initiators, &q);
        }
        t0.elapsed().as_secs_f64()
    };
    let (sharded_s, flood_s) = (time(&mut sharded), time(&mut flood));
    let ratio = flood_s / sharded_s;
    println!(
        "scale: sharded {:.0} q/s vs flood {:.0} q/s under the write stream ({ratio:.2}x)",
        5.0 * QUERIES_PER_ROUND as f64 / sharded_s,
        5.0 * QUERIES_PER_ROUND as f64 / flood_s,
    );
    assert!(
        ratio >= 1.5,
        "delta-scoped serving must sustain >= 1.5x the flood ablation (got {ratio:.2}x)"
    );
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
