//! Criterion version of Figure 1(a): SGQ engines across activity sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::sgq_dataset;
use stgq_core::{solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};
use stgq_ip::{solve_sgq_ip, IpStyle};
use stgq_mip::MipOptions;

fn bench(c: &mut Criterion) {
    let (graph, q) = sgq_dataset();
    let cfg = SelectConfig::default();
    let ip_opts = MipOptions::default();

    let mut g = c.benchmark_group("fig1a");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for p in [3usize, 5, 7] {
        let query = SgqQuery::new(p, 1, 2).unwrap();
        g.bench_function(format!("sgselect/p{p}"), |b| {
            b.iter(|| solve_sgq(&graph, q, &query, &cfg).unwrap())
        });
        g.bench_function(format!("baseline/p{p}"), |b| {
            b.iter(|| solve_sgq_exhaustive(&graph, q, &query).unwrap())
        });
    }
    let query = SgqQuery::new(5, 1, 2).unwrap();
    g.bench_function("ip/p5", |b| {
        b.iter(|| solve_sgq_ip(&graph, q, &query, IpStyle::Compact, &ip_opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
