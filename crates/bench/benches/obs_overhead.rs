//! Instrumentation-overhead gate: proves the compiled-in stage-timing
//! instrumentation (`PivotArena::record_timings`, two clock reads per
//! descended pivot — the only observability cost inside a solve) stays
//! within the ≤ 2% budget the observability layer promises.
//!
//! Unlike the other suites this one measures a **ratio**, not a latency.
//! Both arms run on the **same arena** — identical buffers, identical
//! heap placement, identical code — with only `record_timings` toggled
//! between them, so allocator-placement effects (the dominant
//! systematic noise at the ≤ 2% scale this suite resolves) cancel by
//! construction. Rounds interleave the arms, alternating which runs
//! first so slow drift (frequency scaling, a noisy neighbour) cancels
//! instead of biasing one arm, and the reported statistic is the
//! `on / off` ratio of the two arms' lower envelopes: preemption only
//! ever inflates a round, while the instrumentation cost is paid in
//! every round, so the minimum isolates the true shift.
//!
//! A ratio is machine-independent, so the committed `BENCH_obs.json`
//! baseline is exact parity (`1000.0` per entry — the ratio scaled by
//! 1000 to fit the shim's `median_ns` field) and CI gates it with
//! `bench_gate BENCH_obs.json <fresh> 1.02`: a candidate entry above
//! `1020` means recording costs more than 2% and fails the build.
//!
//! Cases mirror the gated hot-path scenarios: the paper's fig1f `m = 4`
//! defaults (general search core) and the calendar-churn workload
//! (pivot preparation dominated — the regime with the most timed spans
//! per unit of work, hence the worst case for the coarse clocks).
//!
//! Refresh with `CRITERION_OUT_JSON="$PWD/BENCH_obs.json" cargo bench
//! -p stgq-bench --bench obs_overhead` from the repo root (the baseline
//! should stay all-`1000.0`: it encodes "no overhead beyond the gate
//! budget", not a measured machine artifact).

use std::hint::black_box;
use std::time::Instant;

use stgq_bench::figures::{calendar_churn_dataset, stgq_dataset};
use stgq_core::{solve_stgq_pooled, PivotArena, SelectConfig, StgqQuery};
use stgq_graph::FeasibleGraph;
use stgq_schedule::Calendar;

/// Interleaved rounds per case (each round times both arms once).
const ROUNDS: usize = 61;
/// Wall-clock budget per arm per round, in nanoseconds (~2 ms keeps a
/// full case near 250 ms while giving each arm thousands of solves).
const ARM_BUDGET_NS: f64 = 2.0e6;

/// Time `iters` back-to-back solves on `arena` with `record_timings`
/// set to `recording`, returning ns/solve.
fn arm_ns(
    fg: &FeasibleGraph,
    cals: &[Calendar],
    query: &StgqQuery,
    cfg: &SelectConfig,
    arena: &mut PivotArena,
    recording: bool,
    iters: u64,
) -> f64 {
    arena.record_timings = recording;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(solve_stgq_pooled(fg, cals, query, cfg, arena));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// On/off ratio for one case, scaled by 1000 for the JSON field.
fn overhead_milli_ratio(fg: &FeasibleGraph, cals: &[Calendar], query: &StgqQuery) -> f64 {
    let cfg = SelectConfig::default();
    let mut arena = PivotArena::new();

    // Both arms must agree before being compared — recording never
    // changes the answer, only the clock reads around the pivot loop.
    arena.record_timings = true;
    let on_out = solve_stgq_pooled(fg, cals, query, &cfg, &mut arena);
    arena.record_timings = false;
    let off_out = solve_stgq_pooled(fg, cals, query, &cfg, &mut arena);
    assert_eq!(
        on_out, off_out,
        "recording mode must not change the solve outcome"
    );

    // Calibrate the per-round iteration count on the cheaper (off) arm.
    let probe = arm_ns(fg, cals, query, &cfg, &mut arena, false, 16);
    let iters = ((ARM_BUDGET_NS / probe.max(1.0)) as u64).clamp(8, 1_000_000);
    // Warm past cold caches (both flag states) before the measured rounds.
    arm_ns(fg, cals, query, &cfg, &mut arena, true, iters / 2 + 1);
    arm_ns(fg, cals, query, &cfg, &mut arena, false, iters / 2 + 1);

    let mut on_samples = Vec::with_capacity(ROUNDS);
    let mut off_samples = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate arm order so drift cancels across rounds.
        if round % 2 == 0 {
            on_samples.push(arm_ns(fg, cals, query, &cfg, &mut arena, true, iters));
            off_samples.push(arm_ns(fg, cals, query, &cfg, &mut arena, false, iters));
        } else {
            off_samples.push(arm_ns(fg, cals, query, &cfg, &mut arena, false, iters));
            on_samples.push(arm_ns(fg, cals, query, &cfg, &mut arena, true, iters));
        }
    }
    let floor = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    floor(&on_samples) / floor(&off_samples) * 1000.0
}

/// `(id, dataset, initiator, (p, s, k, m))`.
type Case<'a> = (
    &'a str,
    &'a stgq_datagen::Dataset,
    stgq_graph::NodeId,
    (usize, usize, usize, usize),
);

fn main() {
    // fig1f m=4 is the general search core; churn m=4/m=8 maximize
    // prepared pivots per solve.
    let (fig1f, fig1f_q) = stgq_dataset(3);
    let (churn, churn_q) = calendar_churn_dataset(3);
    let cases: [Case<'_>; 3] = [
        ("obs-overhead/fig1f-m4", &fig1f, fig1f_q, (4, 2, 2, 4)),
        ("obs-overhead/churn-m4", &churn, churn_q, (4, 2, 2, 4)),
        ("obs-overhead/churn-m8", &churn, churn_q, (5, 2, 2, 8)),
    ];

    let mut results: Vec<(String, f64)> = Vec::new();
    for (id, ds, q, (p, s, k, m)) in cases {
        let query = StgqQuery::new(p, s, k, m).expect("valid query");
        let fg = FeasibleGraph::extract(&ds.graph, q, query.s());
        let milli_ratio = overhead_milli_ratio(&fg, &ds.calendars, &query);
        println!(
            "{id:<48} median {milli_ratio:>12.1} ns (on/off ratio {:.4}, budget 1.02)",
            milli_ratio / 1000.0
        );
        results.push((id.to_string(), milli_ratio));
    }

    // Same export format as the criterion shim so `bench_gate` and the
    // perf-trajectory tooling parse this suite like any other.
    if let Ok(path) = std::env::var("CRITERION_OUT_JSON") {
        if !path.is_empty() {
            let mut out = String::from("[\n");
            for (i, (id, milli_ratio)) in results.iter().enumerate() {
                out.push_str(&format!(
                    "  {{\"id\": \"{id}\", \"median_ns\": {milli_ratio:.1}, \"iters\": {}}}{}\n",
                    ROUNDS,
                    if i + 1 < results.len() { "," } else { "" }
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("obs_overhead: cannot write {path}: {e}");
            }
        }
    }
}
