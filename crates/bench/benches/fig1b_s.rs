//! Criterion version of Figure 1(b): SGQ engines across social radii.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stgq_bench::figures::sgq_dataset;
use stgq_core::{solve_sgq, solve_sgq_exhaustive, SelectConfig, SgqQuery};

fn bench(c: &mut Criterion) {
    let (graph, q) = sgq_dataset();
    let cfg = SelectConfig::default();

    let mut g = c.benchmark_group("fig1b");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for s in [1usize, 2] {
        let query = SgqQuery::new(4, s, 2).unwrap();
        g.bench_function(format!("sgselect/s{s}"), |b| {
            b.iter(|| solve_sgq(&graph, q, &query, &cfg).unwrap())
        });
        g.bench_function(format!("baseline/s{s}"), |b| {
            b.iter(|| solve_sgq_exhaustive(&graph, q, &query).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
