use crate::{AdjacencySource, Dist, NodeId, SocialGraph};

/// Compute the *s-edge minimum distances* from `source` (Definition 1).
///
/// `d^i_{v,q} = min_{u ∈ N_v} { d^{i-1}_{v,q}, d^{i-1}_{u,q} + c_{u,v} }`
/// with `d^0_{q,q} = 0` and `d^0_{v,q} = ∞` otherwise. This is `s` rounds of
/// Bellman–Ford relaxation; the result for vertex `v` is the total distance
/// of the minimum-distance path from `q` to `v` that uses **at most `s`
/// edges**, or `None` if no such path exists.
///
/// The distinction matters (§3.2.1): the globally shortest path may use more
/// than `s` edges, and the minimum-*edge* path may not have minimum
/// distance, so neither plain Dijkstra nor plain BFS is correct here.
pub fn bounded_distances(graph: &SocialGraph, source: NodeId, s: usize) -> Vec<Option<Dist>> {
    bounded_distances_from(graph, source, s)
}

/// As [`bounded_distances`], over any [`AdjacencySource`] — the sharded
/// snapshot path runs Definition 1 directly on per-shard CSR segments.
pub fn bounded_distances_from<A: AdjacencySource + ?Sized>(
    adj: &A,
    source: NodeId,
    s: usize,
) -> Vec<Option<Dist>> {
    let mut out = Vec::new();
    bounded_distances_into(adj, source, s, &mut out);
    out
}

/// As [`bounded_distances`], reusing `out` as scratch to avoid allocation in
/// hot sweeps (the STGQ baseline recomputes distances for many windows).
pub fn bounded_distances_into<A: AdjacencySource + ?Sized>(
    graph: &A,
    source: NodeId,
    s: usize,
    out: &mut Vec<Option<Dist>>,
) {
    let n = graph.node_count();
    out.clear();
    out.resize(n, None);
    out[source.index()] = Some(0);

    // `frontier` holds vertices whose distance improved in the last round
    // together with that round's value; only their neighbors can improve
    // in this round. Relaxation MUST read the round-start snapshot, not
    // `out` (which this round may already have improved): otherwise a
    // single round could chain two relaxations and admit a path with more
    // than `s` edges — exactly the subtlety Definition 1 exists for.
    let mut frontier: Vec<(u32, Dist)> = vec![(source.0, 0)];
    let mut next: Vec<u32> = Vec::new();
    let mut in_next = vec![false; n];

    for _ in 0..s {
        if frontier.is_empty() {
            break;
        }
        for &(u, du) in &frontier {
            let (nbs, ws) = graph.row_of(NodeId(u));
            for (&v, &w) in nbs.iter().zip(ws) {
                let cand = du + w;
                if out[v as usize].is_none_or(|cur| cand < cur) {
                    out[v as usize] = Some(cand);
                    if !in_next[v as usize] {
                        in_next[v as usize] = true;
                        next.push(v);
                    }
                }
            }
        }
        frontier.clear();
        for &v in &next {
            in_next[v as usize] = false;
            frontier.push((v, out[v as usize].expect("just improved")));
        }
        next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// Line graph 0-1-2-3 with weights 1 each; plus a heavy shortcut 0-3 (10).
    fn line_with_shortcut() -> SocialGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 10).unwrap();
        b.build()
    }

    #[test]
    fn zero_rounds_reach_only_source() {
        let g = line_with_shortcut();
        let d = bounded_distances(&g, NodeId(0), 0);
        assert_eq!(d, vec![Some(0), None, None, None]);
    }

    #[test]
    fn edge_budget_limits_path_choice() {
        let g = line_with_shortcut();
        // With one edge, v3 only reachable via the heavy shortcut.
        let d1 = bounded_distances(&g, NodeId(0), 1);
        assert_eq!(d1[3], Some(10));
        // With three edges the light path 0-1-2-3 wins.
        let d3 = bounded_distances(&g, NodeId(0), 3);
        assert_eq!(d3[3], Some(3));
        // Two edges: neither the 3-edge light path nor anything better than
        // the shortcut exists.
        let d2 = bounded_distances(&g, NodeId(0), 2);
        assert_eq!(d2[3], Some(10));
    }

    #[test]
    fn same_round_chaining_is_rejected() {
        // Regression for a bug proptest found: 0-1-2-3 (unit weights) plus
        // the heavy 2-hop pair 1-3 (4) and tail 3-4 (1). With s = 3 the
        // only ≤3-edge route to v4 is 0-1-3-4 = 6; a buggy in-place
        // relaxation chains 0-1-2-3-4 = 4 within three rounds.
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 4).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1).unwrap();
        let g = b.build();
        let d3 = bounded_distances(&g, NodeId(0), 3);
        assert_eq!(d3[4], Some(6));
        let d4 = bounded_distances(&g, NodeId(0), 4);
        assert_eq!(d4[4], Some(4));
    }

    #[test]
    fn unreachable_stays_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        let g = b.build();
        let d = bounded_distances(&g, NodeId(0), 10);
        assert_eq!(d[2], None);
    }

    #[test]
    fn extra_rounds_never_hurt() {
        let g = line_with_shortcut();
        let d3 = bounded_distances(&g, NodeId(0), 3);
        let d9 = bounded_distances(&g, NodeId(0), 9);
        assert_eq!(d3, d9);
    }

    #[test]
    fn reuse_buffer_matches_fresh() {
        let g = line_with_shortcut();
        let mut buf = vec![Some(99); 1];
        bounded_distances_into(&g, NodeId(1), 2, &mut buf);
        assert_eq!(buf, bounded_distances(&g, NodeId(1), 2));
    }

    /// Brute-force reference: minimum distance over all simple-ish walks with
    /// at most `s` edges (walks suffice: repeating vertices never helps with
    /// positive weights, but we enumerate walks for simplicity on tiny graphs).
    fn brute_force(g: &SocialGraph, q: NodeId, s: usize) -> Vec<Option<Dist>> {
        let n = g.node_count();
        // dp[i][v] = min distance using exactly <= i edges
        let mut dp = vec![vec![None; n]; s + 1];
        dp[0][q.index()] = Some(0);
        for i in 1..=s {
            for v in 0..n {
                dp[i][v] = dp[i - 1][v];
                for (u, w) in g.neighbors_weighted(NodeId(v as u32)) {
                    if let Some(du) = dp[i - 1][u.index()] {
                        let cand = du + w;
                        if dp[i][v].is_none_or(|cur| cand < cur) {
                            dp[i][v] = Some(cand);
                        }
                    }
                }
            }
        }
        dp[s].clone()
    }

    fn arb_graph() -> impl Strategy<Value = SocialGraph> {
        (2usize..9).prop_flat_map(|n| {
            let max_edges = n * (n - 1) / 2;
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..20), 0..=max_edges)
                .prop_map(move |edges| {
                    let mut b = GraphBuilder::new(n);
                    for (u, v, w) in edges {
                        if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
                            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
                        }
                    }
                    b.build()
                })
        })
    }

    proptest! {
        /// The frontier-based DP agrees with the textbook full-relaxation DP.
        #[test]
        fn matches_reference_dp(g in arb_graph(), s in 0usize..6) {
            let got = bounded_distances(&g, NodeId(0), s);
            let want = brute_force(&g, NodeId(0), s);
            prop_assert_eq!(got, want);
        }

        /// Monotonicity: allowing more edges never increases any distance.
        #[test]
        fn monotone_in_edge_budget(g in arb_graph(), s in 0usize..5) {
            let d_s = bounded_distances(&g, NodeId(0), s);
            let d_s1 = bounded_distances(&g, NodeId(0), s + 1);
            for (a, b) in d_s.iter().zip(&d_s1) {
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!(y <= x),
                    (Some(_), None) => prop_assert!(false, "reachability lost"),
                    _ => {}
                }
            }
        }
    }
}
