//! Shard-partitioned adjacency: CSR [`GraphSegment`]s assembled into a
//! [`ShardedGraph`] view.
//!
//! A world of `n` people is partitioned into `S` shards by residue:
//! vertex `v` lives in shard `v % S` at local row `v / S` — the same
//! modulus the execution layer uses to route initiators, so a mutation
//! touching one person dirties exactly the shard that also keys their
//! cached work. Each shard's adjacency is an independent immutable CSR
//! [`GraphSegment`] (neighbor ids stay **global**); a snapshot
//! publication that only touched shard `s` rebuilds that one segment and
//! `Arc`-reuses the other `S − 1`.
//!
//! The traversal kernels ([`bounded_distances_from`] and
//! [`FeasibleGraph::extract_from`]) are generic over [`AdjacencySource`],
//! so they read a flat [`SocialGraph`] or a [`ShardedGraph`] with the
//! same code — per vertex, one slice pair either way.
//!
//! [`bounded_distances_from`]: crate::bounded_distances_from
//! [`FeasibleGraph::extract_from`]: crate::FeasibleGraph::extract_from

use std::sync::Arc;

use crate::{Dist, NodeId, SocialGraph};

/// Anything the traversal kernels can walk: a vertex count plus, per
/// vertex, parallel `(neighbors, weights)` row slices sorted by neighbor
/// id. Implemented by the flat [`SocialGraph`] and by [`ShardedGraph`].
pub trait AdjacencySource {
    /// Number of vertices (`0..node_count()` are valid ids).
    fn node_count(&self) -> usize;
    /// The sorted neighbor ids and parallel weights of `v`.
    fn row_of(&self, v: NodeId) -> (&[u32], &[Dist]);
}

impl AdjacencySource for SocialGraph {
    #[inline]
    fn node_count(&self) -> usize {
        SocialGraph::node_count(self)
    }

    #[inline]
    fn row_of(&self, v: NodeId) -> (&[u32], &[Dist]) {
        self.row_slices(v)
    }
}

/// One shard's immutable CSR adjacency: the rows of every vertex `v`
/// with `v % S == shard`, in ascending `v`, with **global** neighbor ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSegment {
    /// Row boundaries: `offsets[r]..offsets[r + 1]` indexes row `r`.
    offsets: Vec<u32>,
    /// Global neighbor ids, sorted within each row.
    neighbors: Vec<u32>,
    /// Edge weights parallel to `neighbors`.
    weights: Vec<Dist>,
}

impl GraphSegment {
    /// Build a segment from per-row `(global neighbor, weight)` lists,
    /// one inner iterator per local row, each sorted by neighbor id.
    pub fn build<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = (u32, Dist)>,
    {
        let mut offsets = vec![0u32];
        let mut neighbors = Vec::new();
        let mut weights = Vec::new();
        for row in rows {
            for (nb, w) in row {
                neighbors.push(nb);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        GraphSegment {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of local rows (vertices homed in this shard).
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total row entries (each undirected edge appears once per endpoint
    /// row, possibly in different segments).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.neighbors.len()
    }

    /// The sorted `(neighbors, weights)` slices of local row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[Dist]) {
        let (s, e) = (self.offsets[r] as usize, self.offsets[r + 1] as usize);
        (&self.neighbors[s..e], &self.weights[s..e])
    }
}

/// The assembled cross-shard adjacency view: `S` segment `Arc`s plus the
/// total vertex count. Cloning is `S` refcount bumps — this is how an
/// epoch snapshot exposes one coherent graph without owning (or ever
/// copying) the per-shard storage.
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    segments: Vec<Arc<GraphSegment>>,
    node_count: usize,
}

impl ShardedGraph {
    /// Assemble a view from per-shard segments. The vertex count is the
    /// sum of local rows: residue classes partition `0..n`, so the row
    /// counts add back up to `n` exactly.
    ///
    /// # Panics
    /// Panics if `segments` is empty or the per-shard row counts are
    /// inconsistent with a residue partition (shard `s` of `n` vertices
    /// holds `⌈(n − s) / S⌉` rows).
    pub fn new(segments: Vec<Arc<GraphSegment>>) -> Self {
        assert!(!segments.is_empty(), "at least one shard required");
        let shards = segments.len();
        let node_count: usize = segments.iter().map(|seg| seg.rows()).sum();
        for (s, seg) in segments.iter().enumerate() {
            let expect = node_count.saturating_sub(s).div_ceil(shards);
            assert_eq!(
                seg.rows(),
                expect,
                "shard {s} of {shards} over {node_count} vertices must hold {expect} rows"
            );
        }
        ShardedGraph {
            segments,
            node_count,
        }
    }

    /// Partition a flat graph into `shards` segments (used by tests and
    /// the full-sync/compat publication path).
    pub fn from_flat(graph: &SocialGraph, shards: usize) -> Self {
        let shards = shards.max(1);
        let n = graph.node_count();
        let segments = (0..shards)
            .map(|s| {
                Arc::new(GraphSegment::build((s..n).step_by(shards).map(|v| {
                    let (nbs, ws) = graph.row_slices(NodeId(v as u32));
                    nbs.iter().copied().zip(ws.iter().copied())
                })))
            })
            .collect();
        ShardedGraph::new(segments)
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.segments.len()
    }

    /// The shard homing vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        v.index() % self.segments.len()
    }

    /// One shard's segment.
    #[inline]
    pub fn segment(&self, shard: usize) -> &Arc<GraphSegment> {
        &self.segments[shard]
    }
}

impl AdjacencySource for ShardedGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn row_of(&self, v: NodeId) -> (&[u32], &[Dist]) {
        let shards = self.segments.len();
        self.segments[v.index() % shards].row(v.index() / shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounded_distances, bounded_distances_from, FeasibleGraph, GraphBuilder};

    /// Tiny deterministic generator (splitmix64) — the graph crate has no
    /// rand dev-dependency and doesn't need one for shape tests.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_graph(seed: u64, n: usize, edge_pct: u64) -> SocialGraph {
        let mut state = seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0xE703_7ED1_A0B4_28DB;
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if mix(&mut state) % 100 < edge_pct {
                    let w = 1 + mix(&mut state) % 39;
                    b.add_edge(NodeId(u as u32), NodeId(v as u32), w).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn sharded_rows_match_the_flat_graph() {
        for shards in [1, 2, 3, 7, 16, 64] {
            let g = random_graph(9 + shards as u64, 37, 20);
            let sg = ShardedGraph::from_flat(&g, shards);
            assert_eq!(sg.node_count(), g.node_count());
            assert_eq!(sg.shard_count(), shards);
            for v in 0..g.node_count() as u32 {
                assert_eq!(sg.row_of(NodeId(v)), g.row_of(NodeId(v)), "vertex {v}");
            }
        }
    }

    #[test]
    fn traversals_agree_between_flat_and_sharded() {
        for seed in 0..10u64 {
            let g = random_graph(seed, 24, 25);
            let sg = ShardedGraph::from_flat(&g, 5);
            for s in 1..4usize {
                for q in [0u32, 7, 23] {
                    let flat = bounded_distances(&g, NodeId(q), s);
                    let sharded = bounded_distances_from(&sg, NodeId(q), s);
                    assert_eq!(flat, sharded, "seed {seed} s {s} q {q}");
                    let fg_flat = FeasibleGraph::extract(&g, NodeId(q), s);
                    let fg_sharded = FeasibleGraph::extract_from(&sg, NodeId(q), s);
                    assert_eq!(fg_flat.len(), fg_sharded.len());
                    for c in 0..fg_flat.len() as u32 {
                        assert_eq!(fg_flat.origin(c), fg_sharded.origin(c));
                        assert_eq!(fg_flat.dist(c), fg_sharded.dist(c));
                        assert_eq!(fg_flat.neighbors(c), fg_sharded.neighbors(c));
                        for &nb in fg_flat.neighbors(c) {
                            assert_eq!(fg_flat.edge_weight(c, nb), fg_sharded.edge_weight(c, nb));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uneven_tail_shards_carry_the_right_rows() {
        // 10 vertices over 4 shards: shards 0/1 hold 3 rows, 2/3 hold 2.
        let g = random_graph(3, 10, 40);
        let sg = ShardedGraph::from_flat(&g, 4);
        assert_eq!(sg.segment(0).rows(), 3);
        assert_eq!(sg.segment(1).rows(), 3);
        assert_eq!(sg.segment(2).rows(), 2);
        assert_eq!(sg.segment(3).rows(), 2);
        assert_eq!(sg.shard_of(NodeId(9)), 1);
        assert_eq!(sg.row_of(NodeId(9)), g.row_of(NodeId(9)));
    }
}
