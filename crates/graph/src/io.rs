//! Serialization of graphs as a plain edge-list document.
//!
//! [`SocialGraph`] itself is CSR-packed and not directly serialized; instead
//! [`GraphData`] is a stable, human-inspectable interchange form (node
//! count, labels, edge list) convertible in both directions. The datagen
//! crate uses it to snapshot generated datasets so experiments are exactly
//! reproducible across runs.

use serde::{Deserialize, Serialize};

use crate::{Dist, GraphBuilder, GraphError, NodeId, SocialGraph};

/// Serializable edge-list form of a [`SocialGraph`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphData {
    /// Number of vertices.
    pub node_count: usize,
    /// Optional labels, one per vertex.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub labels: Option<Vec<String>>,
    /// Undirected edges `(a, b, weight)` with `a < b`.
    pub edges: Vec<(u32, u32, Dist)>,
}

impl GraphData {
    /// Snapshot a graph into interchange form.
    pub fn from_graph(graph: &SocialGraph) -> Self {
        let labels = graph
            .has_labels()
            .then(|| graph.nodes().map(|v| graph.label(v)).collect());
        GraphData {
            node_count: graph.node_count(),
            labels,
            edges: graph.edges().map(|e| (e.a.0, e.b.0, e.weight)).collect(),
        }
    }

    /// Rebuild the packed graph, re-validating every edge.
    pub fn into_graph(self) -> Result<SocialGraph, GraphError> {
        let mut b = GraphBuilder::new(self.node_count);
        if let Some(labels) = self.labels {
            b.set_labels(labels);
        }
        for (u, v, w) in self.edges {
            b.add_edge(NodeId(u), NodeId(v), w)?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(3);
        b.set_labels(vec!["a".into(), "b".into(), "c".into()]);
        b.add_edge(NodeId(0), NodeId(2), 7).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 3).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let data = GraphData::from_graph(&g);
        let g2 = data.clone().into_graph().unwrap();
        assert_eq!(GraphData::from_graph(&g2), data);
        assert_eq!(g2.edge_weight(NodeId(0), NodeId(2)), Some(7));
        assert_eq!(g2.label(NodeId(1)), "b");
    }

    #[test]
    fn json_roundtrip() {
        let data = GraphData::from_graph(&sample());
        let json = serde_json::to_string(&data).unwrap();
        let back: GraphData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn corrupt_edges_are_rejected_on_rebuild() {
        let mut data = GraphData::from_graph(&sample());
        data.edges.push((0, 0, 1));
        assert!(matches!(
            data.into_graph(),
            Err(GraphError::SelfLoop { .. })
        ));
    }
}
