use crate::{BitSet, Dist, NodeId};

/// An undirected, weighted social graph in compressed sparse row (CSR) form.
///
/// Vertices are candidate attendees; the weight of edge `e_{u,v}` is the
/// *social distance* between `u` and `v` (smaller = socially closer), exactly
/// as in §3.1 of the paper. The structure is immutable once built (use
/// [`GraphBuilder`](crate::GraphBuilder)); all query algorithms treat the
/// graph as read-only shared state.
///
/// Neighbor lists are sorted by vertex index, so `has_edge` is a binary
/// search and neighbor iteration is cache-friendly.
#[derive(Clone, Debug)]
pub struct SocialGraph {
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Flattened, per-vertex-sorted neighbor indices, length `2|E|`.
    neighbors: Vec<u32>,
    /// Edge weights parallel to `neighbors`.
    weights: Vec<Dist>,
    /// Optional human-readable labels (names), length `n` when present.
    labels: Option<Vec<String>>,
}

/// A borrowed view of one undirected edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Lower-indexed endpoint.
    pub a: NodeId,
    /// Higher-indexed endpoint.
    pub b: NodeId,
    /// Social distance on the edge.
    pub weight: Dist,
}

impl SocialGraph {
    /// Internal constructor used by the builder; inputs are pre-validated
    /// and `adjacency[v]` must already be sorted by neighbor index.
    pub(crate) fn from_sorted_adjacency(
        adjacency: Vec<Vec<(u32, Dist)>>,
        labels: Option<Vec<String>>,
    ) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let total: usize = adjacency.iter().map(Vec::len).sum();
        let mut neighbors = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        offsets.push(0);
        for row in &adjacency {
            for &(u, w) in row {
                neighbors.push(u);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        SocialGraph {
            offsets,
            neighbors,
            weights,
            labels,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Iterator over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let (s, e) = self.row(v);
        e - s
    }

    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        )
    }

    /// Sorted neighbor indices of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let (s, e) = self.row(v);
        &self.neighbors[s..e]
    }

    /// `(neighbor, weight)` pairs of `v`, sorted by neighbor index.
    pub fn neighbors_weighted(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Dist)> + '_ {
        let (s, e) = self.row(v);
        self.neighbors[s..e]
            .iter()
            .zip(&self.weights[s..e])
            .map(|(&u, &w)| (NodeId(u), w))
    }

    /// The raw sorted `(neighbors, weights)` row slices of `v` — the
    /// [`AdjacencySource`](crate::AdjacencySource) access path.
    #[inline]
    pub(crate) fn row_slices(&self, v: NodeId) -> (&[u32], &[Dist]) {
        let (s, e) = self.row(v);
        (&self.neighbors[s..e], &self.weights[s..e])
    }

    /// Whether `u` and `v` are directly acquainted (share an edge).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v.0).is_ok()
    }

    /// Weight of edge `u`-`v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let (s, _) = self.row(u);
        self.neighbors(u)
            .binary_search(&v.0)
            .ok()
            .map(|pos| self.weights[s + pos])
    }

    /// Iterate every undirected edge exactly once (`a < b`).
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |a| {
            self.neighbors_weighted(a)
                .filter(move |(b, _)| a.0 < b.0)
                .map(move |(b, weight)| EdgeRef { a, b, weight })
        })
    }

    /// Neighborhood of `v` as a [`BitSet`] over `0..node_count()`.
    pub fn neighbor_bitset(&self, v: NodeId) -> BitSet {
        let mut s = BitSet::new(self.node_count());
        for &u in self.neighbors(v) {
            s.insert(u as usize);
        }
        s
    }

    /// Human-readable label of `v` (falls back to `v{idx}`).
    pub fn label(&self, v: NodeId) -> String {
        match &self.labels {
            Some(l) => l[v.index()].clone(),
            None => v.to_string(),
        }
    }

    /// Whether the graph carries labels.
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Look up a vertex by its label. O(n); intended for examples and tests.
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .as_ref()?
            .iter()
            .position(|l| l == label)
            .map(NodeId::from_index)
    }

    /// Total weight of all edges with both endpoints in `group`
    /// (used by quality metrics in the harness).
    pub fn induced_weight(&self, group: &[NodeId]) -> Dist {
        let mut total = 0;
        for (i, &u) in group.iter().enumerate() {
            for &v in &group[i + 1..] {
                if let Some(w) = self.edge_weight(u, v) {
                    total += w;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;
    use crate::NodeId;

    fn triangle_plus_tail() -> crate::SocialGraph {
        // 0-1 (2), 1-2 (3), 0-2 (7), 2-3 (1)
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 3).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(2)), 3);
        assert_eq!(g.degree(NodeId(3)), 1);
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(2)), Some(7));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), Some(7));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(NodeId(2)), &[0, 1, 3]);
        let nw: Vec<_> = g.neighbors_weighted(NodeId(2)).collect();
        assert_eq!(nw, vec![(NodeId(0), 7), (NodeId(1), 3), (NodeId(3), 1)]);
    }

    #[test]
    fn edges_iterated_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for e in &edges {
            assert!(e.a.0 < e.b.0);
        }
        let total: u64 = edges.iter().map(|e| e.weight).sum();
        assert_eq!(total, 2 + 3 + 7 + 1);
    }

    #[test]
    fn neighbor_bitset_matches_list() {
        let g = triangle_plus_tail();
        let bs = g.neighbor_bitset(NodeId(2));
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn induced_weight_sums_internal_edges() {
        let g = triangle_plus_tail();
        assert_eq!(g.induced_weight(&[NodeId(0), NodeId(1), NodeId(2)]), 12);
        assert_eq!(g.induced_weight(&[NodeId(0), NodeId(3)]), 0);
    }

    #[test]
    fn labels_roundtrip() {
        let mut b = GraphBuilder::new(2);
        b.set_labels(vec!["Ann".into(), "Bob".into()]);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        let g = b.build();
        assert_eq!(g.label(NodeId(1)), "Bob");
        assert_eq!(g.find_by_label("Ann"), Some(NodeId(0)));
        assert_eq!(g.find_by_label("Zed"), None);
    }

    #[test]
    fn unlabeled_graph_falls_back_to_index_labels() {
        let g = triangle_plus_tail();
        assert!(!g.has_labels());
        assert_eq!(g.label(NodeId(3)), "v3");
        assert_eq!(g.find_by_label("v3"), None);
    }
}
