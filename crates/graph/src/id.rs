use std::fmt;

/// Identifier of a vertex (candidate attendee) in a [`SocialGraph`].
///
/// A `NodeId` is a dense index in `0..graph.node_count()`. It is a deliberate
/// newtype so that node indices, compact feasible-graph indices and time-slot
/// indices cannot be confused with one another.
///
/// [`SocialGraph`]: crate::SocialGraph
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn display_uses_vertex_notation() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(format!("{:?}", NodeId(7)), "v7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
    }
}
