use crate::{AdjacencySource, BitSet, Dist, NodeId, SocialGraph};

/// The *feasible graph* `G_F` of §3.2.1, re-indexed compactly.
///
/// Given the initiator `q` and the social radius constraint `s`, the
/// feasible graph contains exactly the vertices `v` with finite s-edge
/// minimum distance `d^s_{v,q}` (Definition 1), with that distance adopted
/// as the social distance `d_{v,q}`. Every query algorithm then works on
/// this compact index space:
///
/// * compact index `0` is always the initiator (distance 0);
/// * `candidate_order()` lists the remaining vertices sorted by ascending
///   social distance (ties by original id), which is SGSelect's access order;
/// * `adj(i)` is the neighborhood of `i` **within** the feasible graph as a
///   bitset, so `|N_v ∩ VS|`-style counts are cheap.
#[derive(Clone, Debug)]
pub struct FeasibleGraph {
    /// compact index → original vertex id; `origin[0]` is the initiator.
    origin: Vec<NodeId>,
    /// original vertex id → compact index (None if outside the radius).
    compact_of: Vec<Option<u32>>,
    /// social distance `d_{v,q}` per compact vertex.
    dist: Vec<Dist>,
    /// adjacency bitsets over compact indices.
    adj: Vec<BitSet>,
    /// the same adjacency, flattened to `adj_stride` words per vertex —
    /// one contiguous allocation, so hot-loop subset/popcount tests reach
    /// the words with a single indirection.
    adj_words: Vec<u64>,
    adj_stride: usize,
    /// sorted compact adjacency lists (parallel to `adj`).
    neighbors: Vec<Vec<u32>>,
    /// edge weights parallel to `neighbors`.
    weights: Vec<Vec<Dist>>,
    /// compact candidate indices (excluding 0) sorted by (distance, origin).
    order: Vec<u32>,
    /// compact index → position in `order` (`u32::MAX` for the initiator).
    order_pos: Vec<u32>,
    /// the social radius used for the extraction.
    radius: usize,
}

impl FeasibleGraph {
    /// Extract the feasible graph of `initiator` under radius `s`.
    ///
    /// Runs the Definition-1 DP once, keeps the vertices with finite
    /// distance, and induces the subgraph on them.
    pub fn extract(graph: &SocialGraph, initiator: NodeId, s: usize) -> Self {
        FeasibleGraph::extract_from(graph, initiator, s)
    }

    /// As [`extract`](Self::extract), over any [`AdjacencySource`] — the
    /// execution layer extracts straight from a sharded snapshot's CSR
    /// segments, no flat assembly in between.
    pub fn extract_from<A: AdjacencySource + ?Sized>(
        graph: &A,
        initiator: NodeId,
        s: usize,
    ) -> Self {
        let dists = crate::bounded_distances_from(graph, initiator, s);
        let n = graph.node_count();

        let mut origin = Vec::new();
        let mut compact_of: Vec<Option<u32>> = vec![None; n];
        // Initiator first, then the rest in original-id order.
        origin.push(initiator);
        compact_of[initiator.index()] = Some(0);
        for v in 0..n {
            if v != initiator.index() && dists[v].is_some() {
                compact_of[v] = Some(origin.len() as u32);
                origin.push(NodeId(v as u32));
            }
        }

        let f = origin.len();
        let dist: Vec<Dist> = origin
            .iter()
            .map(|v| dists[v.index()].expect("kept vertices are reachable"))
            .collect();

        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); f];
        let mut weights: Vec<Vec<Dist>> = vec![Vec::new(); f];
        let mut adj: Vec<BitSet> = vec![BitSet::new(f); f];
        for (ci, &ov) in origin.iter().enumerate() {
            let (nbs, ws) = graph.row_of(ov);
            let mut row: Vec<(u32, Dist)> = nbs
                .iter()
                .zip(ws)
                .filter_map(|(&u, &w)| compact_of[u as usize].map(|cu| (cu, w)))
                .collect();
            row.sort_unstable_by_key(|&(u, _)| u);
            for &(cu, w) in &row {
                neighbors[ci].push(cu);
                weights[ci].push(w);
                adj[ci].insert(cu as usize);
            }
        }

        let adj_stride = f.div_ceil(64);
        let mut adj_words = vec![0u64; f * adj_stride];
        for (ci, set) in adj.iter().enumerate() {
            adj_words[ci * adj_stride..ci * adj_stride + set.words().len()]
                .copy_from_slice(set.words());
        }

        let mut order: Vec<u32> = (1..f as u32).collect();
        order.sort_unstable_by_key(|&i| (dist[i as usize], origin[i as usize].0));
        let mut order_pos = vec![u32::MAX; f];
        for (pos, &c) in order.iter().enumerate() {
            order_pos[c as usize] = pos as u32;
        }

        FeasibleGraph {
            origin,
            compact_of,
            dist,
            adj,
            adj_words,
            adj_stride,
            neighbors,
            weights,
            order,
            order_pos,
            radius: s,
        }
    }

    /// Number of vertices in the feasible graph (initiator included).
    #[inline]
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// Whether the feasible graph holds only the initiator.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.origin.len() <= 1
    }

    /// The social radius `s` this graph was extracted with.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Original id of compact vertex `i`.
    #[inline]
    pub fn origin(&self, i: u32) -> NodeId {
        self.origin[i as usize]
    }

    /// Compact index of original vertex `v`, if it lies within the radius.
    #[inline]
    pub fn compact(&self, v: NodeId) -> Option<u32> {
        self.compact_of.get(v.index()).copied().flatten()
    }

    /// Social distance `d_{v,q}` of compact vertex `i`.
    #[inline]
    pub fn dist(&self, i: u32) -> Dist {
        self.dist[i as usize]
    }

    /// Neighborhood of compact vertex `i` within the feasible graph.
    #[inline]
    pub fn adj(&self, i: u32) -> &BitSet {
        &self.adj[i as usize]
    }

    /// The packed adjacency words of compact vertex `i` (bit `j` of word
    /// `j / 64` ⇔ `adjacent(i, j)`), from one flat allocation — the
    /// hot-path form of [`adj`](Self::adj).
    #[inline]
    pub fn adj_words(&self, i: u32) -> &[u64] {
        let start = i as usize * self.adj_stride;
        &self.adj_words[start..start + self.adj_stride]
    }

    /// Sorted compact neighbor list of `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.neighbors[i as usize]
    }

    /// Whether compact vertices `i` and `j` are acquainted.
    #[inline]
    pub fn adjacent(&self, i: u32, j: u32) -> bool {
        self.adj[i as usize].contains(j as usize)
    }

    /// Weight of the edge between compact vertices `i` and `j`.
    ///
    /// # Panics
    /// Panics if the edge does not exist (check [`adjacent`](Self::adjacent)
    /// first).
    pub fn edge_weight(&self, i: u32, j: u32) -> Dist {
        let row = &self.neighbors[i as usize];
        let pos = row
            .binary_search(&j)
            .expect("edge must exist in the feasible graph");
        self.weights[i as usize][pos]
    }

    /// Candidate compact indices (excluding the initiator), ascending by
    /// `(d_{v,q}, original id)` — SGSelect's global access order.
    #[inline]
    pub fn candidate_order(&self) -> &[u32] {
        &self.order
    }

    /// Position of compact candidate `i` in [`candidate_order`]
    /// (`u32::MAX` for the initiator, which is never a candidate). The
    /// inverse permutation of `candidate_order`, precomputed so the query
    /// engines can keep `VA` as a bitmap over *order positions* and scan
    /// it with word-parallel successor queries.
    ///
    /// [`candidate_order`]: Self::candidate_order
    #[inline]
    pub fn order_pos(&self, i: u32) -> u32 {
        self.order_pos[i as usize]
    }

    /// Map a compact group back to original vertex ids, sorted ascending.
    pub fn to_origin_group(&self, compact: impl IntoIterator<Item = u32>) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = compact.into_iter().map(|i| self.origin(i)).collect();
        out.sort_unstable();
        out
    }

    /// Total social distance of a compact group.
    pub fn group_distance(&self, compact: impl IntoIterator<Item = u32>) -> Dist {
        compact.into_iter().map(|i| self.dist(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Star around 0 plus a far vertex 4 two hops away, and an isolated 5.
    ///   0-1 (5), 0-2 (1), 1-2 (1), 2-3 (2), 3-4 (2), [5 isolated]
    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 2).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 2).unwrap();
        b.build()
    }

    #[test]
    fn radius_one_keeps_direct_friends_only() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 1);
        assert_eq!(fg.len(), 3); // 0, 1, 2
        assert_eq!(fg.origin(0), NodeId(0));
        assert_eq!(fg.compact(NodeId(3)), None);
        assert_eq!(fg.compact(NodeId(5)), None);
        // With one edge allowed, d(1) is the direct heavy edge.
        let c1 = fg.compact(NodeId(1)).unwrap();
        assert_eq!(fg.dist(c1), 5);
    }

    #[test]
    fn radius_two_improves_distances_via_two_edge_paths() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        let c1 = fg.compact(NodeId(1)).unwrap();
        // 0-2-1 has distance 2 < 5 and uses 2 edges.
        assert_eq!(fg.dist(c1), 2);
        let c3 = fg.compact(NodeId(3)).unwrap();
        assert_eq!(fg.dist(c3), 3);
        assert_eq!(fg.compact(NodeId(4)), None, "v4 is 3 hops away");
    }

    #[test]
    fn isolated_vertex_never_included() {
        let g = sample();
        for s in 1..5 {
            let fg = FeasibleGraph::extract(&g, NodeId(0), s);
            assert_eq!(fg.compact(NodeId(5)), None);
        }
    }

    #[test]
    fn initiator_is_compact_zero_with_distance_zero() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(2), 1);
        assert_eq!(fg.origin(0), NodeId(2));
        assert_eq!(fg.dist(0), 0);
    }

    #[test]
    fn candidate_order_sorted_by_distance() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        let order = fg.candidate_order();
        let dists: Vec<_> = order.iter().map(|&i| fg.dist(i)).collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted);
        assert!(!order.contains(&0), "initiator not a candidate");
        assert_eq!(order.len(), fg.len() - 1);
    }

    #[test]
    fn adj_words_match_adjacency_bitsets() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        for i in 0..fg.len() as u32 {
            let words = fg.adj_words(i);
            for j in 0..fg.len() {
                let bit = (words[j / 64] >> (j % 64)) & 1 == 1;
                assert_eq!(bit, fg.adj(i).contains(j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn order_pos_is_the_inverse_permutation() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        for (pos, &c) in fg.candidate_order().iter().enumerate() {
            assert_eq!(fg.order_pos(c) as usize, pos);
        }
        assert_eq!(fg.order_pos(0), u32::MAX, "initiator has no order position");
    }

    #[test]
    fn induced_adjacency_respects_membership() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 1);
        let c1 = fg.compact(NodeId(1)).unwrap();
        let c2 = fg.compact(NodeId(2)).unwrap();
        assert!(fg.adjacent(c1, c2));
        assert!(fg.adjacent(0, c2));
        // v3 is adjacent to v2 in G but excluded from GF at s=1, so c2's
        // feasible-graph adjacency must not mention it.
        assert_eq!(fg.neighbors(c2).len(), 2);
        for &nb in fg.neighbors(c2) {
            assert!((nb as usize) < fg.len());
        }
    }

    #[test]
    fn adjacency_bitset_and_list_agree() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        for i in 0..fg.len() as u32 {
            let from_list: Vec<usize> = fg.neighbors(i).iter().map(|&x| x as usize).collect();
            let from_set: Vec<usize> = fg.adj(i).iter().collect();
            assert_eq!(from_list, from_set);
        }
    }

    #[test]
    fn edge_weights_preserved_in_compact_space() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        let c1 = fg.compact(NodeId(1)).unwrap();
        let c2 = fg.compact(NodeId(2)).unwrap();
        assert_eq!(fg.edge_weight(c1, c2), 1);
        assert_eq!(fg.edge_weight(c2, c1), 1);
        assert_eq!(fg.edge_weight(0, c1), 5);
    }

    #[test]
    fn group_helpers() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        let c1 = fg.compact(NodeId(1)).unwrap();
        let c2 = fg.compact(NodeId(2)).unwrap();
        assert_eq!(fg.group_distance([0, c1, c2]), 2 + 1);
        assert_eq!(
            fg.to_origin_group([c2, 0, c1]),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }
}
