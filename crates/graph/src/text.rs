//! Plain-text edge-list format (DIMACS-flavoured).
//!
//! A line-oriented interchange format readable by humans and by the
//! standard graph tool chains:
//!
//! ```text
//! c any comment
//! p sgq <node-count> <edge-count>
//! l <id> <label>
//! e <u> <v> <weight>
//! ```
//!
//! `p` must come first (after comments); `l` lines are optional but when
//! present every vertex needs one; `e` lines carry 0-based vertex ids and
//! positive integer distances. The JSON interchange form lives in
//! [`crate::GraphData`] (behind the `serde` feature); this module has no
//! dependencies at all.

use std::fmt::Write as _;
use std::io::BufRead;

use crate::{Dist, GraphBuilder, GraphError, NodeId, SocialGraph};

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum TextFormatError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The parsed edges violated graph invariants.
    Graph(GraphError),
}

impl std::fmt::Display for TextFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextFormatError::Io(e) => write!(f, "I/O error: {e}"),
            TextFormatError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            TextFormatError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for TextFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextFormatError::Io(e) => Some(e),
            TextFormatError::Graph(e) => Some(e),
            TextFormatError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TextFormatError {
    fn from(e: std::io::Error) -> Self {
        TextFormatError::Io(e)
    }
}

impl From<GraphError> for TextFormatError {
    fn from(e: GraphError) -> Self {
        TextFormatError::Graph(e)
    }
}

/// Render a graph as an edge-list document.
pub fn write_edge_list(graph: &SocialGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c stgq social graph");
    let _ = writeln!(out, "p sgq {} {}", graph.node_count(), graph.edge_count());
    if graph.has_labels() {
        for v in graph.nodes() {
            let _ = writeln!(out, "l {} {}", v.0, graph.label(v));
        }
    }
    for e in graph.edges() {
        let _ = writeln!(out, "e {} {} {}", e.a.0, e.b.0, e.weight);
    }
    out
}

/// Parse an edge-list document back into a graph.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<SocialGraph, TextFormatError> {
    let parse = |line: usize, reason: &str| TextFormatError::Parse {
        line,
        reason: reason.to_string(),
    };

    let mut builder: Option<GraphBuilder> = None;
    let mut labels: Vec<Option<String>> = Vec::new();
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        match tag {
            "p" => {
                if builder.is_some() {
                    return Err(parse(lineno, "duplicate problem line"));
                }
                if parts.next() != Some("sgq") {
                    return Err(parse(lineno, "expected `p sgq <n> <m>`"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad node count"))?;
                declared_edges = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad edge count"))?;
                builder = Some(GraphBuilder::new(n));
                labels = vec![None; n];
            }
            "l" => {
                let b = builder
                    .as_ref()
                    .ok_or_else(|| parse(lineno, "label before `p` line"))?;
                let id: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| parse(lineno, "bad label id"))?;
                if id >= b.node_count() {
                    return Err(parse(lineno, "label id out of range"));
                }
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(parse(lineno, "empty label"));
                }
                labels[id] = Some(name);
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse(lineno, "edge before `p` line"))?;
                let mut field = || -> Result<u64, TextFormatError> {
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse(lineno, "edge needs `e <u> <v> <w>`"))
                };
                let (u, v, w) = (field()?, field()?, field()?);
                b.add_edge(NodeId(u as u32), NodeId(v as u32), w as Dist)?;
                seen_edges += 1;
            }
            other => {
                return Err(parse(lineno, &format!("unknown line tag `{other}`")));
            }
        }
    }

    let builder = builder.ok_or_else(|| parse(0, "missing `p sgq <n> <m>` line"))?;
    if seen_edges != declared_edges {
        return Err(TextFormatError::Parse {
            line: 0,
            reason: format!("problem line declared {declared_edges} edges, found {seen_edges}"),
        });
    }
    let mut builder = builder;
    if labels.iter().any(Option::is_some) {
        if let Some(missing) = labels.iter().position(Option::is_none) {
            return Err(TextFormatError::Parse {
                line: 0,
                reason: format!("vertex {missing} has no label but others do"),
            });
        }
        builder.set_labels(labels.into_iter().map(Option::unwrap).collect());
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(4);
        b.set_labels(vec![
            "ann".into(),
            "bob with space".into(),
            "cy".into(),
            "dee".into(),
        ]);
        b.add_edge(NodeId(0), NodeId(1), 7).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 2).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_with_labels() {
        let g = sample();
        let text = write_edge_list(&g);
        let back = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(back.node_count(), 4);
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.edge_weight(NodeId(0), NodeId(1)), Some(7));
        assert_eq!(back.label(NodeId(1)), "bob with space");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "c hello\n\np sgq 2 1\nc mid\ne 0 1 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3));
    }

    #[test]
    fn missing_problem_line_is_an_error() {
        let err = read_edge_list("e 0 1 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TextFormatError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_count_mismatch_is_an_error() {
        let err = read_edge_list("p sgq 2 2\ne 0 1 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 edges"));
    }

    #[test]
    fn graph_invariants_are_enforced() {
        let err = read_edge_list("p sgq 2 1\ne 0 0 3\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            TextFormatError::Graph(GraphError::SelfLoop { .. })
        ));
        let err = read_edge_list("p sgq 2 1\ne 0 1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            TextFormatError::Graph(GraphError::ZeroWeight { .. })
        ));
    }

    #[test]
    fn partial_labels_are_rejected() {
        let err = read_edge_list("p sgq 2 0\nl 0 solo\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("no label"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Write → read is the identity on structure and weights.
        #[test]
        fn roundtrip_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 1u64..100), 0..40),
        ) {
            let mut b = GraphBuilder::new(12);
            for (u, v, w) in edges {
                if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
                    b.add_edge(NodeId(u), NodeId(v), w).unwrap();
                }
            }
            let g = b.build();
            let back = read_edge_list(write_edge_list(&g).as_bytes()).unwrap();
            prop_assert_eq!(back.node_count(), g.node_count());
            prop_assert_eq!(back.edge_count(), g.edge_count());
            for e in g.edges() {
                prop_assert_eq!(back.edge_weight(e.a, e.b), Some(e.weight));
            }
        }
    }
}
