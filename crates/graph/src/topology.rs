//! The candidate-topology abstraction the query kernels run against.
//!
//! The exact engines in `stgq-core` never look at the full social network:
//! they see a *candidate space* — the radius-`s` ball around the initiator,
//! renumbered into dense compact ids with a promise order laid over it. Two
//! concrete carriers provide that space:
//!
//! * [`FeasibleGraph`](crate::FeasibleGraph) — the materialized form: every
//!   adjacency row copied out of the snapshot into per-query storage
//!   (bitsets, sorted neighbor lists, edge weights). The reference/compat
//!   path and the bit-identity oracle.
//! * [`FeasibleView`](crate::FeasibleView) — the zero-copy form: a compact
//!   index plus a masked adjacency word matrix generated shard-segment-wise
//!   over borrowed CSR [`GraphSegment`](crate::GraphSegment)s, with no
//!   row-by-row copies.
//!
//! [`CandidateTopology`] is the seam between them. Everything the
//! word-parallel kernels consume — compact↔origin mapping, distances to the
//! initiator, packed adjacency words, the `(dist, id)` candidate order and
//! its inverse permutation — is a required method; the derived forms the
//! engines share (bit tests, word-scan neighbor iteration, row∩set
//! popcounts, group mapping) are provided so both carriers behave
//! *identically* down to iteration order, which is what keeps
//! `SearchStats` bit-identical across the two paths.

use crate::bitset::BitSet;
use crate::id::NodeId;
use crate::Dist;

/// A dense-id candidate space the query kernels can descend over.
///
/// Implementors carry the radius-`s` candidate ball in compact form:
/// compact id `0` is always the initiator, candidates occupy `1..len()`,
/// and adjacency is exposed as packed words over compact ids
/// ([`word_stride`](Self::word_stride) words per row). The trait is
/// `Sync` so `ExactParallel` workers can share one carrier across scoped
/// threads.
///
/// The provided methods are the only neighbor-iteration and intersection
/// forms the engines use; they are defined purely in terms of
/// [`adj_words`](Self::adj_words), so any two implementors with the same
/// bits produce the same visit order and therefore the same search
/// statistics.
pub trait CandidateTopology: Sync {
    /// Number of vertices in the candidate space (initiator included).
    fn len(&self) -> usize;

    /// The social radius `s` the space was extracted with.
    fn radius(&self) -> usize;

    /// Original id of compact vertex `i`.
    fn origin(&self, i: u32) -> NodeId;

    /// Compact index of original vertex `v`, if it lies within the radius.
    fn compact(&self, v: NodeId) -> Option<u32>;

    /// Social distance `d_{v,q}` of compact vertex `i`.
    fn dist(&self, i: u32) -> Dist;

    /// The packed adjacency words of compact vertex `i` (bit `j % 64` of
    /// word `j / 64` ⇔ `adjacent(i, j)`), exactly
    /// [`word_stride`](Self::word_stride) words long.
    fn adj_words(&self, i: u32) -> &[u64];

    /// Candidate compact indices (excluding the initiator), ascending by
    /// `(d_{v,q}, original id)` — SGSelect's global access order.
    fn candidate_order(&self) -> &[u32];

    /// Position of compact candidate `i` in
    /// [`candidate_order`](Self::candidate_order) (`u32::MAX` for the
    /// initiator); the precomputed inverse permutation.
    fn order_pos(&self, i: u32) -> u32;

    /// Whether the space holds only the initiator.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Words per packed adjacency row.
    #[inline]
    fn word_stride(&self) -> usize {
        self.len().div_ceil(64)
    }

    /// Whether compact vertices `i` and `j` are acquainted.
    #[inline]
    fn adjacent(&self, i: u32, j: u32) -> bool {
        let row = self.adj_words(i);
        (row[j as usize / 64] >> (j as usize % 64)) & 1 == 1
    }

    /// `|N(i) ∩ set|` — popcount of the adjacency row masked by `set`.
    #[inline]
    fn row_intersection_len(&self, i: u32, set: &BitSet) -> usize {
        self.adj_words(i)
            .iter()
            .zip(set.words())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Visit the neighbors of compact vertex `i` in ascending compact
    /// order (a word-and-bit scan of the packed row — identical order to
    /// a sorted neighbor list).
    #[inline]
    fn for_each_neighbor(&self, i: u32, mut f: impl FnMut(u32)) {
        for (wi, &word) in self.adj_words(i).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros();
                f((wi * 64) as u32 + b);
                w &= w - 1;
            }
        }
    }

    /// Map a compact group back to original vertex ids, sorted ascending.
    fn to_origin_group(&self, compact: impl IntoIterator<Item = u32>) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = compact.into_iter().map(|i| self.origin(i)).collect();
        out.sort_unstable();
        out
    }

    /// Total social distance of a compact group.
    fn group_distance(&self, compact: impl IntoIterator<Item = u32>) -> Dist {
        compact.into_iter().map(|i| self.dist(i)).sum()
    }
}

impl CandidateTopology for crate::FeasibleGraph {
    #[inline]
    fn len(&self) -> usize {
        crate::FeasibleGraph::len(self)
    }

    #[inline]
    fn radius(&self) -> usize {
        crate::FeasibleGraph::radius(self)
    }

    #[inline]
    fn origin(&self, i: u32) -> NodeId {
        crate::FeasibleGraph::origin(self, i)
    }

    #[inline]
    fn compact(&self, v: NodeId) -> Option<u32> {
        crate::FeasibleGraph::compact(self, v)
    }

    #[inline]
    fn dist(&self, i: u32) -> Dist {
        crate::FeasibleGraph::dist(self, i)
    }

    #[inline]
    fn adj_words(&self, i: u32) -> &[u64] {
        crate::FeasibleGraph::adj_words(self, i)
    }

    #[inline]
    fn candidate_order(&self) -> &[u32] {
        crate::FeasibleGraph::candidate_order(self)
    }

    #[inline]
    fn order_pos(&self, i: u32) -> u32 {
        crate::FeasibleGraph::order_pos(self, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeasibleGraph, GraphBuilder, SocialGraph};

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new(8);
        b.add_edge(NodeId(0), NodeId(1), 5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 2).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 2).unwrap();
        b.add_edge(NodeId(4), NodeId(6), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(7), 3).unwrap();
        b.build()
    }

    #[test]
    fn trait_surface_agrees_with_inherent_methods() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 2);
        assert_eq!(CandidateTopology::len(&fg), fg.len());
        assert_eq!(CandidateTopology::radius(&fg), fg.radius());
        for i in 0..fg.len() as u32 {
            assert_eq!(CandidateTopology::origin(&fg, i), fg.origin(i));
            assert_eq!(CandidateTopology::dist(&fg, i), fg.dist(i));
            assert_eq!(CandidateTopology::order_pos(&fg, i), fg.order_pos(i));
            for j in 0..fg.len() as u32 {
                assert_eq!(CandidateTopology::adjacent(&fg, i, j), fg.adjacent(i, j));
            }
        }
        assert_eq!(
            CandidateTopology::candidate_order(&fg),
            fg.candidate_order()
        );
    }

    #[test]
    fn word_scan_neighbor_iteration_matches_sorted_lists() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 3);
        for i in 0..fg.len() as u32 {
            let mut scanned = Vec::new();
            CandidateTopology::for_each_neighbor(&fg, i, |nb| scanned.push(nb));
            assert_eq!(scanned.as_slice(), fg.neighbors(i));
        }
    }

    #[test]
    fn row_intersection_matches_bitset_intersection() {
        let g = sample();
        let fg = FeasibleGraph::extract(&g, NodeId(0), 3);
        let mut set = BitSet::new(fg.len());
        set.insert(1);
        set.insert(3);
        if fg.len() > 4 {
            set.insert(4);
        }
        for i in 0..fg.len() as u32 {
            assert_eq!(
                CandidateTopology::row_intersection_len(&fg, i, &set),
                fg.adj(i).intersection_len(&set)
            );
        }
    }
}
