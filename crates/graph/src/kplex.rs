//! Acquaintance-constraint predicates.
//!
//! The paper's acquaintance constraint — "each vertex in `F` is allowed to
//! share no edge with at most `k` other vertices in `F`" — says exactly that
//! `F` is a *(k+1)-plex* in the classic Seidman–Foster sense (every member
//! adjacent to at least `|F| − k − 1` others). These helpers implement the
//! constraint directly on a [`SocialGraph`] or a [`FeasibleGraph`]; they are
//! the reference predicates used by the solution validator, the exhaustive
//! baseline and the property tests.

use crate::{FeasibleGraph, NodeId, SocialGraph};

/// Number of members of `group` that `v` (a member) is **not** acquainted
/// with, i.e. `|F − {v} − N_v|`.
pub fn non_neighbor_count(graph: &SocialGraph, group: &[NodeId], v: NodeId) -> usize {
    group
        .iter()
        .filter(|&&u| u != v && !graph.has_edge(u, v))
        .count()
}

/// The paper's *interior unfamiliarity* `U(F) = max_{v∈F} |F − {v} − N_v|`.
///
/// Returns 0 for the empty and singleton groups.
pub fn interior_unfamiliarity(graph: &SocialGraph, group: &[NodeId]) -> usize {
    group
        .iter()
        .map(|&v| non_neighbor_count(graph, group, v))
        .max()
        .unwrap_or(0)
}

/// Whether `group` satisfies the acquaintance constraint with parameter `k`
/// (equivalently: whether it is a `(k+1)`-plex).
pub fn satisfies_acquaintance(graph: &SocialGraph, group: &[NodeId], k: usize) -> bool {
    interior_unfamiliarity(graph, group) <= k
}

/// As [`interior_unfamiliarity`] but on compact feasible-graph indices.
pub fn interior_unfamiliarity_compact(fg: &FeasibleGraph, group: &[u32]) -> usize {
    group
        .iter()
        .map(|&v| {
            group
                .iter()
                .filter(|&&u| u != v && !fg.adjacent(u, v))
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// As [`satisfies_acquaintance`] on compact feasible-graph indices.
pub fn satisfies_acquaintance_compact(fg: &FeasibleGraph, group: &[u32], k: usize) -> bool {
    interior_unfamiliarity_compact(fg, group) <= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// K4 minus one edge (0-3 missing).
    fn near_clique() -> SocialGraph {
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v), 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn clique_is_zero_plexy() {
        let g = near_clique();
        let tri = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(interior_unfamiliarity(&g, &tri), 0);
        assert!(satisfies_acquaintance(&g, &tri, 0));
    }

    #[test]
    fn missing_edge_raises_unfamiliarity() {
        let g = near_clique();
        let all = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(interior_unfamiliarity(&g, &all), 1);
        assert!(!satisfies_acquaintance(&g, &all, 0));
        assert!(satisfies_acquaintance(&g, &all, 1));
    }

    #[test]
    fn non_neighbor_count_per_vertex() {
        let g = near_clique();
        let all = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(non_neighbor_count(&g, &all, NodeId(0)), 1); // misses v3
        assert_eq!(non_neighbor_count(&g, &all, NodeId(1)), 0);
        assert_eq!(non_neighbor_count(&g, &all, NodeId(3)), 1); // misses v0
    }

    #[test]
    fn degenerate_groups() {
        let g = near_clique();
        assert_eq!(interior_unfamiliarity(&g, &[]), 0);
        assert_eq!(interior_unfamiliarity(&g, &[NodeId(2)]), 0);
        assert!(satisfies_acquaintance(&g, &[NodeId(2)], 0));
    }

    #[test]
    fn compact_variant_agrees() {
        let g = near_clique();
        let fg = crate::FeasibleGraph::extract(&g, NodeId(0), 2);
        let group_orig = [NodeId(0), NodeId(1), NodeId(3)];
        let group_compact: Vec<u32> = group_orig.iter().map(|&v| fg.compact(v).unwrap()).collect();
        assert_eq!(
            interior_unfamiliarity(&g, &group_orig),
            interior_unfamiliarity_compact(&fg, &group_compact)
        );
    }

    proptest! {
        /// U(F) equals |F|-1 minus the minimum induced degree.
        #[test]
        fn unfamiliarity_is_size_minus_min_degree(
            edges in proptest::collection::vec((0u32..7, 0u32..7), 0..21),
            members in proptest::collection::btree_set(0u32..7, 1..7),
        ) {
            let mut b = GraphBuilder::new(7);
            for (u, v) in edges {
                if u != v && !b.has_edge(NodeId(u), NodeId(v)) {
                    b.add_edge(NodeId(u), NodeId(v), 1).unwrap();
                }
            }
            let g = b.build();
            let group: Vec<NodeId> = members.iter().map(|&v| NodeId(v)).collect();
            let min_deg = group.iter().map(|&v| {
                group.iter().filter(|&&u| u != v && g.has_edge(u, v)).count()
            }).min().unwrap();
            prop_assert_eq!(
                interior_unfamiliarity(&g, &group),
                group.len() - 1 - min_deg
            );
        }
    }
}
