/// A dense, fixed-capacity bitset over vertex indices `0..capacity`.
///
/// `BitSet` backs the hot set operations of the query algorithms: membership
/// of `VS`/`VA`, neighborhood bitmaps, and intersection counts such as
/// `|N_v ∩ VA|`. The cardinality is tracked eagerly so `len()` is O(1).
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(WORD_BITS)], capacity, len: 0 }
    }

    /// A set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim_tail();
        s.len = capacity;
        s
    }

    /// Zero out bits beyond `capacity` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Maximum index + 1 this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently in the set. O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= capacity` (debug-level bounds check via slice index).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place union: `self ← self ∪ other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place difference: `self ← self \ other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    /// A copy of `self` with `i` removed.
    pub fn clone_without(&self, i: usize) -> BitSet {
        let mut c = self.clone();
        c.remove(i);
        c
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, w) in self.words.iter().enumerate() {
            if *w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Recompute the cached cardinality (after bulk word operations).
    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Ascending iterator over the elements of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap={cap}");
            assert_eq!(s.iter().count(), cap);
        }
    }

    #[test]
    fn iter_is_ascending() {
        let s: BitSet = [5usize, 1, 99, 64, 63].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 63, 64, 99]);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn empty_set_behaviour() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.extend([2usize, 64, 5]);

        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!b.is_subset(&a));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert!(i.is_subset(&a));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn clone_without_leaves_original_untouched() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let b = a.clone_without(1);
        assert!(a.contains(1));
        assert!(!b.contains(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn debug_format_lists_elements() {
        let s: BitSet = [3usize, 1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    proptest! {
        /// BitSet agrees with a BTreeSet model under a random op sequence.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec((0usize..200, proptest::bool::ANY), 0..400)) {
            let mut bs = BitSet::new(200);
            let mut model = BTreeSet::new();
            for (i, ins) in ops {
                if ins {
                    prop_assert_eq!(bs.insert(i), model.insert(i));
                } else {
                    prop_assert_eq!(bs.remove(i), model.remove(&i));
                }
                prop_assert_eq!(bs.len(), model.len());
            }
            prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(bs.first(), model.iter().next().copied());
        }

        /// Intersection count matches the model computation.
        #[test]
        fn intersection_matches_model(
            xs in proptest::collection::btree_set(0usize..150, 0..80),
            ys in proptest::collection::btree_set(0usize..150, 0..80),
        ) {
            let mut a = BitSet::new(150);
            a.extend(xs.iter().copied());
            let mut b = BitSet::new(150);
            b.extend(ys.iter().copied());
            prop_assert_eq!(a.intersection_len(&b), xs.intersection(&ys).count());
            prop_assert_eq!(a.intersects(&b), xs.intersection(&ys).next().is_some());
            prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
        }
    }
}
