/// A dense, fixed-capacity bitset over vertex indices `0..capacity`.
///
/// `BitSet` backs the hot set operations of the query algorithms: membership
/// of `VS`/`VA`, neighborhood bitmaps, and intersection counts such as
/// `|N_v ∩ VA|`. The cardinality is tracked eagerly so `len()` is O(1).
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// A set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim_tail();
        s.len = capacity;
        s
    }

    /// Zero out bits beyond `capacity` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Maximum index + 1 this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently in the set. O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= capacity` (debug-level bounds check via slice index).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// `|self ∩ other|` without materialising the intersection.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether the two sets share at least one element.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place union: `self ← self ∪ other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place difference: `self ← self \ other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    /// A copy of `self` with `i` removed.
    pub fn clone_without(&self, i: usize) -> BitSet {
        let mut c = self.clone();
        c.remove(i);
        c
    }

    /// Smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (wi, w) in self.words.iter().enumerate() {
            if *w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Smallest element `≥ pos`, if any — a word-parallel successor query
    /// (whole zero words are skipped), the primitive behind the engines'
    /// access-order cursor scans.
    #[inline]
    pub fn next_set_at_or_after(&self, pos: usize) -> Option<usize> {
        if pos >= self.capacity {
            return None;
        }
        let mut wi = pos / WORD_BITS;
        let mut w = self.words[wi] & (u64::MAX << (pos % WORD_BITS));
        loop {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    // ---- word-slice access (the hot-path API) ------------------------
    //
    // The query engines build availability bitmaps and Lemma-5 counters
    // out of whole `u64` words rather than per-bit loops; these accessors
    // expose the packed representation without giving up the cached
    // cardinality invariant (`from_words` recounts once, mutators stay
    // per-bit).

    /// The backing words, least-significant bit = smallest index. Bits at
    /// `capacity` and beyond are guaranteed zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Build a set over `0..capacity` directly from packed words.
    ///
    /// `words` yields the backing words in ascending order; missing words
    /// are zero, excess words and bits beyond `capacity` are discarded.
    pub fn from_words(capacity: usize, words: impl IntoIterator<Item = u64>) -> Self {
        let n_words = capacity.div_ceil(WORD_BITS);
        let mut buf: Vec<u64> = words.into_iter().take(n_words).collect();
        buf.resize(n_words, 0);
        let mut s = BitSet {
            words: buf,
            capacity,
            len: 0,
        };
        s.trim_tail();
        s.recount();
        s
    }

    /// Number of indices in `0..capacity` **not** in the set. O(1).
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.capacity - self.len
    }

    /// Iterate the indices in `0..capacity` *not* in the set, ascending.
    ///
    /// Word-parallel: whole `u64` complement words are skipped when zero,
    /// so iteration costs O(words + zeros) rather than O(capacity). The
    /// free function [`for_each_zero_bit`] is the same operation over raw
    /// word slices (used by STGSelect's flattened availability buffers);
    /// this method is the `BitSet`-level equivalent.
    pub fn zero_offsets(&self) -> ZeroIter<'_> {
        let first = self.complement_word(0);
        ZeroIter {
            set: self,
            word_idx: 0,
            current: first,
        }
    }

    /// Complement of word `wi`, masked to the capacity.
    #[inline]
    fn complement_word(&self, wi: usize) -> u64 {
        let Some(&w) = self.words.get(wi) else {
            return 0;
        };
        let mut c = !w;
        if wi == self.words.len() - 1 {
            let tail = self.capacity % WORD_BITS;
            if tail != 0 {
                c &= (1u64 << tail) - 1;
            }
        }
        c
    }

    /// Recompute the cached cardinality (after bulk word operations).
    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Ascending iterator over the elements of a [`BitSet`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Call `f` with every **zero** bit index among the first `len_bits` bits
/// of `words` — the word-parallel primitive behind STGSelect's Lemma-5
/// counter maintenance: an all-ones word (the common case for
/// pivot-eligible members) costs a single comparison.
#[inline]
pub fn for_each_zero_bit(words: &[u64], len_bits: usize, mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let base = wi * WORD_BITS;
        if base >= len_bits {
            break;
        }
        let mut z = !w;
        let remain = len_bits - base;
        if remain < WORD_BITS {
            z &= (1u64 << remain) - 1;
        }
        while z != 0 {
            let b = z.trailing_zeros() as usize;
            z &= z - 1;
            f(base + b);
        }
    }
}

/// Ascending iterator over the *complement* of a [`BitSet`] within its
/// capacity (see [`BitSet::zero_offsets`]).
pub struct ZeroIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for ZeroIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.complement_word(self.word_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap={cap}");
            assert_eq!(s.iter().count(), cap);
        }
    }

    #[test]
    fn iter_is_ascending() {
        let s: BitSet = [5usize, 1, 99, 64, 63].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 5, 63, 64, 99]);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn empty_set_behaviour() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.extend([2usize, 64, 5]);

        assert_eq!(a.intersection_len(&b), 2);
        assert!(a.intersects(&b));
        assert!(!b.is_subset(&a));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 64]);
        assert!(i.is_subset(&a));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn clone_without_leaves_original_untouched() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let b = a.clone_without(1);
        assert!(a.contains(1));
        assert!(!b.contains(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn debug_format_lists_elements() {
        let s: BitSet = [3usize, 1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    proptest! {
        /// BitSet agrees with a BTreeSet model under a random op sequence.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec((0usize..200, proptest::bool::ANY), 0..400)) {
            let mut bs = BitSet::new(200);
            let mut model = BTreeSet::new();
            for (i, ins) in ops {
                if ins {
                    prop_assert_eq!(bs.insert(i), model.insert(i));
                } else {
                    prop_assert_eq!(bs.remove(i), model.remove(&i));
                }
                prop_assert_eq!(bs.len(), model.len());
            }
            prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(bs.first(), model.iter().next().copied());
        }

        /// `zero_offsets` is exactly the ascending complement, and
        /// `count_zeros` its length.
        #[test]
        fn zero_offsets_match_per_bit_reference(
            xs in proptest::collection::btree_set(0usize..200, 0..120),
            cap in 0usize..200,
        ) {
            let mut s = BitSet::new(cap);
            s.extend(xs.iter().copied().filter(|&i| i < cap));
            let fast: Vec<usize> = s.zero_offsets().collect();
            let naive: Vec<usize> = (0..cap).filter(|&i| !s.contains(i)).collect();
            prop_assert_eq!(&fast, &naive);
            prop_assert_eq!(s.count_zeros(), naive.len());
            prop_assert_eq!(s.len() + s.count_zeros(), cap);
        }

        /// The free-function zero-bit iterator agrees with the BitSet-level
        /// one on the packed words.
        #[test]
        fn for_each_zero_bit_matches_zero_offsets(
            xs in proptest::collection::btree_set(0usize..200, 0..120),
            cap in 0usize..200,
        ) {
            let mut s = BitSet::new(cap);
            s.extend(xs.iter().copied().filter(|&i| i < cap));
            let mut from_fn = Vec::new();
            super::for_each_zero_bit(s.words(), cap, |off| from_fn.push(off));
            let from_iter: Vec<usize> = s.zero_offsets().collect();
            prop_assert_eq!(from_fn, from_iter);
        }

        /// `from_words(words())` round-trips, and hand-packed words agree
        /// with per-bit insertion.
        #[test]
        fn from_words_matches_per_bit_reference(
            xs in proptest::collection::btree_set(0usize..190, 0..120),
            cap in 0usize..200,
        ) {
            let mut reference = BitSet::new(cap);
            reference.extend(xs.iter().copied().filter(|&i| i < cap));

            // Round-trip through the packed representation.
            let rebuilt = BitSet::from_words(cap, reference.words().iter().copied());
            prop_assert_eq!(&rebuilt, &reference);
            prop_assert_eq!(rebuilt.len(), reference.len());

            // Pack words by hand and compare against per-bit insert.
            let mut words = vec![0u64; cap.div_ceil(64)];
            for &i in xs.iter().filter(|&&i| i < cap) {
                words[i / 64] |= 1u64 << (i % 64);
            }
            let packed = BitSet::from_words(cap, words);
            prop_assert_eq!(&packed, &reference);

            // Oversized/overlong input is trimmed, never trusted.
            let noisy = BitSet::from_words(
                cap,
                reference.words().iter().copied().chain([u64::MAX, u64::MAX]),
            );
            prop_assert_eq!(&noisy, &reference);
        }

        /// `next_set_at_or_after` agrees with a linear scan from `pos`.
        #[test]
        fn successor_matches_per_bit_reference(
            xs in proptest::collection::btree_set(0usize..200, 0..80),
            pos in 0usize..220,
        ) {
            let mut s = BitSet::new(200);
            s.extend(xs.iter().copied());
            let naive = (pos..200).find(|&i| s.contains(i));
            prop_assert_eq!(s.next_set_at_or_after(pos), naive);
            prop_assert_eq!(s.next_set_at_or_after(0), s.first());
        }

        /// Intersection count matches the model computation.
        #[test]
        fn intersection_matches_model(
            xs in proptest::collection::btree_set(0usize..150, 0..80),
            ys in proptest::collection::btree_set(0usize..150, 0..80),
        ) {
            let mut a = BitSet::new(150);
            a.extend(xs.iter().copied());
            let mut b = BitSet::new(150);
            b.extend(ys.iter().copied());
            prop_assert_eq!(a.intersection_len(&b), xs.intersection(&ys).count());
            prop_assert_eq!(a.intersects(&b), xs.intersection(&ys).next().is_some());
            prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
        }
    }
}
