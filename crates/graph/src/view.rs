//! Zero-copy candidate view over sharded CSR snapshot segments.
//!
//! [`FeasibleView`] is the hot-path replacement for materializing a
//! [`FeasibleGraph`](crate::FeasibleGraph) per query. Instead of copying
//! every adjacency row out of the snapshot (per-row bitsets, sorted
//! neighbor lists, edge-weight vectors), it builds only the *compact
//! candidate index* — origin/dist/order permutations plus one masked
//! adjacency word matrix — and keeps Arc handles on the snapshot's CSR
//! [`GraphSegment`](crate::GraphSegment)s for anything that needs the raw
//! rows (edge weights, stamping). The word matrix is generated
//! shard-segment-wise: candidates are bucketed by home shard and each
//! segment's CSR rows are scanned once, masking global neighbor ids
//! against the candidate bitmap straight into packed compact-id words.
//!
//! The view implements [`CandidateTopology`](crate::CandidateTopology)
//! with bit-for-bit the same candidate set, ordering, and adjacency words
//! as `FeasibleGraph::extract_from` over the same sharded graph — the
//! equivalence the query engines' bit-identity proptests pin down.

use std::collections::HashMap;
use std::sync::Arc;

use crate::id::NodeId;
use crate::segment::{AdjacencySource, GraphSegment, ShardedGraph};
use crate::topology::CandidateTopology;
use crate::Dist;

/// A borrowed, zero-copy candidate space over a sharded world snapshot.
///
/// Layout mirrors [`FeasibleGraph`](crate::FeasibleGraph)'s index side —
/// compact id `0` is the initiator, candidates follow in ascending
/// original-id order, `candidate_order` sorts by `(distance, id)` — but
/// adjacency lives only as one flat masked word matrix and the snapshot's
/// CSR segments stay where they are, Arc-shared, never copied.
#[derive(Clone, Debug)]
pub struct FeasibleView {
    /// compact index → original vertex id; `origin[0]` is the initiator.
    origin: Vec<NodeId>,
    /// original vertex id → compact index, sized to the candidate set
    /// (not the world).
    compact_of: HashMap<u32, u32>,
    /// social distance `d_{v,q}` per compact vertex.
    dist: Vec<Dist>,
    /// masked adjacency words over compact ids, `adj_stride` per vertex.
    adj_words: Vec<u64>,
    adj_stride: usize,
    /// compact candidate indices (excluding 0) sorted by (distance, origin).
    order: Vec<u32>,
    /// compact index → position in `order` (`u32::MAX` for the initiator).
    order_pos: Vec<u32>,
    /// Arc handles on the snapshot's CSR segments (residue-partitioned);
    /// raw-row reads (edge weights) borrow from these, zero copies.
    segments: Vec<Arc<GraphSegment>>,
    /// the social radius used for the extraction.
    radius: usize,
}

impl FeasibleView {
    /// Build the radius-`s` candidate view of `initiator` over a sharded
    /// snapshot graph.
    ///
    /// Runs the same Definition-1 bounded-distance DP as
    /// `FeasibleGraph::extract_from`, then generates the masked adjacency
    /// word matrix segment-wise instead of copying rows.
    pub fn extract(graph: &ShardedGraph, initiator: NodeId, s: usize) -> Self {
        let dists = crate::bounded_distances_from(graph, initiator, s);
        let n = graph.node_count();
        let shards = graph.shard_count();

        // Candidate index: initiator first, then ascending original id —
        // identical numbering to the materialized path.
        let mut origin = Vec::new();
        let mut compact_scratch: Vec<u32> = vec![u32::MAX; n];
        origin.push(initiator);
        compact_scratch[initiator.index()] = 0;
        for v in 0..n {
            if v != initiator.index() && dists[v].is_some() {
                compact_scratch[v] = origin.len() as u32;
                origin.push(NodeId(v as u32));
            }
        }

        let f = origin.len();
        let dist: Vec<Dist> = origin
            .iter()
            .map(|v| dists[v.index()].expect("kept vertices are reachable"))
            .collect();

        // Masked word matrix, generated shard-segment-wise: bucket the
        // candidates by home shard, then scan each segment's CSR rows once,
        // masking global neighbor ids against the candidate bitmap.
        let adj_stride = f.div_ceil(64);
        let mut adj_words = vec![0u64; f * adj_stride];
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (ci, ov) in origin.iter().enumerate() {
            by_shard[ov.index() % shards].push(ci as u32);
        }
        for (shard, members) in by_shard.iter().enumerate() {
            let seg = graph.segment(shard);
            for &ci in members {
                let local = origin[ci as usize].index() / shards;
                let (nbs, _weights) = seg.row(local);
                let row = &mut adj_words[ci as usize * adj_stride..][..adj_stride];
                for &u in nbs {
                    let cu = compact_scratch[u as usize];
                    if cu != u32::MAX {
                        row[cu as usize / 64] |= 1u64 << (cu % 64);
                    }
                }
            }
        }

        let mut order: Vec<u32> = (1..f as u32).collect();
        order.sort_unstable_by_key(|&i| (dist[i as usize], origin[i as usize].0));
        let mut order_pos = vec![u32::MAX; f];
        for (pos, &c) in order.iter().enumerate() {
            order_pos[c as usize] = pos as u32;
        }

        let compact_of: HashMap<u32, u32> = origin
            .iter()
            .enumerate()
            .map(|(ci, ov)| (ov.0, ci as u32))
            .collect();

        FeasibleView {
            origin,
            compact_of,
            dist,
            adj_words,
            adj_stride,
            order,
            order_pos,
            segments: (0..shards).map(|s| Arc::clone(graph.segment(s))).collect(),
            radius: s,
        }
    }

    /// Number of vertices in the view (initiator included).
    #[inline]
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// Whether the view holds only the initiator.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.origin.len() <= 1
    }

    /// The social radius `s` this view was extracted with.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Original id of compact vertex `i`.
    #[inline]
    pub fn origin(&self, i: u32) -> NodeId {
        self.origin[i as usize]
    }

    /// Compact index of original vertex `v`, if it lies within the radius.
    #[inline]
    pub fn compact(&self, v: NodeId) -> Option<u32> {
        self.compact_of.get(&v.0).copied()
    }

    /// Social distance `d_{v,q}` of compact vertex `i`.
    #[inline]
    pub fn dist(&self, i: u32) -> Dist {
        self.dist[i as usize]
    }

    /// The packed masked adjacency words of compact vertex `i`.
    #[inline]
    pub fn adj_words(&self, i: u32) -> &[u64] {
        let start = i as usize * self.adj_stride;
        &self.adj_words[start..start + self.adj_stride]
    }

    /// Candidate compact indices sorted by `(distance, original id)`.
    #[inline]
    pub fn candidate_order(&self) -> &[u32] {
        &self.order
    }

    /// Inverse permutation of [`candidate_order`](Self::candidate_order).
    #[inline]
    pub fn order_pos(&self, i: u32) -> u32 {
        self.order_pos[i as usize]
    }

    /// Adjacency words generated for this view — the per-query word
    /// traffic the zero-copy path pays (index build only; CSR rows are
    /// borrowed, never copied).
    #[inline]
    pub fn words_generated(&self) -> u64 {
        self.adj_words.len() as u64
    }

    /// Weight of the edge between compact vertices `i` and `j`, read
    /// straight from the borrowed CSR segment (binary search on the
    /// global-id row).
    ///
    /// # Panics
    /// Panics if the edge does not exist.
    pub fn edge_weight(&self, i: u32, j: u32) -> Dist {
        let gi = self.origin[i as usize];
        let gj = self.origin[j as usize].0;
        let shards = self.segments.len();
        let (nbs, ws) = self.segments[gi.index() % shards].row(gi.index() / shards);
        let pos = nbs
            .binary_search(&gj)
            .expect("edge must exist in the feasible view");
        ws[pos]
    }
}

impl CandidateTopology for FeasibleView {
    #[inline]
    fn len(&self) -> usize {
        FeasibleView::len(self)
    }

    #[inline]
    fn radius(&self) -> usize {
        FeasibleView::radius(self)
    }

    #[inline]
    fn origin(&self, i: u32) -> NodeId {
        FeasibleView::origin(self, i)
    }

    #[inline]
    fn compact(&self, v: NodeId) -> Option<u32> {
        FeasibleView::compact(self, v)
    }

    #[inline]
    fn dist(&self, i: u32) -> Dist {
        FeasibleView::dist(self, i)
    }

    #[inline]
    fn adj_words(&self, i: u32) -> &[u64] {
        FeasibleView::adj_words(self, i)
    }

    #[inline]
    fn candidate_order(&self) -> &[u32] {
        FeasibleView::candidate_order(self)
    }

    #[inline]
    fn order_pos(&self, i: u32) -> u32 {
        FeasibleView::order_pos(self, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeasibleGraph, GraphBuilder, SocialGraph};

    fn sample(n: u32, edges: &[(u32, u32, Dist)]) -> SocialGraph {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in edges {
            b.add_edge(NodeId(u), NodeId(v), w).unwrap();
        }
        b.build()
    }

    fn assert_view_matches_graph(g: &SocialGraph, shards: usize, initiator: NodeId, s: usize) {
        let sharded = ShardedGraph::from_flat(g, shards);
        let fg = FeasibleGraph::extract_from(&sharded, initiator, s);
        let view = FeasibleView::extract(&sharded, initiator, s);

        assert_eq!(view.len(), fg.len());
        assert_eq!(view.radius(), fg.radius());
        assert_eq!(view.candidate_order(), fg.candidate_order());
        for i in 0..fg.len() as u32 {
            assert_eq!(view.origin(i), fg.origin(i));
            assert_eq!(view.dist(i), fg.dist(i));
            assert_eq!(view.order_pos(i), fg.order_pos(i));
            assert_eq!(view.adj_words(i), fg.adj_words(i), "row {i}");
        }
        for v in 0..g.node_count() as u32 {
            assert_eq!(view.compact(NodeId(v)), fg.compact(NodeId(v)));
        }
    }

    #[test]
    fn view_is_bit_identical_to_the_materialized_graph() {
        let g = sample(
            8,
            &[
                (0, 1, 5),
                (0, 2, 1),
                (1, 2, 1),
                (2, 3, 2),
                (3, 4, 2),
                (4, 6, 1),
                (1, 7, 3),
            ],
        );
        for shards in [1, 2, 3, 4] {
            for s in 0..4 {
                assert_view_matches_graph(&g, shards, NodeId(0), s);
                assert_view_matches_graph(&g, shards, NodeId(3), s);
            }
        }
    }

    #[test]
    fn view_matches_graph_on_a_pseudorandom_world() {
        // Deterministic LCG-built graph: dense enough that shard masking
        // and word boundaries (>64 candidates) are exercised.
        let n: u32 = 90;
        let mut edges = Vec::new();
        let mut state: u64 = 0x5eed_cafe;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..600 {
            let u = next() % n;
            let v = next() % n;
            if u != v {
                edges.push((u.min(v), u.max(v), (next() % 9 + 1) as Dist));
            }
        }
        edges.sort_unstable();
        edges.dedup_by_key(|e| (e.0, e.1));
        let g = sample(n, &edges);
        for shards in [1, 3, 7] {
            assert_view_matches_graph(&g, shards, NodeId(1), 2);
            assert_view_matches_graph(&g, shards, NodeId(42), 1);
        }
    }

    #[test]
    fn edge_weights_read_from_borrowed_segments() {
        let g = sample(6, &[(0, 1, 5), (0, 2, 1), (1, 2, 7), (2, 3, 2)]);
        let sharded = ShardedGraph::from_flat(&g, 3);
        let fg = FeasibleGraph::extract_from(&sharded, NodeId(0), 2);
        let view = FeasibleView::extract(&sharded, NodeId(0), 2);
        for i in 0..fg.len() as u32 {
            for &j in fg.neighbors(i) {
                assert_eq!(view.edge_weight(i, j), fg.edge_weight(i, j));
            }
        }
    }

    #[test]
    fn words_generated_counts_the_masked_matrix() {
        let g = sample(6, &[(0, 1, 5), (0, 2, 1), (1, 2, 7), (2, 3, 2)]);
        let sharded = ShardedGraph::from_flat(&g, 2);
        let view = FeasibleView::extract(&sharded, NodeId(0), 2);
        assert_eq!(
            view.words_generated(),
            (view.len() * view.len().div_ceil(64)) as u64
        );
    }
}
