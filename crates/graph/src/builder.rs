use std::collections::BTreeMap;

use crate::{Dist, GraphError, NodeId, SocialGraph};

/// Validated, order-insensitive construction of a [`SocialGraph`].
///
/// The builder rejects self-loops, zero weights, out-of-range endpoints and
/// conflicting duplicate edges (the same unordered pair with two different
/// weights). Supplying the same edge twice with the *same* weight is
/// accepted and deduplicated, which makes composing generators easier.
///
/// ```
/// use stgq_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), 4).unwrap();
/// b.add_edge(NodeId(1), NodeId(2), 9).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    node_count: usize,
    /// Unordered pair (min, max) → weight.
    edges: BTreeMap<(u32, u32), Dist>,
    labels: Option<Vec<String>>,
}

impl GraphBuilder {
    /// A builder for a graph with vertices `0..node_count`.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: BTreeMap::new(),
            labels: None,
        }
    }

    /// Number of vertices the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Attach human-readable labels.
    ///
    /// # Panics
    /// Panics if `labels.len() != node_count`.
    pub fn set_labels(&mut self, labels: Vec<String>) -> &mut Self {
        assert_eq!(
            labels.len(),
            self.node_count,
            "one label per vertex required"
        );
        self.labels = Some(labels);
        self
    }

    /// Add an undirected edge with the given social distance.
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        weight: Dist,
    ) -> Result<&mut Self, GraphError> {
        for node in [u, v] {
            if node.index() >= self.node_count {
                return Err(GraphError::UnknownNode {
                    node,
                    node_count: self.node_count,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if weight == 0 {
            return Err(GraphError::ZeroWeight { a: u, b: v });
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        match self.edges.insert(key, weight) {
            Some(prev) if prev != weight => Err(GraphError::ConflictingEdge {
                a: NodeId(key.0),
                b: NodeId(key.1),
                first: prev,
                second: weight,
            }),
            _ => Ok(self),
        }
    }

    /// Whether the unordered pair is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains_key(&(u.0.min(v.0), u.0.max(v.0)))
    }

    /// Finalize into an immutable CSR graph.
    pub fn build(self) -> SocialGraph {
        let mut adjacency: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); self.node_count];
        for (&(a, b), &w) in &self.edges {
            adjacency[a as usize].push((b, w));
            adjacency[b as usize].push((a, w));
        }
        // BTreeMap iteration gives (a, b) in lexicographic order, which sorts
        // each `adjacency[a]` row, but rows for `b` receive entries in `a`
        // order which is already ascending too. Sort defensively anyway: the
        // cost is negligible at build time and correctness of `has_edge`'s
        // binary search depends on it.
        for row in &mut adjacency {
            row.sort_unstable_by_key(|&(u, _)| u);
        }
        SocialGraph::from_sorted_adjacency(adjacency, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(1), NodeId(1), 3).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: NodeId(1) });
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(5), 3).unwrap_err();
        assert_eq!(
            err,
            GraphError::UnknownNode {
                node: NodeId(5),
                node_count: 2
            }
        );
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(1), 0).unwrap_err();
        assert_eq!(
            err,
            GraphError::ZeroWeight {
                a: NodeId(0),
                b: NodeId(1)
            }
        );
    }

    #[test]
    fn duplicate_same_weight_is_deduplicated() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 3).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 3).unwrap();
        assert_eq!(b.edge_count(), 1);
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn duplicate_conflicting_weight_is_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 3).unwrap();
        let err = b.add_edge(NodeId(1), NodeId(0), 4).unwrap_err();
        assert!(matches!(
            err,
            GraphError::ConflictingEdge {
                first: 3,
                second: 4,
                ..
            }
        ));
    }

    #[test]
    fn has_edge_is_orientation_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(2), NodeId(0), 1).unwrap();
        assert!(b.has_edge(NodeId(0), NodeId(2)));
        assert!(!b.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn isolated_vertices_are_preserved() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId(4)), 0);
    }
}
