use std::fmt;

use crate::NodeId;

/// Errors produced while constructing or querying a social graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex outside `0..node_count`.
    UnknownNode {
        /// The offending vertex.
        node: NodeId,
        /// Number of vertices in the graph under construction.
        node_count: usize,
    },
    /// A self-loop was supplied; social distance to oneself is meaningless.
    SelfLoop {
        /// The vertex that was connected to itself.
        node: NodeId,
    },
    /// The same unordered pair was supplied twice with different weights.
    ConflictingEdge {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
        /// Weight seen first.
        first: u64,
        /// Conflicting weight seen later.
        second: u64,
    },
    /// A zero edge weight was supplied. The paper's distances are strictly
    /// positive; zero-weight edges would make "closeness" degenerate and
    /// break the distance-pruning bound.
    ZeroWeight {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { node, node_count } => {
                write!(
                    f,
                    "edge references {node} but the graph has {node_count} vertices"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on {node} is not allowed"),
            GraphError::ConflictingEdge {
                a,
                b,
                first,
                second,
            } => write!(
                f,
                "edge {a}-{b} supplied twice with different weights ({first} then {second})"
            ),
            GraphError::ZeroWeight { a, b } => {
                write!(
                    f,
                    "edge {a}-{b} has zero weight; social distances must be positive"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::UnknownNode {
            node: NodeId(9),
            node_count: 3,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('3'));

        let e = GraphError::SelfLoop { node: NodeId(1) };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::ConflictingEdge {
            a: NodeId(0),
            b: NodeId(1),
            first: 3,
            second: 4,
        };
        assert!(e.to_string().contains("different weights"));

        let e = GraphError::ZeroWeight {
            a: NodeId(0),
            b: NodeId(1),
        };
        assert!(e.to_string().contains("zero weight"));
    }
}
