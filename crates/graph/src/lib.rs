//! Social-graph substrate for the STGQ reproduction.
//!
//! This crate provides everything the query algorithms of
//! *On Social-Temporal Group Query with Acquaintance Constraint* (VLDB 2011)
//! need from the social-network side:
//!
//! * [`SocialGraph`] — an undirected weighted graph in CSR form, where each
//!   vertex is a candidate attendee and each edge weight is an integral
//!   *social distance* (smaller = closer).
//! * [`GraphBuilder`] — ergonomic, validated construction.
//! * [`bounded_distances`] — the paper's Definition 1: the *i-edge minimum
//!   distance* dynamic program (`s` rounds of Bellman–Ford relaxation).
//! * [`FeasibleGraph`] — the radius-graph extraction of §3.2.1: the compact
//!   subgraph of vertices reachable from the initiator within `s` edges,
//!   re-indexed densely with the initiator at index 0, plus neighbor bitsets
//!   and a distance-sorted access order — the exact inputs SGSelect needs.
//! * [`CandidateTopology`] — the trait seam the query kernels descend
//!   over, implemented by both `FeasibleGraph` (materialized
//!   reference/compat path) and [`FeasibleView`] (zero-copy hot path).
//! * [`FeasibleView`] — the borrowed form of the candidate space: a compact
//!   index plus a masked adjacency word matrix generated shard-segment-wise
//!   over the snapshot's CSR [`GraphSegment`]s, no per-row copies.
//! * [`BitSet`] — a small dense bitset used pervasively for `VS`/`VA` and
//!   neighborhood operations.
//! * [`kplex`] — acquaintance-constraint predicates (a feasible group is a
//!   `(k+1)`-plex containing the initiator).
//! * [`analysis`] — degree/component statistics used by the data generators
//!   and the benchmark harness.
//!
//! All distances are `u64`; "unreachable" is represented as `Option::None`
//! rather than a sentinel.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
mod bitset;
mod builder;
mod distance;
mod error;
mod graph;
mod id;
pub mod kplex;
mod radius;
mod segment;
pub mod text;
mod topology;
mod view;

#[cfg(feature = "serde")]
mod io;

pub use bitset::{for_each_zero_bit, BitSet, ZeroIter};
pub use builder::GraphBuilder;
pub use distance::{bounded_distances, bounded_distances_from, bounded_distances_into};
pub use error::GraphError;
pub use graph::{EdgeRef, SocialGraph};
pub use id::NodeId;
pub use radius::FeasibleGraph;
pub use segment::{AdjacencySource, GraphSegment, ShardedGraph};
pub use topology::CandidateTopology;
pub use view::FeasibleView;

#[cfg(feature = "serde")]
pub use io::GraphData;

/// Social distance type: integral, as in the paper's worked examples.
pub type Dist = u64;
