//! Structural statistics over social graphs.
//!
//! Used by the data generators (to assert the synthetic networks have the
//! degree/clustering shape the paper's datasets have) and by the benchmark
//! harness (to report workload characteristics next to measured numbers).

use crate::{NodeId, SocialGraph};

/// Summary of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Arithmetic mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Compute [`DegreeStats`] for a graph. Returns `None` for the empty graph.
pub fn degree_stats(graph: &SocialGraph) -> Option<DegreeStats> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut degs: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    degs.sort_unstable();
    let sum: usize = degs.iter().sum();
    Some(DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: sum as f64 / n as f64,
        median: degs[n / 2],
    })
}

/// Connected components via iterative DFS; returns one sorted vector of
/// vertex ids per component, largest component first.
pub fn connected_components(graph: &SocialGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        stack.push(start as u32);
        let mut comp = Vec::new();
        while let Some(v) = stack.pop() {
            comp.push(NodeId(v));
            for &u in graph.neighbors(NodeId(v)) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Global clustering coefficient (transitivity): `3·triangles / open triads`.
///
/// Returns 0.0 when the graph has no path of length two. Coauthorship-style
/// networks (the paper's synthetic source) have high transitivity; random
/// graphs of the same density do not — the datagen tests rely on this
/// distinction.
pub fn global_clustering(graph: &SocialGraph) -> f64 {
    let mut triangles = 0usize; // each counted 3 times below
    let mut triads = 0usize;
    for v in graph.nodes() {
        let d = graph.degree(v);
        triads += d * d.saturating_sub(1) / 2;
        let nbrs = graph.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(NodeId(a), NodeId(b)) {
                    triangles += 1;
                }
            }
        }
    }
    if triads == 0 {
        0.0
    } else {
        triangles as f64 / triads as f64
    }
}

/// Fraction of vertex pairs that are connected by an edge.
pub fn density(graph: &SocialGraph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    graph.edge_count() as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1)
                .unwrap();
        }
        b.build()
    }

    fn complete_graph(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                b.add_edge(NodeId(i), NodeId(j), 1).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn degree_stats_on_path() {
        let s = degree_stats(&path_graph(5)).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.median, 2);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(degree_stats(&g).is_none());
    }

    #[test]
    fn components_split_correctly() {
        // Two components: a path of 3 and an edge, plus an isolated vertex.
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 1).unwrap();
        let g = b.build();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(3), NodeId(4)]);
        assert_eq!(comps[2], vec![NodeId(5)]);
    }

    #[test]
    fn clustering_extremes() {
        assert_eq!(global_clustering(&path_graph(10)), 0.0);
        let c = global_clustering(&complete_graph(6));
        assert!(
            (c - 1.0).abs() < 1e-12,
            "complete graph transitivity is 1, got {c}"
        );
    }

    #[test]
    fn density_extremes() {
        assert!((density(&complete_graph(5)) - 1.0).abs() < 1e-12);
        assert_eq!(density(&GraphBuilder::new(1).build()), 0.0);
        let d = density(&path_graph(5));
        assert!((d - 4.0 / 10.0).abs() < 1e-12);
    }
}
