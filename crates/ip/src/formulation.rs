//! Model builders for the Appendix-D formulation.

// Model assembly walks parallel id spaces; indexed loops mirror the
// constraint numbering of Appendix D.
#![allow(clippy::needless_range_loop)]

use stgq_graph::FeasibleGraph;
use stgq_mip::{Cmp, LinExpr, Model, VarId};
use stgq_schedule::Calendar;

use stgq_core::{SgqQuery, StgqQuery};

/// Which formulation to build (see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpStyle {
    /// Literal Appendix-D model with per-attendee path variables.
    Full,
    /// Equivalent model with precomputed bounded distances.
    Compact,
}

/// A built model plus the variable handles needed to read the answer back.
pub struct IpModel {
    /// The MIP.
    pub model: Model,
    /// `φ_u` per compact vertex (`phi[0]` is the initiator).
    pub phi: Vec<VarId>,
    /// `τ_t` per window start `t ∈ 0..=T−m` (empty for SGQ).
    pub tau: Vec<VarId>,
}

/// Build the SGQ model on a feasible graph.
pub fn build_sgq_model(fg: &FeasibleGraph, query: &SgqQuery, style: IpStyle) -> IpModel {
    let mut b = Builder::new(fg, query.p(), query.k(), style, query.s());
    b.social_constraints();
    b.finish()
}

/// Build the STGQ model: the SGQ model plus constraints (9) and (10).
///
/// `calendars` is indexed by **original** vertex id.
pub fn build_stgq_model(
    fg: &FeasibleGraph,
    calendars: &[Calendar],
    query: &StgqQuery,
    style: IpStyle,
) -> IpModel {
    let mut b = Builder::new(fg, query.p(), query.k(), style, query.s());
    b.social_constraints();
    b.temporal_constraints(calendars, query.m());
    b.finish()
}

struct Builder<'a> {
    fg: &'a FeasibleGraph,
    p: usize,
    k: usize,
    s: usize,
    style: IpStyle,
    model: Model,
    phi: Vec<VarId>,
    tau: Vec<VarId>,
}

impl<'a> Builder<'a> {
    fn new(fg: &'a FeasibleGraph, p: usize, k: usize, style: IpStyle, s: usize) -> Self {
        let mut model = Model::new();
        let phi: Vec<VarId> = (0..fg.len())
            .map(|u| model.add_binary(format!("phi_{u}")))
            .collect();
        Builder {
            fg,
            p,
            k,
            s,
            style,
            model,
            phi,
            tau: Vec::new(),
        }
    }

    /// Constraints (1)–(3) plus the objective; constraints (4)–(8) and the
    /// `δ_u` machinery only in the full style.
    fn social_constraints(&mut self) {
        let f = self.fg.len();
        // (1) Σ φ_u = p
        let all: Vec<_> = self.phi.iter().map(|&v| (v, 1.0)).collect();
        self.model
            .add_constraint(LinExpr::from_terms(all), Cmp::Eq, self.p as f64);
        // (2) φ_q = 1
        self.model
            .add_constraint(LinExpr::from_terms([(self.phi[0], 1.0)]), Cmp::Eq, 1.0);
        // (3) Σ_{v ∈ N_u} φ_v ≥ (p−1)φ_u − k  ∀u
        for u in 0..f as u32 {
            let mut e = LinExpr::new();
            for &nb in self.fg.neighbors(u) {
                e.add_term(self.phi[nb as usize], 1.0);
            }
            e.add_term(self.phi[u as usize], -((self.p - 1) as f64));
            self.model.add_constraint(e, Cmp::Ge, -(self.k as f64));
        }

        match self.style {
            IpStyle::Compact => {
                // min Σ d_u φ_u with the Definition-1 distances.
                let obj: Vec<_> = (0..f)
                    .map(|u| (self.phi[u], self.fg.dist(u as u32) as f64))
                    .collect();
                self.model.set_objective(LinExpr::from_terms(obj));
            }
            IpStyle::Full => self.full_path_machinery(),
        }
    }

    /// Constraints (4)–(8): per attendee `u ≠ q`, a unit flow from `q` to
    /// `u` over directed feasible-graph edges selects a path of at most `s`
    /// edges whose length is `δ_u`; minimizing `Σ δ_u` makes it shortest.
    fn full_path_machinery(&mut self) {
        let f = self.fg.len();
        // Directed edge list over the feasible graph.
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        for i in 0..f as u32 {
            for &j in self.fg.neighbors(i) {
                let w = edge_weight(self.fg, i, j);
                arcs.push((i, j, w));
            }
        }

        let mut delta = Vec::with_capacity(f);
        for u in 0..f {
            delta.push(
                self.model
                    .add_cont(format!("delta_{u}"), 0.0, f64::INFINITY),
            );
        }
        // δ_q = 0 (no path variables exist for q).
        self.model
            .add_constraint(LinExpr::from_terms([(delta[0], 1.0)]), Cmp::Eq, 0.0);

        for u in 1..f {
            // π_{u,i,j} per directed arc.
            let pi: Vec<VarId> = arcs
                .iter()
                .map(|&(i, j, _)| self.model.add_binary(format!("pi_{u}_{i}_{j}")))
                .collect();

            // (4) Σ_{i ∈ N_q} π_{u,q,i} = φ_u — flow leaves q iff u attends.
            let mut out_q = LinExpr::new();
            // (5) Σ_{i ∈ N_u} π_{u,i,u} = φ_u — flow enters u iff u attends.
            let mut into_u = LinExpr::new();
            // (6) conservation at every other vertex.
            let mut net: Vec<LinExpr> = vec![LinExpr::new(); f];
            // (7) Σ c_ij π_{u,i,j} = δ_u.
            let mut dist = LinExpr::new();
            // (8) Σ π_{u,i,j} ≤ s.
            let mut hops = LinExpr::new();

            for (&(i, j, w), &v) in arcs.iter().zip(&pi) {
                if i == 0 {
                    out_q.add_term(v, 1.0);
                }
                if j as usize == u {
                    into_u.add_term(v, 1.0);
                }
                net[j as usize].add_term(v, 1.0);
                net[i as usize].add_term(v, -1.0);
                dist.add_term(v, w);
                hops.add_term(v, 1.0);
            }
            out_q.add_term(self.phi[u], -1.0);
            self.model.add_constraint(out_q, Cmp::Eq, 0.0);
            into_u.add_term(self.phi[u], -1.0);
            self.model.add_constraint(into_u, Cmp::Eq, 0.0);
            for (j, e) in net.into_iter().enumerate() {
                if j != 0 && j != u && !e.terms.is_empty() {
                    self.model.add_constraint(e, Cmp::Eq, 0.0);
                }
            }
            dist.add_term(delta[u], -1.0);
            self.model.add_constraint(dist, Cmp::Eq, 0.0);
            self.model.add_constraint(hops, Cmp::Le, self.s as f64);
        }

        let obj: Vec<_> = delta.iter().map(|&d| (d, 1.0)).collect();
        self.model.set_objective(LinExpr::from_terms(obj));
    }

    /// Constraints (9)–(10): exactly one activity start `τ_t`, and `φ_u`
    /// excluded whenever `u` is busy somewhere in `[t, t+m−1]`.
    fn temporal_constraints(&mut self, calendars: &[Calendar], m: usize) {
        let horizon = calendars.first().map(Calendar::horizon).unwrap_or(0);
        if horizon < m {
            // No window fits: Σ τ = 1 over zero variables is infeasible,
            // which is exactly the right answer.
            self.model.add_constraint(LinExpr::new(), Cmp::Eq, 1.0);
            return;
        }
        let starts = horizon - m + 1;
        self.tau = (0..starts)
            .map(|t| self.model.add_binary(format!("tau_{t}")))
            .collect();
        // (9) Σ τ_t = 1.
        let all: Vec<_> = self.tau.iter().map(|&v| (v, 1.0)).collect();
        self.model
            .add_constraint(LinExpr::from_terms(all), Cmp::Eq, 1.0);
        // (10) sparse: φ_u + τ_t ≤ 1 when u is busy within the window.
        for u in 0..self.fg.len() {
            let cal = &calendars[self.fg.origin(u as u32).index()];
            for t in 0..starts {
                if !cal.available_in_window(t, m) {
                    self.model.add_constraint(
                        LinExpr::from_terms([(self.phi[u], 1.0), (self.tau[t], 1.0)]),
                        Cmp::Le,
                        1.0,
                    );
                }
            }
        }
    }

    fn finish(self) -> IpModel {
        IpModel {
            model: self.model,
            phi: self.phi,
            tau: self.tau,
        }
    }
}

/// Weight of the feasible-graph edge `i`–`j` (looked up on the original
/// graph ids via the compact adjacency; both endpoints are feasible).
fn edge_weight(fg: &FeasibleGraph, i: u32, j: u32) -> f64 {
    debug_assert!(fg.adjacent(i, j));
    fg.edge_weight(i, j) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_graph::{GraphBuilder, NodeId};

    fn fg() -> FeasibleGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 4).unwrap();
        FeasibleGraph::extract(&b.build(), NodeId(0), 2)
    }

    #[test]
    fn compact_model_shape() {
        let fg = fg();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        let ip = build_sgq_model(&fg, &q, IpStyle::Compact);
        assert_eq!(ip.phi.len(), 4);
        assert!(ip.tau.is_empty());
        // vars: 4 binaries; rows: (1) + (2) + 4×(3) = 6.
        assert_eq!(ip.model.var_count(), 4);
        assert_eq!(ip.model.constraint_count(), 6);
    }

    #[test]
    fn full_model_has_path_variables() {
        let fg = fg();
        let q = SgqQuery::new(3, 2, 1).unwrap();
        let ip = build_sgq_model(&fg, &q, IpStyle::Full);
        // 4 φ + 4 δ + 3 attendees × 8 directed arcs of π.
        assert_eq!(ip.model.var_count(), 4 + 4 + 3 * 8);
        assert!(ip.model.constraint_count() > 10);
    }

    #[test]
    fn temporal_rows_are_sparse() {
        let fg = fg();
        let q = StgqQuery::new(2, 2, 1, 2).unwrap();
        let mut cals = vec![Calendar::all_available(4); 4];
        cals[1].set_available(0, false); // v1 busy in slot 0 only
        let ip = build_stgq_model(&fg, &cals, &q, IpStyle::Compact);
        assert_eq!(ip.tau.len(), 3); // starts 0, 1, 2
                                     // Base social rows (6) + (9) + one sparse (10) row: v1 busy in
                                     // window starting at 0 only.
        assert_eq!(ip.model.constraint_count(), 6 + 1 + 1);
    }

    #[test]
    fn impossible_horizon_yields_contradictory_row() {
        let fg = fg();
        let q = StgqQuery::new(2, 2, 1, 9).unwrap();
        let cals = vec![Calendar::all_available(4); 4];
        let ip = build_stgq_model(&fg, &cals, &q, IpStyle::Compact);
        assert!(ip.tau.is_empty());
        // The builder adds `0 = 1`, making the model infeasible as required.
        let sol = stgq_mip::solve_mip(&ip.model, &stgq_mip::MipOptions::default()).unwrap();
        assert_eq!(sol.status, stgq_mip::MipStatus::Infeasible);
    }
}
