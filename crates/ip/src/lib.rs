//! The Integer Programming formulation of SGQ/STGQ (Appendix D of the
//! paper), solved with the from-scratch `stgq-mip` branch & bound.
//!
//! Two model styles are provided:
//!
//! * [`IpStyle::Full`] — the literal Appendix-D model: binary group
//!   indicators `φ_u`, per-attendee shortest-path flow variables
//!   `π_{u,i,j}` over directed edges with the radius budget (constraint 8),
//!   distances `δ_u` tied by constraint (7), and activity-start indicators
//!   `τ_t` (constraints 9–10). Faithful but large — `O(|E|·|V|)` binaries —
//!   exactly why the paper's IP column is the slowest.
//! * [`IpStyle::Compact`] — an equivalent model that precomputes `d_{v,q}`
//!   with the same Definition-1 DP the search algorithms use (the radius
//!   extraction is sound, §3.2.1), keeping only `φ_u` and `τ_t`:
//!   `min Σ d_u φ_u` under constraints (1), (2), (3), (9), (10). This is
//!   the style the benchmark harness can afford at figure scale; the full
//!   style is cross-validated against it (and against SGSelect) on small
//!   instances in the test suite.
//!
//! Constraint (10) is added sparsely: `φ_u + τ_t ≤ 1` only when `u` is
//! unavailable somewhere in the window `[t, t+m−1]` (when `u` is available
//! the paper's row is vacuous).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod formulation;
mod solve;

pub use error::IpError;
pub use formulation::{build_sgq_model, build_stgq_model, IpModel, IpStyle};
pub use solve::{solve_sgq_ip, solve_stgq_ip, IpSgqResult, IpStgqResult};
