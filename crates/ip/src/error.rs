use std::fmt;

use stgq_core::QueryError;
use stgq_mip::MipError;

/// Errors from building or solving the IP formulation.
#[derive(Debug, Clone, PartialEq)]
pub enum IpError {
    /// The query or its inputs were malformed.
    Query(QueryError),
    /// The underlying MIP solver failed (budget exhaustion, bad model).
    Solver(MipError),
    /// The solver reported an unbounded model — impossible for a correctly
    /// built SGQ/STGQ formulation (all variables are bounded), so this
    /// indicates an internal inconsistency.
    UnexpectedUnbounded,
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::Query(e) => write!(f, "query error: {e}"),
            IpError::Solver(e) => write!(f, "MIP solver error: {e}"),
            IpError::UnexpectedUnbounded => {
                write!(
                    f,
                    "IP model unexpectedly unbounded (internal inconsistency)"
                )
            }
        }
    }
}

impl std::error::Error for IpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IpError::Query(e) => Some(e),
            IpError::Solver(e) => Some(e),
            IpError::UnexpectedUnbounded => None,
        }
    }
}

impl From<QueryError> for IpError {
    fn from(e: QueryError) -> Self {
        IpError::Query(e)
    }
}

impl From<MipError> for IpError {
    fn from(e: MipError) -> Self {
        IpError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: IpError = MipError::NotANumber.into();
        assert!(e.to_string().contains("solver"));
        assert!(IpError::UnexpectedUnbounded
            .to_string()
            .contains("unbounded"));
    }
}
