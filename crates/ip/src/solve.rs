//! Solving the formulations and mapping answers back to group/period form.

use stgq_graph::{FeasibleGraph, NodeId, SocialGraph};
use stgq_mip::{solve_mip, MipOptions, MipStatus};
use stgq_schedule::pivot::pivot_of_window;
use stgq_schedule::{Calendar, SlotRange};

use stgq_core::{QueryError, SgqQuery, SgqSolution, StgqQuery, StgqSolution};

use crate::formulation::{build_sgq_model, build_stgq_model, IpStyle};
use crate::IpError;

/// Result of an IP-based SGQ solve.
#[derive(Clone, Debug, PartialEq)]
pub struct IpSgqResult {
    /// The optimal group, or `None` when the model is infeasible.
    pub solution: Option<SgqSolution>,
    /// Branch-and-bound nodes the solver explored.
    pub nodes: u64,
}

/// Result of an IP-based STGQ solve.
#[derive(Clone, Debug, PartialEq)]
pub struct IpStgqResult {
    /// The optimal group and period, or `None` when infeasible.
    pub solution: Option<StgqSolution>,
    /// Branch-and-bound nodes the solver explored.
    pub nodes: u64,
}

/// Solve an SGQ by Integer Programming.
pub fn solve_sgq_ip(
    graph: &SocialGraph,
    initiator: NodeId,
    query: &SgqQuery,
    style: IpStyle,
    opts: &MipOptions,
) -> Result<IpSgqResult, IpError> {
    if initiator.index() >= graph.node_count() {
        return Err(QueryError::InitiatorOutOfRange {
            initiator,
            node_count: graph.node_count(),
        }
        .into());
    }
    let fg = FeasibleGraph::extract(graph, initiator, query.s());
    if fg.len() < query.p() {
        return Ok(IpSgqResult {
            solution: None,
            nodes: 0,
        });
    }
    let ip = build_sgq_model(&fg, query, style);
    let sol = solve_mip(&ip.model, opts)?;
    match sol.status {
        MipStatus::Infeasible => Ok(IpSgqResult {
            solution: None,
            nodes: sol.nodes,
        }),
        MipStatus::Unbounded => Err(IpError::UnexpectedUnbounded),
        MipStatus::Optimal => {
            let group = extract_group(&fg, &ip.phi, &sol.values);
            let total_distance = fg.group_distance(group.iter().copied());
            Ok(IpSgqResult {
                solution: Some(SgqSolution {
                    members: fg.to_origin_group(group),
                    total_distance,
                }),
                nodes: sol.nodes,
            })
        }
    }
}

/// Solve an STGQ by Integer Programming.
pub fn solve_stgq_ip(
    graph: &SocialGraph,
    initiator: NodeId,
    calendars: &[Calendar],
    query: &StgqQuery,
    style: IpStyle,
    opts: &MipOptions,
) -> Result<IpStgqResult, IpError> {
    if initiator.index() >= graph.node_count() {
        return Err(QueryError::InitiatorOutOfRange {
            initiator,
            node_count: graph.node_count(),
        }
        .into());
    }
    if calendars.len() != graph.node_count() {
        return Err(QueryError::CalendarCountMismatch {
            calendars: calendars.len(),
            node_count: graph.node_count(),
        }
        .into());
    }
    let fg = FeasibleGraph::extract(graph, initiator, query.s());
    if fg.len() < query.p() {
        return Ok(IpStgqResult {
            solution: None,
            nodes: 0,
        });
    }
    let ip = build_stgq_model(&fg, calendars, query, style);
    let sol = solve_mip(&ip.model, opts)?;
    match sol.status {
        MipStatus::Infeasible => Ok(IpStgqResult {
            solution: None,
            nodes: sol.nodes,
        }),
        MipStatus::Unbounded => Err(IpError::UnexpectedUnbounded),
        MipStatus::Optimal => {
            let group = extract_group(&fg, &ip.phi, &sol.values);
            let total_distance = fg.group_distance(group.iter().copied());
            let start = ip
                .tau
                .iter()
                .position(|&t| sol.values[varidx(t)] > 0.5)
                .expect("constraint (9) forces exactly one start");
            let m = query.m();
            Ok(IpStgqResult {
                solution: Some(StgqSolution {
                    members: fg.to_origin_group(group),
                    total_distance,
                    period: SlotRange::new(start, start + m - 1),
                    pivot: pivot_of_window(start, m),
                }),
                nodes: sol.nodes,
            })
        }
    }
}

fn varidx(v: stgq_mip::VarId) -> usize {
    v.0
}

fn extract_group(fg: &FeasibleGraph, phi: &[stgq_mip::VarId], values: &[f64]) -> Vec<u32> {
    (0..fg.len() as u32)
        .filter(|&u| values[varidx(phi[u as usize])] > 0.5)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgq_core::{solve_sgq, solve_stgq, SelectConfig};
    use stgq_graph::GraphBuilder;

    /// The paper's Example-2/3 inputs (see stgq-core tests).
    fn example_inputs() -> (SocialGraph, NodeId, Vec<Calendar>) {
        let mut b = GraphBuilder::new(9);
        b.add_edge(NodeId(7), NodeId(2), 17).unwrap();
        b.add_edge(NodeId(7), NodeId(3), 18).unwrap();
        b.add_edge(NodeId(7), NodeId(4), 27).unwrap();
        b.add_edge(NodeId(7), NodeId(6), 23).unwrap();
        b.add_edge(NodeId(7), NodeId(8), 25).unwrap();
        b.add_edge(NodeId(2), NodeId(4), 14).unwrap();
        b.add_edge(NodeId(2), NodeId(6), 19).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 29).unwrap();
        b.add_edge(NodeId(4), NodeId(6), 20).unwrap();
        let g = b.build();
        let horizon = 7;
        let mut cals = vec![Calendar::new(horizon); 9];
        cals[2] = Calendar::from_slots(horizon, 0..7);
        cals[3] = Calendar::from_slots(horizon, [1, 2, 4, 5]);
        cals[4] = Calendar::from_slots(horizon, [0, 1, 2, 3, 4, 6]);
        cals[6] = Calendar::from_slots(horizon, [1, 2, 3, 4, 5, 6]);
        cals[7] = Calendar::from_slots(horizon, [0, 1, 2, 3, 4, 5]);
        cals[8] = Calendar::from_slots(horizon, [0, 2, 4, 5]);
        (g, NodeId(7), cals)
    }

    #[test]
    fn compact_ip_matches_sgselect_on_example2() {
        let (g, q, _) = example_inputs();
        let query = SgqQuery::new(4, 1, 1).unwrap();
        let ip = solve_sgq_ip(&g, q, &query, IpStyle::Compact, &MipOptions::default())
            .unwrap()
            .solution
            .unwrap();
        assert_eq!(ip.total_distance, 62);
        assert_eq!(ip.members, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(7)]);
    }

    #[test]
    fn full_ip_matches_sgselect_on_example2() {
        let (g, q, _) = example_inputs();
        for (p, k) in [(2, 1), (3, 1), (4, 1), (4, 0)] {
            let query = SgqQuery::new(p, 1, k).unwrap();
            let select = solve_sgq(&g, q, &query, &SelectConfig::default())
                .unwrap()
                .solution
                .map(|s| s.total_distance);
            let ip = solve_sgq_ip(&g, q, &query, IpStyle::Full, &MipOptions::default())
                .unwrap()
                .solution
                .map(|s| s.total_distance);
            assert_eq!(select, ip, "p={p} k={k}");
        }
    }

    #[test]
    fn full_ip_respects_radius_budget_at_s2() {
        // Path 0-1-2 with a heavy direct 0-2: at s=1 only the heavy edge
        // counts; at s=2 the cheap 2-hop path wins. The IP must agree with
        // the DP-based engines in both regimes.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 10).unwrap();
        let g = b.build();
        for s in [1usize, 2] {
            let query = SgqQuery::new(3, s, 2).unwrap();
            let select = solve_sgq(&g, NodeId(0), &query, &SelectConfig::default())
                .unwrap()
                .solution
                .unwrap();
            let ip = solve_sgq_ip(&g, NodeId(0), &query, IpStyle::Full, &MipOptions::default())
                .unwrap()
                .solution
                .unwrap();
            assert_eq!(select.total_distance, ip.total_distance, "s={s}");
        }
    }

    #[test]
    fn compact_stgq_ip_matches_stgselect_on_example3() {
        let (g, q, cals) = example_inputs();
        let query = StgqQuery::new(4, 1, 1, 3).unwrap();
        let fast = solve_stgq(&g, q, &cals, &query, &SelectConfig::default())
            .unwrap()
            .solution
            .unwrap();
        let ip = solve_stgq_ip(
            &g,
            q,
            &cals,
            &query,
            IpStyle::Compact,
            &MipOptions::default(),
        )
        .unwrap()
        .solution
        .unwrap();
        assert_eq!(ip.total_distance, fast.total_distance);
        assert_eq!(ip.members, fast.members);
        // The IP may pick any optimal window; it must be a valid 3-slot
        // period for the group.
        assert_eq!(ip.period.len(), 3);
        for &v in &ip.members {
            for slot in ip.period.iter() {
                assert!(cals[v.index()].is_available(slot));
            }
        }
    }

    #[test]
    fn infeasible_queries_return_none() {
        let (g, q, cals) = example_inputs();
        // p too large for the radius graph.
        let query = SgqQuery::new(8, 1, 7).unwrap();
        let res = solve_sgq_ip(&g, q, &query, IpStyle::Compact, &MipOptions::default()).unwrap();
        assert!(res.solution.is_none());
        // m too long for anyone's calendar.
        let query = StgqQuery::new(4, 1, 1, 6).unwrap();
        let res = solve_stgq_ip(
            &g,
            q,
            &cals,
            &query,
            IpStyle::Compact,
            &MipOptions::default(),
        )
        .unwrap();
        assert!(res.solution.is_none());
    }

    #[test]
    fn input_validation() {
        let (g, q, cals) = example_inputs();
        let query = SgqQuery::new(2, 1, 1).unwrap();
        assert!(matches!(
            solve_sgq_ip(
                &g,
                NodeId(99),
                &query,
                IpStyle::Compact,
                &MipOptions::default()
            ),
            Err(IpError::Query(QueryError::InitiatorOutOfRange { .. }))
        ));
        let tq = StgqQuery::new(2, 1, 1, 2).unwrap();
        assert!(matches!(
            solve_stgq_ip(
                &g,
                q,
                &cals[..2],
                &tq,
                IpStyle::Compact,
                &MipOptions::default()
            ),
            Err(IpError::Query(QueryError::CalendarCountMismatch { .. }))
        ));
    }
}
