use crate::{LinExpr, MipError};

/// Handle to a model variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Whether a variable must take integral values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binaries are `Integer` in `[0,1]`).
    Integer,
}

/// A model variable: name, bounds and kind.
#[derive(Clone, Debug, PartialEq)]
pub struct Variable {
    /// Diagnostic name.
    pub name: String,
    /// Lower bound (may be `-∞`).
    pub lb: f64,
    /// Upper bound (may be `+∞`).
    pub ub: f64,
    /// Continuous or integer.
    pub kind: VarKind,
}

/// Comparison sense of a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear constraint `expr cmp rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed-integer linear program. The objective is always **minimized**.
#[derive(Clone, Debug, Default)]
pub struct Model {
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Add a continuous variable with bounds.
    pub fn add_cont(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.push_var(name.into(), lb, ub, VarKind::Continuous)
    }

    /// Add an integer variable with bounds.
    pub fn add_int(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.push_var(name.into(), lb, ub, VarKind::Integer)
    }

    /// Add a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), 0.0, 1.0, VarKind::Integer)
    }

    fn push_var(&mut self, name: String, lb: f64, ub: f64, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable { name, lb, ub, kind });
        id
    }

    /// Convenience: build an expression from `(var, coef)` pairs.
    pub fn expr(&self, terms: &[(VarId, f64)]) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied())
    }

    /// Add a constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Set the (minimized) objective.
    pub fn set_objective(&mut self, expr: LinExpr) {
        self.objective = expr;
    }

    /// Variables, in id order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The minimized objective.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of the integer variables.
    pub fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| VarId(i))
    }

    /// Validate the model: variable references in range, domains non-empty,
    /// no NaNs. Also compacts all expressions in place.
    pub fn validate(&mut self) -> Result<(), MipError> {
        let n = self.vars.len();
        for v in &self.vars {
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(MipError::NotANumber);
            }
            if v.lb > v.ub {
                return Err(MipError::EmptyDomain {
                    name: v.name.clone(),
                    lb: v.lb,
                    ub: v.ub,
                });
            }
        }
        let exprs = self
            .constraints
            .iter_mut()
            .map(|c| (&mut c.expr, c.rhs))
            .chain(std::iter::once((&mut self.objective, 0.0)));
        for (expr, rhs) in exprs {
            if rhs.is_nan() || expr.has_nan() {
                return Err(MipError::NotANumber);
            }
            if let Some(max) = expr.max_var() {
                if max >= n {
                    return Err(MipError::UnknownVariable {
                        index: max,
                        var_count: n,
                    });
                }
            }
            expr.compact();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, 10.0);
        let y = m.add_binary("y");
        assert_eq!(m.var_count(), 2);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 2.0)]), Cmp::Le, 5.0);
        m.set_objective(m.expr(&[(x, -1.0)]));
        assert!(m.validate().is_ok());
        assert_eq!(m.integer_vars().collect::<Vec<_>>(), vec![y]);
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut m = Model::new();
        let _ = m.add_cont("x", 0.0, 1.0);
        m.add_constraint(LinExpr::from_terms([(VarId(5), 1.0)]), Cmp::Le, 1.0);
        assert!(matches!(
            m.validate(),
            Err(MipError::UnknownVariable { index: 5, .. })
        ));
    }

    #[test]
    fn rejects_empty_domain_and_nan() {
        let mut m = Model::new();
        m.add_cont("x", 3.0, 1.0);
        assert!(matches!(m.validate(), Err(MipError::EmptyDomain { .. })));

        let mut m2 = Model::new();
        let x = m2.add_cont("x", 0.0, 1.0);
        m2.add_constraint(m2.expr(&[(x, f64::NAN)]), Cmp::Le, 1.0);
        assert_eq!(m2.validate(), Err(MipError::NotANumber));
    }

    #[test]
    fn binary_is_integer_in_unit_box() {
        let mut m = Model::new();
        let b = m.add_binary("b");
        let v = &m.vars()[b.0];
        assert_eq!(v.kind, VarKind::Integer);
        assert_eq!((v.lb, v.ub), (0.0, 1.0));
    }
}
