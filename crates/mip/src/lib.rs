//! A from-scratch mixed-integer linear programming solver.
//!
//! The paper evaluates an Integer Programming formulation of STGQ
//! (Appendix D) with CPLEX. CPLEX is proprietary, so this crate implements
//! the minimum viable substitute: a dense **two-phase primal simplex** with
//! Bland's anti-cycling rule ([`solve_lp`]) and a depth-first **branch &
//! bound** over the integer variables ([`solve_mip`]). It is deliberately a
//! textbook solver — the IP comparator in the paper's Figure 1(a)/(d) is
//! the *slowest* exact method, and a simple solver fills that role while
//! still certifying optimality on small instances.
//!
//! Models are built with [`Model`]: variables carry bounds and an
//! integrality flag, constraints are linear expressions compared to a
//! right-hand side, and the objective is always minimized (negate to
//! maximize).
//!
//! ```
//! use stgq_mip::{Model, Cmp, MipOptions};
//!
//! // maximize x + 2y  s.t. x + y ≤ 4, x ≤ 2, x,y ≥ 0 integer
//! let mut m = Model::new();
//! let x = m.add_int("x", 0.0, f64::INFINITY);
//! let y = m.add_int("y", 0.0, f64::INFINITY);
//! m.add_constraint(m.expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 4.0);
//! m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Le, 2.0);
//! m.set_objective(m.expr(&[(x, -1.0), (y, -2.0)])); // minimize −(x+2y)
//! let sol = stgq_mip::solve_mip(&m, &MipOptions::default()).unwrap();
//! assert_eq!(sol.objective.round(), -8.0); // x=0, y=4
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod branch_bound;
mod error;
mod expr;
mod model;
mod simplex;

pub use branch_bound::{solve_mip, MipOptions, MipSolution, MipStatus};
pub use error::MipError;
pub use expr::LinExpr;
pub use model::{Cmp, Model, VarId, VarKind, Variable};
pub use simplex::{solve_lp, LpResult, LpStatus};
