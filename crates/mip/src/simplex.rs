//! Two-phase dense primal simplex.
//!
//! Textbook implementation over a dense tableau:
//!
//! 1. variables are shifted to non-negativity (`x = lb + x'`; free
//!    variables split into `x⁺ − x⁻`), finite upper bounds become explicit
//!    rows;
//! 2. rows are normalized to a non-negative right-hand side, then `≤` rows
//!    get slacks, `≥` rows surplus + artificial, `=` rows artificial;
//! 3. phase 1 minimizes the artificial sum (feasibility), pivoting
//!    artificials out (or dropping redundant rows) afterwards;
//! 4. phase 2 minimizes the real objective.
//!
//! Bland's rule (smallest entering index, smallest-basic-index tie-break in
//! the ratio test) guarantees termination; an iteration budget guards
//! against numerical pathologies.

// Dense-tableau arithmetic: indexed loops over parallel rows/columns are
// the clearest way to write pivots, and clippy's iterator suggestions
// obscure them.
#![allow(clippy::needless_range_loop)]

use crate::{Cmp, MipError, Model};

const EPS: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;
const ITER_LIMIT: usize = 200_000;

/// Outcome classification of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
}

/// Result of an LP solve. `values` (indexed by model variable id) and
/// `objective` are meaningful only for [`LpStatus::Optimal`].
#[derive(Clone, Debug, PartialEq)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value at the optimum.
    pub objective: f64,
    /// Optimal assignment per model variable.
    pub values: Vec<f64>,
}

/// Solve the LP relaxation of `model` (integrality ignored).
pub fn solve_lp(model: &Model) -> Result<LpResult, MipError> {
    let mut m = model.clone();
    m.validate()?;
    let lb: Vec<f64> = m.vars().iter().map(|v| v.lb).collect();
    let ub: Vec<f64> = m.vars().iter().map(|v| v.ub).collect();
    solve_prepared(&m, &lb, &ub)
}

/// Solve a *validated* model with overridden bounds (branch & bound hook).
pub(crate) fn solve_prepared(model: &Model, lb: &[f64], ub: &[f64]) -> Result<LpResult, MipError> {
    for i in 0..lb.len() {
        if lb[i] > ub[i] {
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![],
            });
        }
    }
    Tableau::build(model, lb, ub).solve(model, lb)
}

/// Column mapping for one model variable in the standard form.
#[derive(Clone, Copy)]
enum ColMap {
    /// `x = lb + column`
    Shifted { col: usize, lb: f64 },
    /// `x = pos − neg` (free variable)
    Split { pos: usize, neg: usize },
}

struct Tableau {
    /// `rows[i][j]`: coefficient of column `j` in row `i`.
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    active: Vec<bool>,
    ncols: usize,
    /// First artificial column (artificials are `first_artificial..ncols`).
    first_artificial: usize,
    col_map: Vec<ColMap>,
}

impl Tableau {
    fn build(model: &Model, lb: &[f64], ub: &[f64]) -> Tableau {
        let n = model.var_count();
        // 1. Column mapping + structural column count.
        let mut col_map = Vec::with_capacity(n);
        let mut nstruct = 0usize;
        for i in 0..n {
            if lb[i].is_finite() {
                col_map.push(ColMap::Shifted {
                    col: nstruct,
                    lb: lb[i],
                });
                nstruct += 1;
            } else {
                col_map.push(ColMap::Split {
                    pos: nstruct,
                    neg: nstruct + 1,
                });
                nstruct += 2;
            }
        }

        // 2. Raw rows: (coefficients over structural cols, cmp, rhs).
        let mut raw: Vec<(Vec<f64>, Cmp, f64)> = Vec::new();
        for c in model.constraints() {
            let mut coefs = vec![0.0; nstruct];
            let mut rhs = c.rhs;
            for &(v, coef) in &c.expr.terms {
                match col_map[v.0] {
                    ColMap::Shifted { col, lb } => {
                        coefs[col] += coef;
                        rhs -= coef * lb;
                    }
                    ColMap::Split { pos, neg } => {
                        coefs[pos] += coef;
                        coefs[neg] -= coef;
                    }
                }
            }
            raw.push((coefs, c.cmp, rhs));
        }
        // Finite upper bounds become rows (x' ≤ ub − lb, or x⁺ − x⁻ ≤ ub).
        for i in 0..n {
            if ub[i].is_finite() {
                let mut coefs = vec![0.0; nstruct];
                let rhs = match col_map[i] {
                    ColMap::Shifted { col, lb } => {
                        coefs[col] = 1.0;
                        ub[i] - lb
                    }
                    ColMap::Split { pos, neg } => {
                        coefs[pos] = 1.0;
                        coefs[neg] = -1.0;
                        ub[i]
                    }
                };
                raw.push((coefs, Cmp::Le, rhs));
            }
        }

        // 3. Normalize rhs ≥ 0, count extra columns.
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for (coefs, cmp, rhs) in &mut raw {
            if *rhs < 0.0 {
                for c in coefs.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
        }

        let ncols = nstruct + n_slack + n_art;
        let first_artificial = nstruct + n_slack;
        let m = raw.len();
        let mut rows = Vec::with_capacity(m);
        let mut rhs_col = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut next_slack = nstruct;
        let mut next_art = first_artificial;
        for (coefs, cmp, rhs) in raw {
            let mut row = vec![0.0; ncols];
            row[..nstruct].copy_from_slice(&coefs);
            match cmp {
                Cmp::Le => {
                    row[next_slack] = 1.0;
                    basis.push(next_slack);
                    next_slack += 1;
                }
                Cmp::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_art] = 1.0;
                    basis.push(next_art);
                    next_art += 1;
                }
                Cmp::Eq => {
                    row[next_art] = 1.0;
                    basis.push(next_art);
                    next_art += 1;
                }
            }
            rows.push(row);
            rhs_col.push(rhs);
        }

        Tableau {
            rows,
            rhs: rhs_col,
            basis,
            active: vec![true; m],
            ncols,
            first_artificial,
            col_map,
        }
    }

    fn pivot(&mut self, pr: usize, pc: usize, red: &mut [f64]) {
        let pv = self.rows[pr][pc];
        debug_assert!(pv.abs() > EPS);
        let inv = 1.0 / pv;
        for v in self.rows[pr].iter_mut() {
            *v *= inv;
        }
        self.rhs[pr] *= inv;
        let pivot_row = self.rows[pr].clone();
        let pivot_rhs = self.rhs[pr];
        for i in 0..self.rows.len() {
            if i == pr || !self.active[i] {
                continue;
            }
            let factor = self.rows[i][pc];
            if factor.abs() > EPS {
                for j in 0..self.ncols {
                    self.rows[i][j] -= factor * pivot_row[j];
                }
                self.rhs[i] -= factor * pivot_rhs;
                if self.rhs[i].abs() < EPS {
                    self.rhs[i] = 0.0;
                }
            }
        }
        let factor = red[pc];
        if factor.abs() > EPS {
            for j in 0..self.ncols {
                red[j] -= factor * pivot_row[j];
            }
        }
        self.basis[pr] = pc;
    }

    /// Reduced costs for cost vector `cost`, given the current basis.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut red = cost.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            let cb = cost[b];
            if cb.abs() > EPS {
                for j in 0..self.ncols {
                    red[j] -= cb * self.rows[i][j];
                }
            }
        }
        red
    }

    /// Run simplex iterations until optimal/unbounded. Entering columns are
    /// restricted to `..col_limit` (used to bar artificials).
    fn iterate(&mut self, red: &mut [f64], col_limit: usize) -> Result<LpStatus, MipError> {
        for _ in 0..ITER_LIMIT {
            // Bland: smallest improving column.
            let mut entering = None;
            for (j, &r) in red.iter().enumerate().take(col_limit) {
                if r < -EPS {
                    entering = Some(j);
                    break;
                }
            }
            let Some(pc) = entering else {
                return Ok(LpStatus::Optimal);
            };

            // Ratio test with Bland tie-break.
            let mut pr: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.rows.len() {
                if !self.active[i] {
                    continue;
                }
                let t = self.rows[i][pc];
                if t > EPS {
                    let ratio = self.rhs[i] / t;
                    let better = ratio < best - EPS
                        || (ratio < best + EPS && pr.is_none_or(|p| self.basis[i] < self.basis[p]));
                    if better {
                        best = ratio;
                        pr = Some(i);
                    }
                }
            }
            let Some(pr) = pr else {
                return Ok(LpStatus::Unbounded);
            };
            self.pivot(pr, pc, red);
        }
        Err(MipError::IterationLimit { limit: ITER_LIMIT })
    }

    fn solve(mut self, model: &Model, lb: &[f64]) -> Result<LpResult, MipError> {
        // ---- Phase 1: minimize the artificial sum.
        if self.first_artificial < self.ncols {
            let mut cost = vec![0.0; self.ncols];
            for c in cost.iter_mut().skip(self.first_artificial) {
                *c = 1.0;
            }
            let mut red = self.reduced_costs(&cost);
            match self.iterate(&mut red, self.first_artificial)? {
                LpStatus::Unbounded => {
                    // Phase 1 is bounded below by 0; reaching here means
                    // numerical breakdown.
                    return Err(MipError::IterationLimit { limit: ITER_LIMIT });
                }
                LpStatus::Optimal => {}
                LpStatus::Infeasible => unreachable!("iterate never returns Infeasible"),
            }
            let infeas: f64 = (0..self.rows.len())
                .filter(|&i| self.active[i] && self.basis[i] >= self.first_artificial)
                .map(|i| self.rhs[i])
                .sum();
            if infeas > FEAS_TOL {
                return Ok(LpResult {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    values: vec![],
                });
            }
            // Drive remaining artificials (basic at 0) out of the basis.
            for i in 0..self.rows.len() {
                if !self.active[i] || self.basis[i] < self.first_artificial {
                    continue;
                }
                let mut pivot_col = None;
                for j in 0..self.first_artificial {
                    if self.rows[i][j].abs() > 1e-7 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                match pivot_col {
                    Some(pc) => {
                        let mut dummy = vec![0.0; self.ncols];
                        self.pivot(i, pc, &mut dummy);
                    }
                    // Row is redundant (all structural coefficients zero).
                    None => self.active[i] = false,
                }
            }
        }

        // ---- Phase 2: minimize the real objective.
        let mut cost = vec![0.0; self.ncols];
        for &(v, coef) in &model.objective().terms {
            match self.col_map[v.0] {
                ColMap::Shifted { col, .. } => cost[col] += coef,
                ColMap::Split { pos, neg } => {
                    cost[pos] += coef;
                    cost[neg] -= coef;
                }
            }
        }
        let mut red = self.reduced_costs(&cost);
        match self.iterate(&mut red, self.first_artificial)? {
            LpStatus::Unbounded => {
                return Ok(LpResult {
                    status: LpStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: vec![],
                })
            }
            LpStatus::Optimal => {}
            LpStatus::Infeasible => unreachable!("iterate never returns Infeasible"),
        }

        // ---- Extract the solution in model-variable space.
        let mut col_val = vec![0.0; self.ncols];
        for (i, &b) in self.basis.iter().enumerate() {
            if self.active[i] {
                col_val[b] = self.rhs[i];
            }
        }
        let values: Vec<f64> = (0..model.var_count())
            .map(|i| match self.col_map[i] {
                ColMap::Shifted { col, lb: shift } => shift + col_val[col],
                ColMap::Split { pos, neg } => col_val[pos] - col_val[neg],
            })
            .collect();
        let _ = lb;
        let objective = model.objective().eval(&values);
        Ok(LpResult {
            status: LpStatus::Optimal,
            objective,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cmp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximization_via_negation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Le, 4.0);
        m.add_constraint(m.expr(&[(y, 2.0)]), Cmp::Le, 12.0);
        m.add_constraint(m.expr(&[(x, 3.0), (y, 2.0)]), Cmp::Le, 18.0);
        m.set_objective(m.expr(&[(x, -3.0), (y, -5.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -36.0);
        assert_close(r.values[x.0], 2.0);
        assert_close(r.values[y.0], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + 2y = 4, x + y ≥ 1, x,y ≥ 0 → y=2, x=0, obj 2.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 2.0)]), Cmp::Eq, 4.0);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 1.0)]), Cmp::Ge, 1.0);
        m.set_objective(m.expr(&[(x, 1.0), (y, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 2.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Ge, 5.0);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Le, 2.0);
        m.set_objective(m.expr(&[(x, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        m.set_objective(m.expr(&[(x, -1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        // min −x with x ∈ [0, 7] → x = 7.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, 7.0);
        m.set_objective(m.expr(&[(x, -1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[x.0], 7.0);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x with x ∈ [3, 10] → 3.
        let mut m = Model::new();
        let x = m.add_cont("x", 3.0, 10.0);
        m.set_objective(m.expr(&[(x, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_close(r.values[x.0], 3.0);
        assert_close(r.objective, 3.0);
    }

    #[test]
    fn free_variables_split() {
        // min x s.t. x ≥ −5 as a constraint (variable itself free) → −5.
        let mut m = Model::new();
        let x = m.add_cont("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Ge, -5.0);
        m.set_objective(m.expr(&[(x, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[x.0], -5.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple redundant constraints through origin.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 1.0)]), Cmp::Le, 0.0);
        m.add_constraint(m.expr(&[(x, 2.0), (y, 1.0)]), Cmp::Le, 0.0);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 2.0)]), Cmp::Le, 0.0);
        m.set_objective(m.expr(&[(x, -1.0), (y, -1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 0.0);
    }

    #[test]
    fn redundant_equalities_survive_phase1() {
        // x + y = 2 twice (redundant row must be dropped, not declared
        // infeasible).
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, f64::INFINITY);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        m.add_constraint(m.expr(&[(x, 1.0), (y, 1.0)]), Cmp::Eq, 2.0);
        m.set_objective(m.expr(&[(x, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 0.0);
        assert_close(r.values[y.0], 2.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min y s.t. −x − y ≤ −3 (i.e. x + y ≥ 3), x ≤ 1 → y = 2.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, 1.0);
        let y = m.add_cont("y", 0.0, f64::INFINITY);
        m.add_constraint(m.expr(&[(x, -1.0), (y, -1.0)]), Cmp::Le, -3.0);
        m.set_objective(m.expr(&[(y, 1.0)]));
        let r = solve_lp(&m).unwrap();
        assert_close(r.objective, 2.0);
    }

    #[test]
    fn empty_domain_bound_override_is_infeasible() {
        let mut m = Model::new();
        let _x = m.add_cont("x", 0.0, 1.0);
        m.set_objective(LinExprHelper::empty());
        let mut mm = m.clone();
        mm.validate().unwrap();
        let r = solve_prepared(&mm, &[2.0], &[1.0]).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    struct LinExprHelper;
    impl LinExprHelper {
        fn empty() -> crate::LinExpr {
            crate::LinExpr::new()
        }
    }
}
