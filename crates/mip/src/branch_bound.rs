//! Depth-first branch & bound over the integer variables.
//!
//! Each node solves the LP relaxation with tightened bounds; the most
//! fractional integer variable is branched on (`x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`),
//! exploring the side nearer the fractional value first. Nodes are pruned
//! when the relaxation is infeasible or its bound cannot beat the
//! incumbent. Exact for any bounded MILP; a node budget guards runaways.

use crate::simplex::solve_prepared;
use crate::{LpStatus, MipError, Model};

/// Branch & bound tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct MipOptions {
    /// Maximum branch-and-bound nodes before giving up with
    /// [`MipError::NodeLimit`].
    pub node_limit: usize,
    /// A relaxation value within this distance of an integer counts as
    /// integral.
    pub int_tol: f64,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            node_limit: 500_000,
            int_tol: 1e-6,
        }
    }
}

/// Final status of a MIP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MipStatus {
    /// Proven optimal integer solution.
    Optimal,
    /// No integer-feasible point exists.
    Infeasible,
    /// The relaxation (and hence the MIP, if feasible) is unbounded.
    Unbounded,
}

/// Result of [`solve_mip`]. `objective`/`values` are meaningful only for
/// [`MipStatus::Optimal`]; integer variables in `values` are exactly
/// integral (rounded from the relaxation's ε-integral values).
#[derive(Clone, Debug, PartialEq)]
pub struct MipSolution {
    /// Final status.
    pub status: MipStatus,
    /// Optimal objective value.
    pub objective: f64,
    /// Assignment per model variable.
    pub values: Vec<f64>,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
}

/// Solve a mixed-integer program to proven optimality.
pub fn solve_mip(model: &Model, opts: &MipOptions) -> Result<MipSolution, MipError> {
    let mut m = model.clone();
    m.validate()?;
    let int_vars: Vec<usize> = m.integer_vars().map(|v| v.0).collect();
    let root_lb: Vec<f64> = m.vars().iter().map(|v| v.lb).collect();
    let root_ub: Vec<f64> = m.vars().iter().map(|v| v.ub).collect();

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes: u64 = 0;
    let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(root_lb, root_ub)];

    while let Some((lb, ub)) = stack.pop() {
        nodes += 1;
        if nodes as usize > opts.node_limit {
            return Err(MipError::NodeLimit {
                limit: opts.node_limit,
            });
        }
        let relax = solve_prepared(&m, &lb, &ub)?;
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // With integral branching the relaxation is unbounded only
                // if the root is; report it as such.
                return Ok(MipSolution {
                    status: MipStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: vec![],
                    nodes,
                });
            }
            LpStatus::Optimal => {}
        }
        if let Some((best, _)) = &incumbent {
            if relax.objective >= *best - 1e-9 {
                continue; // bound prune
            }
        }

        // Most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = opts.int_tol;
        for &v in &int_vars {
            let val = relax.values[v];
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }
        match branch_var {
            None => {
                // Integral: new incumbent (strict improvement, see prune).
                let mut values = relax.values;
                for &v in &int_vars {
                    values[v] = values[v].round();
                }
                incumbent = Some((relax.objective, values));
            }
            Some(v) => {
                let val = relax.values[v];
                let floor = val.floor();
                let mut down = (lb.clone(), ub.clone());
                down.1[v] = down.1[v].min(floor);
                let mut up = (lb, ub);
                up.0[v] = up.0[v].max(floor + 1.0);
                // Explore the nearer side first (pushed last).
                if val - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    Ok(match incumbent {
        Some((objective, values)) => MipSolution {
            status: MipStatus::Optimal,
            objective,
            values,
            nodes,
        },
        None => MipSolution {
            status: MipStatus::Infeasible,
            objective: 0.0,
            values: vec![],
            nodes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cmp;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binaries → a+c (17) vs b+c
        // (20, weight 6 ✓) → optimal 20.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(m.expr(&[(a, 3.0), (b, 4.0), (c, 2.0)]), Cmp::Le, 6.0);
        m.set_objective(m.expr(&[(a, -10.0), (b, -13.0), (c, -7.0)]));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective, -20.0);
        assert_close(sol.values[b.0], 1.0);
        assert_close(sol.values[c.0], 1.0);
        assert_close(sol.values[a.0], 0.0);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y s.t. 2x + 2y ≤ 3 → LP gives 1.5, IP gives 1.
        let mut m = Model::new();
        let x = m.add_int("x", 0.0, 10.0);
        let y = m.add_int("y", 0.0, 10.0);
        m.add_constraint(m.expr(&[(x, 2.0), (y, 2.0)]), Cmp::Le, 3.0);
        m.set_objective(m.expr(&[(x, -1.0), (y, -1.0)]));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 ≤ x ≤ 0.6 with x integer → infeasible.
        let mut m = Model::new();
        let x = m.add_int("x", 0.0, 1.0);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Ge, 0.4);
        m.add_constraint(m.expr(&[(x, 1.0)]), Cmp::Le, 0.6);
        m.set_objective(m.expr(&[(x, 1.0)]));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(sol.status, MipStatus::Infeasible);
    }

    #[test]
    fn unbounded_is_reported() {
        let mut m = Model::new();
        let x = m.add_int("x", 0.0, f64::INFINITY);
        m.set_objective(m.expr(&[(x, -1.0)]));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_eq!(sol.status, MipStatus::Unbounded);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min −y − 0.5x s.t. y ≤ x/2, x ≤ 3.7, y integer, x continuous.
        // Best: x = 3.7, y = 1 → obj = −1 − 1.85 = −2.85.
        let mut m = Model::new();
        let x = m.add_cont("x", 0.0, 3.7);
        let y = m.add_int("y", 0.0, 100.0);
        m.add_constraint(m.expr(&[(y, 1.0), (x, -0.5)]), Cmp::Le, 0.0);
        m.set_objective(m.expr(&[(y, -1.0), (x, -0.5)]));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        assert_close(sol.objective, -2.85);
        assert_close(sol.values[y.0], 1.0);
    }

    #[test]
    fn node_limit_is_enforced() {
        // A model needing several nodes with limit 1 must error.
        let mut m = Model::new();
        let x = m.add_int("x", 0.0, 10.0);
        let y = m.add_int("y", 0.0, 10.0);
        m.add_constraint(m.expr(&[(x, 2.0), (y, 2.0)]), Cmp::Le, 3.0);
        m.set_objective(m.expr(&[(x, -1.0), (y, -1.0)]));
        let err = solve_mip(
            &m,
            &MipOptions {
                node_limit: 1,
                int_tol: 1e-6,
            },
        )
        .unwrap_err();
        assert!(matches!(err, MipError::NodeLimit { limit: 1 }));
    }

    #[test]
    fn assignment_problem_is_exact() {
        // 3×3 assignment, costs chosen so the greedy answer is wrong.
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut x = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..3 {
                row.push(m.add_binary(format!("x{i}{j}")));
            }
            x.push(row);
        }
        for (i, x_row) in x.iter().enumerate() {
            let row: Vec<_> = x_row.iter().map(|&v| (v, 1.0)).collect();
            m.add_constraint(m.expr(&row), Cmp::Eq, 1.0);
            let col: Vec<_> = (0..3).map(|j| (x[j][i], 1.0)).collect();
            m.add_constraint(m.expr(&col), Cmp::Eq, 1.0);
        }
        let obj: Vec<_> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| (x[i][j], costs[i][j]))
            .collect();
        m.set_objective(m.expr(&obj));
        let sol = solve_mip(&m, &MipOptions::default()).unwrap();
        // Optimal: (0,1)=1, (1,0)=2, (2,2)=2 → 5.
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn brute_force_cross_check_small_binaries() {
        // Randomised-ish deterministic family: verify B&B against full
        // enumeration on 6 binary variables.
        let weights = [3.0, 5.0, 7.0, 2.0, 4.0, 6.0];
        let values = [4.0, 6.0, 9.0, 2.0, 5.0, 8.0];
        for cap in [5.0, 9.0, 13.0, 27.0] {
            let mut m = Model::new();
            let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("b{i}"))).collect();
            let w: Vec<_> = vars.iter().copied().zip(weights).collect();
            m.add_constraint(m.expr(&w), Cmp::Le, cap);
            let obj: Vec<_> = vars.iter().copied().zip(values.map(|v| -v)).collect();
            m.set_objective(m.expr(&obj));
            let sol = solve_mip(&m, &MipOptions::default()).unwrap();

            let mut best = 0.0f64;
            for mask in 0u32..64 {
                let wt: f64 = (0..6)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| weights[i])
                    .sum();
                if wt <= cap {
                    let val: f64 = (0..6)
                        .filter(|i| mask >> i & 1 == 1)
                        .map(|i| values[i])
                        .sum();
                    best = best.max(val);
                }
            }
            assert_close(sol.objective, -best);
        }
    }
}
