use std::fmt;

/// Failure modes of the LP/MIP solvers.
///
/// Infeasibility and unboundedness are *statuses*, not errors — they are
/// reported through [`LpStatus`](crate::LpStatus) / solution statuses.
/// `MipError` covers malformed models and resource exhaustion.
#[derive(Debug, Clone, PartialEq)]
pub enum MipError {
    /// A constraint or the objective references a variable id not in the
    /// model.
    UnknownVariable {
        /// The raw variable index.
        index: usize,
        /// Number of variables in the model.
        var_count: usize,
    },
    /// A variable's lower bound exceeds its upper bound.
    EmptyDomain {
        /// The variable's name.
        name: String,
        /// Lower bound.
        lb: f64,
        /// Upper bound.
        ub: f64,
    },
    /// A coefficient, bound, or right-hand side is NaN.
    NotANumber,
    /// The simplex exceeded its iteration budget (numerical trouble).
    IterationLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// Branch & bound exceeded its node budget.
    NodeLimit {
        /// The budget that was exhausted.
        limit: usize,
    },
}

impl fmt::Display for MipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MipError::UnknownVariable { index, var_count } => {
                write!(f, "variable #{index} out of range (model has {var_count})")
            }
            MipError::EmptyDomain { name, lb, ub } => {
                write!(f, "variable {name} has empty domain [{lb}, {ub}]")
            }
            MipError::NotANumber => write!(f, "model contains NaN coefficients"),
            MipError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit {limit} exceeded")
            }
            MipError::NodeLimit { limit } => {
                write!(f, "branch-and-bound node limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for MipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MipError::UnknownVariable {
            index: 5,
            var_count: 2,
        };
        assert!(e.to_string().contains("#5"));
        let e = MipError::EmptyDomain {
            name: "x".into(),
            lb: 2.0,
            ub: 1.0,
        };
        assert!(e.to_string().contains("empty domain"));
        assert!(MipError::NotANumber.to_string().contains("NaN"));
        assert!(MipError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(MipError::NodeLimit { limit: 9 }.to_string().contains("9"));
    }
}
