use crate::VarId;

/// A linear expression `Σ coefᵢ · xᵢ`.
///
/// Duplicate variable mentions are allowed at construction and merged by
/// [`LinExpr::compact`] (also dropping zero coefficients), which model
/// validation runs for you. Expressions are plain data — building them is
/// allocation-light and order-insensitive.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression (== 0).
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Build from `(var, coef)` pairs.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
        }
    }

    /// Add `coef · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coef: f64) -> &mut Self {
        self.terms.push((var, coef));
        self
    }

    /// Merge duplicate variables and drop (near-)zero coefficients.
    pub fn compact(&mut self) {
        self.terms.sort_by_key(|(v, _)| v.0);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c.abs() > 1e-12);
        self.terms = out;
    }

    /// Evaluate against a dense assignment (indexed by variable id).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.0]).sum()
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.iter().map(|&(v, _)| v.0).max()
    }

    /// Whether any coefficient is NaN.
    pub fn has_nan(&self) -> bool {
        self.terms.iter().any(|&(_, c)| c.is_nan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_merges_and_drops_zeros() {
        let mut e = LinExpr::from_terms([
            (VarId(1), 2.0),
            (VarId(0), 1.0),
            (VarId(1), 3.0),
            (VarId(2), 1e-15),
        ]);
        e.compact();
        assert_eq!(e.terms, vec![(VarId(0), 1.0), (VarId(1), 5.0)]);
    }

    #[test]
    fn eval_dot_product() {
        let e = LinExpr::from_terms([(VarId(0), 2.0), (VarId(2), -1.0)]);
        assert_eq!(e.eval(&[3.0, 100.0, 4.0]), 2.0);
    }

    #[test]
    fn max_var_and_nan_detection() {
        let e = LinExpr::from_terms([(VarId(3), 1.0), (VarId(1), 1.0)]);
        assert_eq!(e.max_var(), Some(3));
        assert_eq!(LinExpr::new().max_var(), None);
        let bad = LinExpr::from_terms([(VarId(0), f64::NAN)]);
        assert!(bad.has_nan());
    }

    #[test]
    fn add_term_chains() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), 1.0).add_term(VarId(1), 2.0);
        assert_eq!(e.terms.len(), 2);
    }
}
