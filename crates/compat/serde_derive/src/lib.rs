//! Offline shim for `serde_derive`: generates impls of the workspace
//! `serde` shim's [`Serialize`]/[`Deserialize`] value-tree traits.
//!
//! Written against raw [`proc_macro`] token streams (no `syn`/`quote`
//! available offline), so it supports exactly the shapes this repo
//! derives on:
//!
//! * named-field structs (`struct S { a: T, … }`), with per-field
//!   `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`;
//! * tuple structs — a single-field newtype with `#[serde(transparent)]`
//!   serializes as its inner value, any other tuple struct as an array.
//!
//! Generics and enums are rejected with a compile error naming this file,
//! so accidental reliance fails loudly rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field description gathered from the struct body.
struct Field {
    name: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// What we parsed out of the derive input.
struct StructDef {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
}

/// Derive the workspace `serde::Serialize` shim trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.kind {
        Kind::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let push = format!(
                    "entries.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));",
                    n = f.name
                );
                if let Some(pred) = &f.skip_serializing_if {
                    pushes.push_str(&format!("if !{pred}(&self.{n}) {{ {push} }}\n", n = f.name));
                } else {
                    pushes.push_str(&push);
                    pushes.push('\n');
                }
            }
            format!(
                "let mut entries: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(entries)"
            )
        }
        Kind::Tuple(1) if def.transparent => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derive the workspace `serde::Deserialize` shim trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.kind {
        Kind::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let missing = if f.default || f.skip_serializing_if.is_some() {
                    "Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::DeError::new(concat!(\
                             \"missing field `{n}` in {name}\")))",
                        n = f.name,
                        name = def.name
                    )
                };
                inits.push_str(&format!(
                    "{n}: match ::serde::value::get(entries, {n:?}) {{\n\
                         Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                         None => {missing},\n\
                     }},\n",
                    n = f.name
                ));
            }
            format!(
                "let entries = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                     concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{inits}}})",
                name = def.name
            )
        }
        Kind::Tuple(1) if def.transparent => {
            format!("Ok({}(::serde::Deserialize::from_value(v)?))", def.name)
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                     concat!(\"expected array for \", {name:?})))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(concat!(\"wrong arity for \", {name:?})));\n\
                 }}\n\
                 Ok({name}({items}))",
                name = def.name,
                items = items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde_derive shim generated invalid Deserialize impl")
}

/// Parse `[attrs] [vis] struct Name { … } | ( … );` from the derive input.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    let mut transparent = false;

    // Leading attributes and visibility, collecting #[serde(...)] flags.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let flags = serde_attr_flags(&g.stream());
                    if flags.iter().any(|(k, _)| k == "transparent") {
                        transparent = true;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional (crate)/(super) restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!(
            "serde shim derive supports structs only (crates/compat/serde_derive), got {other:?}"
        ),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive does not support generics (struct {name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => StructDef {
            name,
            transparent,
            kind: Kind::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => StructDef {
            name,
            transparent,
            kind: Kind::Tuple(count_tuple_fields(g.stream())),
        },
        other => panic!("expected struct body for {name}, got {other:?}"),
    }
}

/// Parse the brace body: `[attrs] [vis] name : type ,` repeated.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let mut default = false;
        let mut skip_serializing_if = None;
        // Attributes (docs and serde flags).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                for (key, val) in serde_attr_flags(&g.stream()) {
                    match key.as_str() {
                        "default" => default = true,
                        "skip_serializing_if" => skip_serializing_if = val,
                        other => panic!("unsupported #[serde({other})] in shim derive"),
                    }
                }
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
        let Some(TokenTree::Ident(fname)) = iter.next() else {
            break;
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {fname}, got {other:?}"),
        }
        // Skip the type: consume until a top-level ',' (or end). Generic
        // angle brackets never enclose commas at depth issues here because
        // `<` groups are not token groups — track them manually.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
        fields.push(Field {
            name: fname.to_string(),
            default,
            skip_serializing_if,
        });
    }
    fields
}

/// Count tuple-struct fields: top-level commas + 1 (0 fields unsupported).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_any = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            _ => {}
        }
        saw_any = true;
    }
    assert!(saw_any, "serde shim derive: unit tuple structs unsupported");
    count
}

/// From one attribute's bracket-group stream, extract serde flags as
/// `(key, optional string value)` pairs. Non-serde attributes yield none.
fn serde_attr_flags(stream: &TokenStream) -> Vec<(String, Option<String>)> {
    let mut iter = stream.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return Vec::new();
    };
    let mut flags = Vec::new();
    let mut args = args.stream().into_iter().peekable();
    while let Some(t) = args.next() {
        let TokenTree::Ident(key) = t else { continue };
        let mut val = None;
        if matches!(args.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            args.next();
            if let Some(TokenTree::Literal(lit)) = args.next() {
                let s = lit.to_string();
                val = Some(s.trim_matches('"').to_string());
            }
        }
        flags.push((key.to_string(), val));
    }
    flags
}
